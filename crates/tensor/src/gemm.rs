//! Matrix multiplication kernels.
//!
//! Dense layers and im2col-lowered convolutions reduce to `sgemm`. The
//! implementations, from slowest to fastest:
//!
//! * [`gemm_naive`] — the obvious triple loop, used as the correctness
//!   reference in tests;
//! * [`gemm`] / [`gemm_at`] / [`gemm_bt`] — packed, register-blocked
//!   kernels (see below) running on a thread-local scratch
//!   [`Workspace`]; drop-in BLAS-style entry points;
//! * [`gemm_ws`] / [`gemm_at_ws`] / [`gemm_bt_ws`] — the same kernels with
//!   an explicit workspace, used by the layer hot path so packing buffers
//!   come from the learner's arena instead of thread-local state;
//! * [`gemm_parallel`] — opt-in multi-threaded row-panel variant,
//!   bit-identical to the serial kernel (see *Determinism* below).
//!
//! All matrices are row-major. `gemm` computes `C = alpha * A @ B + beta * C`
//! with `A: m x k`, `B: k x n`, `C: m x n`.
//!
//! # Packed kernel
//!
//! The kernel follows the classic BLIS/Goto decomposition: `k` is split
//! into `KC`-sized blocks and `m` into `MC`-sized blocks; for each
//! block pair the relevant panels of `A` and `B` are *packed* into
//! contiguous tiles (`mr`-row tiles of `A`, `nr`-column tiles of `B`)
//! held in workspace buffers, and an unrolled `mr x nr` register-blocked
//! micro-kernel accumulates the product. Packing pays for itself because
//! each packed `A` tile is reused across all `nr`-column strips and each
//! packed `B` strip across all `mr`-row strips, with unit-stride loads.
//!
//! The same micro-kernel serves the transposed variants: packing reads
//! through a generic `(row stride, col stride)` view, so `A^T` and `B^T`
//! never materialise.
//!
//! # Kernel tiers
//!
//! Three micro-kernel variants share the loop nest, selected once per
//! process by [`GemmKernel::detected`] from runtime CPU features:
//!
//! | kernel            | tile (`mr x nr`) | requires    |
//! |-------------------|------------------|-------------|
//! | [`GemmKernel::Scalar`] | 4 x 8       | —           |
//! | [`GemmKernel::Avx2`]   | 6 x 16      | AVX2        |
//! | [`GemmKernel::Avx512`] | 8 x 16      | AVX-512F    |
//!
//! The SIMD kernels deliberately use *separate* vector multiply and add
//! (`vmulps` + `vaddps`), **not** FMA: a fused multiply-add does not
//! round the intermediate product, so its result can differ from the
//! scalar kernel's `acc += a * b` in the last bit. With unfused ops each
//! vector lane performs exactly the IEEE-754 operation sequence the
//! scalar kernel performs, so every kernel tier produces bit-identical
//! output (pinned by tests). `CROSSBOW_GEMM_KERNEL=scalar|avx2|avx512`
//! overrides detection (read once; silently clamped to what the CPU
//! supports), and [`with_kernel`] scopes a forced kernel to one closure
//! for tests and benches.
//!
//! # Determinism
//!
//! The serial reduction order is fixed: for every output element
//! `C[i][j]`, the `k` dimension is consumed in ascending `KC`-sized
//! blocks; within a block, products accumulate into a register in
//! ascending `p`; each block's partial sum is scaled by `alpha` and added
//! to `C[i][j]` in ascending block order. This order depends only on
//! `(i, j, k)` — not on which `MC`/`nr` block the element lands in, and
//! not on the kernel tier (`KC` is shared by all tiers; widening
//! `mr`/`nr` only regroups elements across registers).
//!
//! [`gemm_parallel`] partitions `C`'s rows into contiguous chunks and runs
//! the *identical* serial kernel per chunk, so every element sees the same
//! floating-point operation sequence and the result is bit-identical to
//! the serial kernel for any thread count. Tests pin this with exact
//! equality.

use crate::workspace::{with_thread_workspace, Workspace};
use std::cell::Cell;
use std::sync::OnceLock;

/// Scalar micro-kernel rows: each inner step updates an `MR x NR` block
/// of C.
const MR: usize = 4;
/// Scalar micro-kernel columns.
const NR: usize = 8;
/// k-dimension cache block: an `mr x KC` A-tile plus a `KC x nr` B-tile
/// stay resident in L1. Shared by every kernel tier — the per-element
/// partial-sum boundaries (and hence bit-identity) depend on it.
const KC: usize = 256;
/// m-dimension cache block (rounded down to a whole number of `mr`-row
/// tiles per kernel): the packed A block stays resident in L2.
const MC: usize = 64;

/// Minimum FLOP count (2·m·k·n) before [`gemm_ws`] fans out to
/// [`gemm_parallel`]; below this, thread-spawn overhead dominates.
const PARALLEL_MIN_FLOPS: usize = 4 << 20;

/// Maximum FLOP count (2·m·k·n) served by the un-packed direct kernel
/// (see `use_direct`). Kept well below [`PARALLEL_MIN_FLOPS`] so the
/// direct path never overlaps the parallel one.
const DIRECT_MAX_FLOPS: usize = 1 << 20;

/// Minimum output width for the direct kernel: its row-axpy inner loop
/// only beats the packed micro-kernel when `C` rows are wide enough to
/// amortise the per-`(i, p)` scalar work.
const DIRECT_MIN_N: usize = 128;

/// A micro-kernel variant. Dispatch is a pure function of detected CPU
/// features (plus the `CROSSBOW_GEMM_KERNEL` override, read once): the
/// same binary on the same machine always picks the same kernel, and all
/// variants produce bit-identical output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmKernel {
    /// Portable 4x8 kernel; the fallback on every target.
    Scalar,
    /// 6x16 AVX2 kernel (unfused `vmulps`/`vaddps`).
    Avx2,
    /// 8x16 AVX-512F kernel (unfused `vmulps`/`vaddps`).
    Avx512,
}

impl GemmKernel {
    /// Every kernel tier, slowest first.
    pub fn all() -> [GemmKernel; 3] {
        [GemmKernel::Scalar, GemmKernel::Avx2, GemmKernel::Avx512]
    }

    /// Whether this process's CPU can run the kernel.
    pub fn supported(self) -> bool {
        match self {
            GemmKernel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            GemmKernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            GemmKernel::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The kernel this process dispatches to: the fastest supported tier,
    /// clamped by `CROSSBOW_GEMM_KERNEL` when set. Detected once and
    /// cached; deterministic for the life of the process.
    pub fn detected() -> GemmKernel {
        static DETECTED: OnceLock<GemmKernel> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            let requested = match std::env::var("CROSSBOW_GEMM_KERNEL").as_deref() {
                Ok("scalar") => Some(GemmKernel::Scalar),
                Ok("avx2") => Some(GemmKernel::Avx2),
                Ok("avx512") => Some(GemmKernel::Avx512),
                _ => None,
            };
            let best = *GemmKernel::all()
                .iter()
                .rev()
                .find(|k| k.supported())
                .expect("the scalar kernel is always supported");
            match requested {
                Some(k) if k.supported() => k,
                _ => best,
            }
        })
    }

    /// The kernel the current thread will use: a [`with_kernel`] override
    /// when one is in scope, otherwise [`GemmKernel::detected`].
    pub fn active() -> GemmKernel {
        FORCED
            .with(|cell| cell.get())
            .unwrap_or_else(Self::detected)
    }

    /// Stable lower-case name (used in benchmark output and the
    /// `CROSSBOW_GEMM_KERNEL` override).
    pub fn name(self) -> &'static str {
        match self {
            GemmKernel::Scalar => "scalar",
            GemmKernel::Avx2 => "avx2",
            GemmKernel::Avx512 => "avx512",
        }
    }

    /// Micro-tile rows for this kernel.
    fn mr(self) -> usize {
        match self {
            GemmKernel::Scalar => MR,
            GemmKernel::Avx2 => 6,
            GemmKernel::Avx512 => 8,
        }
    }

    /// Micro-tile columns for this kernel.
    fn nr(self) -> usize {
        match self {
            GemmKernel::Scalar => NR,
            GemmKernel::Avx2 => 16,
            GemmKernel::Avx512 => 16,
        }
    }

    /// `MC` rounded down to whole `mr`-row tiles, so every full m-block
    /// packs without a ragged trailing tile.
    fn mc(self) -> usize {
        (MC / self.mr()) * self.mr()
    }
}

impl std::fmt::Display for GemmKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

thread_local! {
    static FORCED: Cell<Option<GemmKernel>> = const { Cell::new(None) };
}

/// Restores the previous forced kernel even if the closure panics.
struct ForceGuard(Option<GemmKernel>);

impl Drop for ForceGuard {
    fn drop(&mut self) {
        FORCED.with(|cell| cell.set(self.0));
    }
}

/// Runs `f` with every GEMM on *this thread* forced onto `kernel`,
/// regardless of what detection picked. The forced-fallback tests and
/// `membench` use this to prove the scalar path serves the same bytes.
///
/// # Panics
/// Panics when the CPU does not support `kernel`.
pub fn with_kernel<R>(kernel: GemmKernel, f: impl FnOnce() -> R) -> R {
    assert!(
        kernel.supported(),
        "kernel {kernel} is not supported on this CPU"
    );
    let _guard = ForceGuard(FORCED.with(|cell| cell.replace(Some(kernel))));
    f()
}

/// A logical row-major `rows x cols` matrix viewed through strides, so the
/// packing routines can read `A`, `A^T` and `B^T` without materialising
/// the transpose. Element `(r, c)` lives at `data[r * rs + c * cs]`.
#[derive(Clone, Copy)]
struct View<'a> {
    data: &'a [f32],
    rs: usize,
    cs: usize,
}

impl<'a> View<'a> {
    #[inline(always)]
    fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.rs + c * self.cs]
    }
}

/// Reference GEMM: `C = alpha * A @ B + beta * C`, row-major.
///
/// # Panics
/// Panics if slice lengths do not match `m*k`, `k*n`, `m*n`.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_naive(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    check_dims(m, k, n, a, b, c);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

/// Packs an `rows_total x kc` sub-panel of `a` (rows `i0..i0+rows_total`,
/// k `p0..p0+kc`) into `mr`-row tiles: tile-major, then `p`-major, then
/// row within tile. Rows past the panel are zero-filled so the
/// micro-kernel never branches.
fn pack_a(
    a: View<'_>,
    i0: usize,
    rows_total: usize,
    p0: usize,
    kc: usize,
    mr: usize,
    out: &mut [f32],
) {
    let tiles = rows_total.div_ceil(mr);
    for t in 0..tiles {
        let base = t * kc * mr;
        let row0 = i0 + t * mr;
        let rows = mr.min(i0 + rows_total - row0);
        for p in 0..kc {
            let dst = &mut out[base + p * mr..base + p * mr + mr];
            for (r, d) in dst.iter_mut().enumerate() {
                *d = if r < rows {
                    a.at(row0 + r, p0 + p)
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs a `kc x nc` sub-panel of `b` (k `p0..p0+kc`, cols `j0..j0+nc`)
/// into `nr`-column tiles: tile-major, then `p`-major, then column within
/// tile. Columns past `nc` are zero-filled.
fn pack_b(b: View<'_>, p0: usize, kc: usize, j0: usize, nc: usize, nr: usize, out: &mut [f32]) {
    let tiles = nc.div_ceil(nr);
    for t in 0..tiles {
        let base = t * kc * nr;
        let col0 = j0 + t * nr;
        let cols = nr.min(j0 + nc - col0);
        for p in 0..kc {
            let dst = &mut out[base + p * nr..base + p * nr + nr];
            for (cidx, d) in dst.iter_mut().enumerate() {
                *d = if cidx < cols {
                    b.at(p0 + p, col0 + cidx)
                } else {
                    0.0
                };
            }
        }
    }
}

/// Adds `alpha *` the valid `rows x cols` corner of a spilled accumulator
/// tile to C. Shared by every kernel's edge path; the per-element
/// operation (`c += alpha * acc`, separate multiply and add) is identical
/// to the full-tile vector write-back.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn spill_writeback(
    spill: &[f32],
    nr: usize,
    alpha: f32,
    c: &mut [f32],
    c_row0: usize,
    c_col0: usize,
    n: usize,
    rows: usize,
    cols: usize,
) {
    for r in 0..rows {
        let crow = &mut c[(c_row0 + r) * n + c_col0..(c_row0 + r) * n + c_col0 + cols];
        let srow = &spill[r * nr..r * nr + cols];
        for (cv, &av) in crow.iter_mut().zip(srow) {
            *cv += alpha * av;
        }
    }
}

/// The scalar `MR x NR` register-blocked micro-kernel: accumulates
/// `sum_p a_tile[p] (x) b_tile[p]` over `kc` steps into registers, then
/// adds `alpha *` the result to the valid `rows x cols` corner of C.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_scalar(
    kc: usize,
    alpha: f32,
    a_tile: &[f32], // kc * MR, p-major
    b_tile: &[f32], // kc * NR, p-major
    c: &mut [f32],  // full C chunk
    c_row0: usize,
    c_col0: usize,
    n: usize,
    rows: usize,
    cols: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let av = &a_tile[p * MR..p * MR + MR];
        let bv = &b_tile[p * NR..p * NR + NR];
        for r in 0..MR {
            let ar = av[r];
            for (col, &bvc) in bv.iter().enumerate() {
                acc[r][col] += ar * bvc;
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate().take(rows) {
        let crow = &mut c[(c_row0 + r) * n + c_col0..(c_row0 + r) * n + c_col0 + cols];
        for (cv, &av) in crow.iter_mut().zip(acc_row.iter()) {
            *cv += alpha * av;
        }
    }
}

/// The 6x16 AVX2 micro-kernel. Unfused multiply + add per lane keeps the
/// per-element operation sequence identical to [`micro_scalar`].
///
/// # Safety
/// The caller must have verified AVX2 support (kernel dispatch does).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn micro_avx2(
    kc: usize,
    alpha: f32,
    a_tile: &[f32], // kc * 6, p-major
    b_tile: &[f32], // kc * 16, p-major
    c: &mut [f32],
    c_row0: usize,
    c_col0: usize,
    n: usize,
    rows: usize,
    cols: usize,
) {
    use std::arch::x86_64::*;
    const KMR: usize = 6;
    const KNR: usize = 16;
    debug_assert!(a_tile.len() >= kc * KMR && b_tile.len() >= kc * KNR);
    let mut acc = [[_mm256_setzero_ps(); 2]; KMR];
    let mut ap = a_tile.as_ptr();
    let mut bp = b_tile.as_ptr();
    for _ in 0..kc {
        let b0 = _mm256_loadu_ps(bp);
        let b1 = _mm256_loadu_ps(bp.add(8));
        for (r, accr) in acc.iter_mut().enumerate() {
            let ar = _mm256_set1_ps(*ap.add(r));
            accr[0] = _mm256_add_ps(accr[0], _mm256_mul_ps(ar, b0));
            accr[1] = _mm256_add_ps(accr[1], _mm256_mul_ps(ar, b1));
        }
        ap = ap.add(KMR);
        bp = bp.add(KNR);
    }
    if rows == KMR && cols == KNR {
        let alpha_v = _mm256_set1_ps(alpha);
        for (r, accr) in acc.iter().enumerate() {
            let cp = c.as_mut_ptr().add((c_row0 + r) * n + c_col0);
            _mm256_storeu_ps(
                cp,
                _mm256_add_ps(_mm256_loadu_ps(cp), _mm256_mul_ps(alpha_v, accr[0])),
            );
            let cp8 = cp.add(8);
            _mm256_storeu_ps(
                cp8,
                _mm256_add_ps(_mm256_loadu_ps(cp8), _mm256_mul_ps(alpha_v, accr[1])),
            );
        }
    } else {
        let mut spill = [0.0f32; KMR * KNR];
        for (r, accr) in acc.iter().enumerate() {
            _mm256_storeu_ps(spill.as_mut_ptr().add(r * KNR), accr[0]);
            _mm256_storeu_ps(spill.as_mut_ptr().add(r * KNR + 8), accr[1]);
        }
        spill_writeback(&spill, KNR, alpha, c, c_row0, c_col0, n, rows, cols);
    }
}

/// The 8x16 AVX-512F micro-kernel: one zmm accumulator column per row.
/// Unfused multiply + add per lane keeps the per-element operation
/// sequence identical to [`micro_scalar`].
///
/// # Safety
/// The caller must have verified AVX-512F support (kernel dispatch does).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn micro_avx512(
    kc: usize,
    alpha: f32,
    a_tile: &[f32], // kc * 8, p-major
    b_tile: &[f32], // kc * 16, p-major
    c: &mut [f32],
    c_row0: usize,
    c_col0: usize,
    n: usize,
    rows: usize,
    cols: usize,
) {
    use std::arch::x86_64::*;
    const KMR: usize = 8;
    const KNR: usize = 16;
    debug_assert!(a_tile.len() >= kc * KMR && b_tile.len() >= kc * KNR);
    let mut acc = [_mm512_setzero_ps(); KMR];
    let mut ap = a_tile.as_ptr();
    let mut bp = b_tile.as_ptr();
    for _ in 0..kc {
        let bv = _mm512_loadu_ps(bp);
        for (r, accr) in acc.iter_mut().enumerate() {
            let ar = _mm512_set1_ps(*ap.add(r));
            *accr = _mm512_add_ps(*accr, _mm512_mul_ps(ar, bv));
        }
        ap = ap.add(KMR);
        bp = bp.add(KNR);
    }
    if rows == KMR && cols == KNR {
        let alpha_v = _mm512_set1_ps(alpha);
        for (r, accr) in acc.iter().enumerate() {
            let cp = c.as_mut_ptr().add((c_row0 + r) * n + c_col0);
            _mm512_storeu_ps(
                cp,
                _mm512_add_ps(_mm512_loadu_ps(cp), _mm512_mul_ps(alpha_v, *accr)),
            );
        }
    } else {
        let mut spill = [0.0f32; KMR * KNR];
        for (r, accr) in acc.iter().enumerate() {
            _mm512_storeu_ps(spill.as_mut_ptr().add(r * KNR), *accr);
        }
        spill_writeback(&spill, KNR, alpha, c, c_row0, c_col0, n, rows, cols);
    }
}

/// Dispatches one micro-tile to the selected kernel.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_tile(
    kernel: GemmKernel,
    kc: usize,
    alpha: f32,
    a_tile: &[f32],
    b_tile: &[f32],
    c: &mut [f32],
    c_row0: usize,
    c_col0: usize,
    n: usize,
    rows: usize,
    cols: usize,
) {
    match kernel {
        GemmKernel::Scalar => {
            micro_scalar(kc, alpha, a_tile, b_tile, c, c_row0, c_col0, n, rows, cols)
        }
        #[cfg(target_arch = "x86_64")]
        GemmKernel::Avx2 => {
            // SAFETY: dispatch only selects Avx2 when `supported()` saw
            // the avx2 CPU feature.
            unsafe { micro_avx2(kc, alpha, a_tile, b_tile, c, c_row0, c_col0, n, rows, cols) }
        }
        #[cfg(target_arch = "x86_64")]
        GemmKernel::Avx512 => {
            // SAFETY: dispatch only selects Avx512 when `supported()` saw
            // the avx512f CPU feature.
            unsafe { micro_avx512(kc, alpha, a_tile, b_tile, c, c_row0, c_col0, n, rows, cols) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        GemmKernel::Avx2 | GemmKernel::Avx512 => {
            unreachable!("SIMD kernels are never selected off x86-64")
        }
    }
}

/// Serial packed GEMM over logical views: `C = alpha * A @ B + beta * C`
/// where `a` is a logical `m x k` view and `b` a logical `k x n` view and
/// `c` is dense row-major `m x n`. Packing buffers come from `ws`.
#[allow(clippy::too_many_arguments)]
fn packed_serial(
    kernel: GemmKernel,
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: View<'_>,
    b: View<'_>,
    beta: f32,
    c: &mut [f32],
    ws: &mut Workspace,
) {
    apply_beta(beta, c);
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    let (mr, nr) = (kernel.mr(), kernel.nr());
    let kc_max = k.min(KC);
    let mut a_pack = ws.take_pack(kernel.mc().min(m).div_ceil(mr) * mr * kc_max);
    let mut b_pack = ws.take_pack(kc_max * n.div_ceil(nr) * nr);
    packed_serial_into(kernel, m, k, n, alpha, a, b, c, &mut a_pack, &mut b_pack);
    ws.give(a_pack);
    ws.give(b_pack);
}

/// The packed loop nest proper, with caller-provided packing buffers
/// (`a_pack`: at least `ceil(min(mc, m)/mr)*mr * KC`; `b_pack`: at least
/// `KC * ceil(n/nr)*nr`).
#[allow(clippy::too_many_arguments)]
fn packed_serial_into(
    kernel: GemmKernel,
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: View<'_>,
    b: View<'_>,
    c: &mut [f32],
    a_pack: &mut [f32],
    b_pack: &mut [f32],
) {
    let (mr, nr, mc_step) = (kernel.mr(), kernel.nr(), kernel.mc());
    for p0 in (0..k).step_by(KC) {
        let kc = KC.min(k - p0);
        pack_b(b, p0, kc, 0, n, nr, b_pack);
        for i0 in (0..m).step_by(mc_step) {
            let mc = mc_step.min(m - i0);
            pack_a(a, i0, mc, p0, kc, mr, a_pack);
            for jt in 0..n.div_ceil(nr) {
                let j0 = jt * nr;
                let cols = nr.min(n - j0);
                let b_tile = &b_pack[jt * kc * nr..(jt + 1) * kc * nr];
                for it in 0..mc.div_ceil(mr) {
                    let rows = mr.min(mc - it * mr);
                    let a_tile = &a_pack[it * kc * mr..(it + 1) * kc * mr];
                    micro_tile(
                        kernel,
                        kc,
                        alpha,
                        a_tile,
                        b_tile,
                        c,
                        i0 + it * mr,
                        j0,
                        n,
                        rows,
                        cols,
                    );
                }
            }
        }
    }
}

/// Applies the `beta` scaling up-front so the packed loops can accumulate.
/// `beta == 0` *stores* zero (it must overwrite NaN/garbage, not scale it).
fn apply_beta(beta: f32, c: &mut [f32]) {
    if beta == 0.0 {
        c.iter_mut().for_each(|x| *x = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|x| *x *= beta);
    }
}

/// Whether the un-packed direct kernel should serve this multiply. The
/// direct kernel needs dense `B` rows (`cs == 1`) and wins only on
/// small, wide-output problems: its per-`(i, p)` scalar load amortises
/// over a full `C` row, while packing cost amortises over `C`'s rows
/// (`B` panels are reused `m/mr` times) and so dominates at small
/// `m·k·n`. Measured on the conv-lowered shapes in this workspace the
/// crossover sits near `n = 128` / 1 MFLOP. The predicate is a pure
/// function of the problem shape and layout — never of thread counts or
/// the kernel tier — so serial and parallel entry points always agree on
/// the path taken and results stay bit-identical.
fn use_direct(m: usize, k: usize, n: usize, b: View<'_>) -> bool {
    b.cs == 1 && n >= DIRECT_MIN_N && 2 * m * k * n < DIRECT_MAX_FLOPS
}

/// Un-packed kernel for small wide-output problems, where packing
/// overhead dominates: row-axpy accumulation over contiguous `C` and `B`
/// rows (`use_direct` guarantees `b.cs == 1`). Deterministic: for each
/// `C` element the `k` dimension is consumed in one ascending pass.
#[allow(clippy::too_many_arguments)]
fn direct_serial(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: View<'_>,
    b: View<'_>,
    beta: f32,
    c: &mut [f32],
) {
    debug_assert_eq!(b.cs, 1);
    apply_beta(beta, c);
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    for i in 0..m {
        let crow = &mut c[i * n..(i + 1) * n];
        for p in 0..k {
            let av = alpha * a.at(i, p);
            if av == 0.0 {
                continue;
            }
            let brow = &b.data[p * b.rs..p * b.rs + n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// Dispatches a logical-view GEMM: the direct kernel for small problems,
/// otherwise the packed kernel — serially or, when the workspace's
/// parallelism hint and the problem size warrant it, across row panels.
/// The parallel and serial packed paths produce bit-identical output.
#[allow(clippy::too_many_arguments)]
fn packed_dispatch(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: View<'_>,
    b: View<'_>,
    beta: f32,
    c: &mut [f32],
    ws: &mut Workspace,
) {
    if use_direct(m, k, n, b) {
        direct_serial(m, k, n, alpha, a, b, beta, c);
        return;
    }
    let kernel = GemmKernel::active();
    let threads = ws.parallelism();
    if threads > 1 && 2 * m * k * n >= PARALLEL_MIN_FLOPS && m >= 2 * kernel.mr() {
        packed_parallel(kernel, m, k, n, alpha, a, b, beta, c, threads, ws);
    } else {
        packed_serial(kernel, m, k, n, alpha, a, b, beta, c, ws);
    }
}

/// Multi-threaded packed GEMM over row panels. Each thread runs the
/// identical serial kernel on a contiguous chunk of C's rows (and the
/// matching rows of A), so output is bit-identical to the serial kernel.
/// A plan that collapses to a single chunk runs inline on the caller's
/// thread — no spawn, no join, same bytes.
#[allow(clippy::too_many_arguments)]
fn packed_parallel(
    kernel: GemmKernel,
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: View<'_>,
    b: View<'_>,
    beta: f32,
    c: &mut [f32],
    threads: usize,
    ws: &mut Workspace,
) {
    apply_beta(beta, c);
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    let (mr, nr) = (kernel.mr(), kernel.nr());
    // Contiguous row chunks, rounded up to whole micro-tiles.
    let chunk = m.div_ceil(threads).div_ceil(mr) * mr;
    let kc_max = k.min(KC);
    let a_pack_len = kernel.mc().min(chunk).div_ceil(mr) * mr * kc_max;
    let b_pack_len = kc_max * n.div_ceil(nr) * nr;
    let n_chunks = m.div_ceil(chunk);
    if n_chunks <= 1 {
        // One chunk is the whole problem: spawning a thread to run the
        // serial kernel only adds scope/join overhead (measurably slower
        // in BENCH_gemm.json), so run it inline.
        let mut a_pack = ws.take_pack(a_pack_len);
        let mut b_pack = ws.take_pack(b_pack_len);
        packed_serial_into(kernel, m, k, n, alpha, a, b, c, &mut a_pack, &mut b_pack);
        ws.give(a_pack);
        ws.give(b_pack);
        return;
    }
    // Check the per-thread packing buffers out of the caller's arena
    // up-front; they travel into the scoped threads and come back after
    // the join, so the parallel path stays allocation-flat too.
    let mut buffers: Vec<(Vec<f32>, Vec<f32>)> = (0..n_chunks)
        .map(|_| (ws.take_pack(a_pack_len), ws.take_pack(b_pack_len)))
        .collect();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(n_chunks);
        for (chunk_index, c_chunk) in c.chunks_mut(chunk * n).enumerate() {
            let (mut a_pack, mut b_pack) = buffers.pop().expect("one buffer pair per chunk");
            let i0 = chunk_index * chunk;
            let rows = c_chunk.len() / n;
            // Shift the A view down to this chunk's first row.
            let a_chunk = View {
                data: &a.data[i0 * a.rs..],
                rs: a.rs,
                cs: a.cs,
            };
            handles.push(s.spawn(move || {
                packed_serial_into(
                    kernel,
                    rows,
                    k,
                    n,
                    alpha,
                    a_chunk,
                    b,
                    c_chunk,
                    &mut a_pack,
                    &mut b_pack,
                );
                (a_pack, b_pack)
            }));
        }
        for h in handles {
            let (a_pack, b_pack) = h.join().expect("gemm worker panicked");
            ws.give(a_pack);
            ws.give(b_pack);
        }
    });
}

/// Packed GEMM: `C = alpha * A @ B + beta * C`, row-major, with packing
/// buffers drawn from this thread's fallback [`Workspace`].
///
/// # Panics
/// Panics if slice lengths do not match `m*k`, `k*n`, `m*n`.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    with_thread_workspace(|ws| gemm_ws(m, k, n, alpha, a, b, beta, c, ws));
}

/// Packed GEMM with an explicit workspace: `C = alpha * A @ B + beta * C`.
///
/// When the workspace's parallelism hint is above 1 and the problem is
/// large enough, this transparently uses [`gemm_parallel`]; the result is
/// bit-identical either way.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_ws(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    ws: &mut Workspace,
) {
    check_dims(m, k, n, a, b, c);
    let av = View {
        data: a,
        rs: k,
        cs: 1,
    };
    let bv = View {
        data: b,
        rs: n,
        cs: 1,
    };
    packed_dispatch(m, k, n, alpha, av, bv, beta, c, ws);
}

/// Explicitly multi-threaded packed GEMM: `C = alpha * A @ B + beta * C`
/// split over `threads` row panels. Bit-identical to [`gemm_ws`] with
/// parallelism 1 — see the module-level *Determinism* notes. With
/// `threads <= 1` (or a plan that collapses to one row chunk) the serial
/// packed path runs directly, with no thread spawned.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_parallel(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    threads: usize,
    ws: &mut Workspace,
) {
    check_dims(m, k, n, a, b, c);
    let av = View {
        data: a,
        rs: k,
        cs: 1,
    };
    let bv = View {
        data: b,
        rs: n,
        cs: 1,
    };
    let kernel = GemmKernel::active();
    if use_direct(m, k, n, bv) {
        direct_serial(m, k, n, alpha, av, bv, beta, c);
    } else if threads <= 1 || m < 2 * kernel.mr() {
        packed_serial(kernel, m, k, n, alpha, av, bv, beta, c, ws);
    } else {
        packed_parallel(kernel, m, k, n, alpha, av, bv, beta, c, threads, ws);
    }
}

/// GEMM with `A` transposed: `C = alpha * A^T @ B + beta * C` where `A` is
/// stored `k x m` row-major. Used by dense-layer backward passes. Packing
/// buffers come from this thread's fallback workspace.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_at(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32], // k x m
    b: &[f32], // k x n
    beta: f32,
    c: &mut [f32], // m x n
) {
    with_thread_workspace(|ws| gemm_at_ws(m, k, n, alpha, a, b, beta, c, ws));
}

/// [`gemm_at`] with an explicit workspace.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_at_ws(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32], // k x m
    b: &[f32], // k x n
    beta: f32,
    c: &mut [f32], // m x n
    ws: &mut Workspace,
) {
    assert_eq!(a.len(), k * m, "A(T) dims mismatch");
    assert_eq!(b.len(), k * n, "B dims mismatch");
    assert_eq!(c.len(), m * n, "C dims mismatch");
    // Logical A is m x k; element (i, p) of A^T lives at a[p * m + i].
    let av = View {
        data: a,
        rs: 1,
        cs: m,
    };
    let bv = View {
        data: b,
        rs: n,
        cs: 1,
    };
    packed_dispatch(m, k, n, alpha, av, bv, beta, c, ws);
}

/// GEMM with `B` transposed: `C = alpha * A @ B^T + beta * C` where `B` is
/// stored `n x k` row-major. Used by dense-layer input gradients. Packing
/// buffers come from this thread's fallback workspace.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_bt(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32], // m x k
    b: &[f32], // n x k
    beta: f32,
    c: &mut [f32], // m x n
) {
    with_thread_workspace(|ws| gemm_bt_ws(m, k, n, alpha, a, b, beta, c, ws));
}

/// [`gemm_bt`] with an explicit workspace.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_bt_ws(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32], // m x k
    b: &[f32], // n x k
    beta: f32,
    c: &mut [f32], // m x n
    ws: &mut Workspace,
) {
    assert_eq!(a.len(), m * k, "A dims mismatch");
    assert_eq!(b.len(), n * k, "B(T) dims mismatch");
    assert_eq!(c.len(), m * n, "C dims mismatch");
    let av = View {
        data: a,
        rs: k,
        cs: 1,
    };
    // Logical B is k x n; element (p, j) of B^T lives at b[j * k + p].
    let bv = View {
        data: b,
        rs: 1,
        cs: k,
    };
    packed_dispatch(m, k, n, alpha, av, bv, beta, c, ws);
}

/// Matrix-vector product `y = alpha * A @ x + beta * y`, `A: m x n` row-major.
pub fn gemv(m: usize, n: usize, alpha: f32, a: &[f32], x: &[f32], beta: f32, y: &mut [f32]) {
    assert_eq!(a.len(), m * n, "A dims mismatch");
    assert_eq!(x.len(), n, "x dims mismatch");
    assert_eq!(y.len(), m, "y dims mismatch");
    for i in 0..m {
        let row = &a[i * n..(i + 1) * n];
        let mut acc = 0.0f32;
        for (&av, &xv) in row.iter().zip(x) {
            acc += av * xv;
        }
        y[i] = alpha * acc + beta * y[i];
    }
}

fn check_dims(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &[f32]) {
    assert_eq!(a.len(), m * k, "A dims mismatch: {} != {m}*{k}", a.len());
    assert_eq!(b.len(), k * n, "B dims mismatch: {} != {k}*{n}", b.len());
    assert_eq!(c.len(), m * n, "C dims mismatch: {} != {m}*{n}", c.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "elem {i}: {x} vs {y}");
        }
    }

    /// The kernels the running CPU can actually execute.
    fn supported_kernels() -> Vec<GemmKernel> {
        GemmKernel::all()
            .into_iter()
            .filter(|k| k.supported())
            .collect()
    }

    #[test]
    fn naive_matches_hand_example() {
        // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        gemm_naive(2, 2, 2, 1.0, &a, &b, 0.0, &mut c);
        assert_close(&c, &[19.0, 22.0, 43.0, 50.0], 1e-6);
    }

    #[test]
    fn packed_matches_naive_over_sizes() {
        let mut rng = Rng::new(1);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 9, 33),
            (64, 64, 64),
            (65, 70, 130),
        ] {
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            let mut c1: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect();
            let mut c2 = c1.clone();
            gemm_naive(m, k, n, 0.7, &a, &b, 0.3, &mut c1);
            gemm(m, k, n, 0.7, &a, &b, 0.3, &mut c2);
            assert_close(&c1, &c2, 1e-3);
        }
    }

    /// Satellite property test: every packed variant vs the naive
    /// reference over randomized odd shapes and alpha/beta corners.
    #[test]
    fn packed_variants_match_naive_over_odd_shapes_and_scalars() {
        let sizes = [1usize, 3, 17, 64, 65, 130];
        let scalars = [0.0f32, 0.5, 1.0];
        let mut rng = Rng::new(99);
        // Randomized sweep over the cross product, bounded for test time.
        for trial in 0..60 {
            let m = sizes[rng.below(sizes.len())];
            let k = sizes[rng.below(sizes.len())];
            let n = sizes[rng.below(sizes.len())];
            let alpha = scalars[(trial / 3) % 3];
            let beta = scalars[trial % 3];
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            let c0: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect();
            // Tolerance scales with the reduction length.
            let tol = 1e-4 * (k as f32).max(1.0);

            let mut want = c0.clone();
            gemm_naive(m, k, n, alpha, &a, &b, beta, &mut want);
            let mut got = c0.clone();
            gemm(m, k, n, alpha, &a, &b, beta, &mut got);
            assert_close(&want, &got, tol);

            // A^T variant: store A as k x m.
            let mut at = vec![0.0; k * m];
            for i in 0..m {
                for p in 0..k {
                    at[p * m + i] = a[i * k + p];
                }
            }
            let mut got_at = c0.clone();
            gemm_at(m, k, n, alpha, &at, &b, beta, &mut got_at);
            assert_close(&want, &got_at, tol);

            // B^T variant: store B as n x k.
            let mut bt = vec![0.0; n * k];
            for p in 0..k {
                for j in 0..n {
                    bt[j * k + p] = b[p * n + j];
                }
            }
            let mut got_bt = c0.clone();
            gemm_bt(m, k, n, alpha, &a, &bt, beta, &mut got_bt);
            assert_close(&want, &got_bt, tol);
        }
    }

    /// Tentpole property test: every supported SIMD kernel is
    /// *bit-identical* to the forced scalar kernel (exact equality, no
    /// tolerance) over odd shapes, alpha/beta corners, and all four
    /// layout entry points (A@B, A^T@B, A@B^T, and the threaded split).
    #[test]
    fn simd_kernels_are_bit_identical_to_scalar_over_layouts() {
        let sizes = [1usize, 3, 5, 17, 31, 64, 65, 129, 300];
        let mut rng = Rng::new(1234);
        for trial in 0..40 {
            let m = sizes[rng.below(sizes.len())];
            let k = sizes[rng.below(sizes.len())];
            let n = sizes[rng.below(sizes.len())];
            let alpha = [1.0f32, 0.7, 0.0][trial % 3];
            let beta = [0.0f32, 1.0, 0.3][(trial / 3) % 3];
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            let c0: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect();
            let mut at = vec![0.0; k * m];
            for i in 0..m {
                for p in 0..k {
                    at[p * m + i] = a[i * k + p];
                }
            }
            let mut bt = vec![0.0; n * k];
            for p in 0..k {
                for j in 0..n {
                    bt[j * k + p] = b[p * n + j];
                }
            }
            let run = |kernel: GemmKernel| {
                with_kernel(kernel, || {
                    let mut ws = Workspace::new();
                    let mut plain = c0.clone();
                    gemm_ws(m, k, n, alpha, &a, &b, beta, &mut plain, &mut ws);
                    let mut with_at = c0.clone();
                    gemm_at_ws(m, k, n, alpha, &at, &b, beta, &mut with_at, &mut ws);
                    let mut with_bt = c0.clone();
                    gemm_bt_ws(m, k, n, alpha, &a, &bt, beta, &mut with_bt, &mut ws);
                    let mut par = c0.clone();
                    gemm_parallel(m, k, n, alpha, &a, &b, beta, &mut par, 3, &mut ws);
                    (plain, with_at, with_bt, par)
                })
            };
            let scalar = run(GemmKernel::Scalar);
            for kernel in supported_kernels() {
                if kernel == GemmKernel::Scalar {
                    continue;
                }
                let simd = run(kernel);
                assert_eq!(scalar.0, simd.0, "{kernel} A@B m={m} k={k} n={n}");
                assert_eq!(scalar.1, simd.1, "{kernel} A^T@B m={m} k={k} n={n}");
                assert_eq!(scalar.2, simd.2, "{kernel} A@B^T m={m} k={k} n={n}");
                assert_eq!(scalar.3, simd.3, "{kernel} parallel m={m} k={k} n={n}");
            }
        }
    }

    /// Satellite: forcing the scalar fallback must reproduce the default
    /// dispatch byte-for-byte — the fallback serves the same bytes.
    #[test]
    fn forced_scalar_fallback_serves_same_bytes_as_default_dispatch() {
        let mut rng = Rng::new(5);
        let (m, k, n) = (37, 129, 45);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut default = vec![0.0; m * n];
        gemm(m, k, n, 1.0, &a, &b, 0.0, &mut default);
        let mut forced = vec![0.0; m * n];
        with_kernel(GemmKernel::Scalar, || {
            gemm(m, k, n, 1.0, &a, &b, 0.0, &mut forced);
        });
        assert_eq!(default, forced);
    }

    #[test]
    fn kernel_dispatch_is_deterministic_and_scoped() {
        let detected = GemmKernel::detected();
        assert!(detected.supported());
        assert_eq!(detected, GemmKernel::detected(), "detection is cached");
        assert_eq!(GemmKernel::active(), detected);
        with_kernel(GemmKernel::Scalar, || {
            assert_eq!(GemmKernel::active(), GemmKernel::Scalar);
        });
        assert_eq!(GemmKernel::active(), detected, "override is scoped");
    }

    /// Satellite property test: the parallel kernel is *bit-identical* to
    /// the serial one for any thread count (exact equality, no tolerance).
    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let mut rng = Rng::new(7);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 9, 33),
            (65, 70, 130),
            (128, 300, 64),
        ] {
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            let c0: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect();
            let mut ws = Workspace::new();
            let mut serial = c0.clone();
            gemm_ws(m, k, n, 0.7, &a, &b, 0.3, &mut serial, &mut ws);
            for threads in [2, 3, 4, 7] {
                let mut par = c0.clone();
                gemm_parallel(m, k, n, 0.7, &a, &b, 0.3, &mut par, threads, &mut ws);
                assert_eq!(serial, par, "threads={threads} m={m} k={k} n={n}");
            }
        }
    }

    /// Satellite: a parallel plan that collapses to one chunk (few rows,
    /// many threads) must take the inline bypass and still match.
    #[test]
    fn single_chunk_parallel_runs_inline_and_matches_serial() {
        let mut rng = Rng::new(21);
        let (m, k, n) = (9, 200, 90);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut ws = Workspace::new();
        let mut serial = vec![0.0; m * n];
        gemm_ws(m, k, n, 1.0, &a, &b, 0.0, &mut serial, &mut ws);
        // m=9 rounds to at most one chunk at high thread counts.
        for threads in [1, 2, 16] {
            let mut par = vec![0.0; m * n];
            gemm_parallel(m, k, n, 1.0, &a, &b, 0.0, &mut par, threads, &mut ws);
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn dispatch_through_parallelism_hint_is_bit_identical() {
        let mut rng = Rng::new(11);
        // Big enough to clear PARALLEL_MIN_FLOPS so the hint actually
        // fans out.
        let (m, k, n) = (160, 130, 120);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut serial = vec![0.0; m * n];
        let mut ws1 = Workspace::new();
        gemm_ws(m, k, n, 1.0, &a, &b, 0.0, &mut serial, &mut ws1);
        let mut hinted = vec![0.0; m * n];
        let mut ws4 = Workspace::with_parallelism(4);
        gemm_ws(m, k, n, 1.0, &a, &b, 0.0, &mut hinted, &mut ws4);
        assert_eq!(serial, hinted);
    }

    #[test]
    fn workspace_packing_buffers_are_reused_across_calls() {
        let mut ws = Workspace::new();
        let (m, k, n) = (32, 32, 32);
        let a = vec![1.0; m * k];
        let b = vec![1.0; k * n];
        let mut c = vec![0.0; m * n];
        gemm_ws(m, k, n, 1.0, &a, &b, 0.0, &mut c, &mut ws);
        let after_first = ws.stats().fresh_allocs;
        for _ in 0..10 {
            gemm_ws(m, k, n, 1.0, &a, &b, 0.0, &mut c, &mut ws);
        }
        assert_eq!(
            ws.stats().fresh_allocs,
            after_first,
            "packing buffers must be checked out and returned, not reallocated"
        );
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [2.0, 0.0, 0.0, 2.0];
        let mut c = [f32::NAN; 4];
        gemm(2, 2, 2, 1.0, &a, &b, 0.0, &mut c);
        assert_close(&c, &[2.0, 0.0, 0.0, 2.0], 1e-6);
    }

    #[test]
    fn at_variant_matches_explicit_transpose() {
        let mut rng = Rng::new(2);
        let (m, k, n) = (6, 4, 5);
        let at: Vec<f32> = (0..k * m).map(|_| rng.normal()).collect(); // k x m
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        // Materialise A = transpose(at): m x k.
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = at[p * m + i];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm_naive(m, k, n, 1.0, &a, &b, 0.0, &mut c1);
        gemm_at(m, k, n, 1.0, &at, &b, 0.0, &mut c2);
        assert_close(&c1, &c2, 1e-4);
    }

    #[test]
    fn bt_variant_matches_explicit_transpose() {
        let mut rng = Rng::new(3);
        let (m, k, n) = (4, 7, 3);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let bt: Vec<f32> = (0..n * k).map(|_| rng.normal()).collect(); // n x k
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm_naive(m, k, n, 1.0, &a, &b, 0.0, &mut c1);
        gemm_bt(m, k, n, 1.0, &a, &bt, 0.0, &mut c2);
        assert_close(&c1, &c2, 1e-4);
    }

    #[test]
    fn gemv_matches_gemm_with_single_column() {
        let mut rng = Rng::new(4);
        let (m, n) = (5, 8);
        let a: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect();
        let x: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mut y1 = vec![0.0; m];
        let mut y2 = vec![0.0; m];
        gemm_naive(m, n, 1, 1.0, &a, &x, 0.0, &mut y1);
        gemv(m, n, 1.0, &a, &x, 0.0, &mut y2);
        assert_close(&y1, &y2, 1e-4);
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let mut c: Vec<f32> = vec![];
        gemm(0, 3, 0, 1.0, &[], &[], 0.0, &mut c);
        let mut c = vec![1.0, 2.0];
        // k = 0: C = beta * C.
        gemm(1, 0, 2, 1.0, &[], &[], 0.5, &mut c);
        assert_close(&c, &[0.5, 1.0], 1e-6);
    }
}
