//! Matrix multiplication kernels.
//!
//! Dense layers and im2col-lowered convolutions reduce to `sgemm`. The
//! implementations, from slowest to fastest:
//!
//! * [`gemm_naive`] — the obvious triple loop, used as the correctness
//!   reference in tests;
//! * [`gemm`] / [`gemm_at`] / [`gemm_bt`] — packed, register-blocked
//!   kernels (see below) running on a thread-local scratch
//!   [`Workspace`]; drop-in BLAS-style entry points;
//! * [`gemm_ws`] / [`gemm_at_ws`] / [`gemm_bt_ws`] — the same kernels with
//!   an explicit workspace, used by the layer hot path so packing buffers
//!   come from the learner's arena instead of thread-local state;
//! * [`gemm_parallel`] — opt-in multi-threaded row-panel variant,
//!   bit-identical to the serial kernel (see *Determinism* below).
//!
//! All matrices are row-major. `gemm` computes `C = alpha * A @ B + beta * C`
//! with `A: m x k`, `B: k x n`, `C: m x n`.
//!
//! # Packed kernel
//!
//! The kernel follows the classic BLIS/Goto decomposition: `k` is split
//! into `KC`-sized blocks and `m` into `MC`-sized blocks; for each
//! block pair the relevant panels of `A` and `B` are *packed* into
//! contiguous tiles (`MR`-row tiles of `A`, `NR`-column tiles of `B`)
//! held in workspace buffers, and an unrolled `MR x NR` register-blocked
//! micro-kernel accumulates the product. Packing pays for itself because
//! each packed `A` tile is reused across all `NR`-column strips and each
//! packed `B` strip across all `MR`-row strips, with unit-stride loads.
//!
//! The same micro-kernel serves the transposed variants: packing reads
//! through a generic `(row stride, col stride)` view, so `A^T` and `B^T`
//! never materialise.
//!
//! # Determinism
//!
//! The serial reduction order is fixed: for every output element
//! `C[i][j]`, the `k` dimension is consumed in ascending `KC`-sized
//! blocks; within a block, products accumulate into a register in
//! ascending `p`; each block's partial sum is scaled by `alpha` and added
//! to `C[i][j]` in ascending block order. This order depends only on
//! `(i, j, k)` — not on which `MC`/`NR` block the element lands in.
//!
//! [`gemm_parallel`] partitions `C`'s rows into contiguous chunks and runs
//! the *identical* serial kernel per chunk, so every element sees the same
//! floating-point operation sequence and the result is bit-identical to
//! the serial kernel for any thread count. Tests pin this with exact
//! equality.

use crate::workspace::{with_thread_workspace, Workspace};

/// Micro-kernel rows: each inner step updates an `MR x NR` block of C.
const MR: usize = 4;
/// Micro-kernel columns.
const NR: usize = 8;
/// k-dimension cache block: an `MR x KC` A-tile plus an `KC x NR` B-tile
/// stay resident in L1.
const KC: usize = 256;
/// m-dimension cache block (multiple of `MR`): the packed A block
/// (`MC x KC` floats) stays resident in L2.
const MC: usize = 64;

/// Minimum FLOP count (2·m·k·n) before [`gemm_ws`] fans out to
/// [`gemm_parallel`]; below this, thread-spawn overhead dominates.
const PARALLEL_MIN_FLOPS: usize = 4 << 20;

/// Maximum FLOP count (2·m·k·n) served by the un-packed direct kernel
/// (see `use_direct`). Kept well below [`PARALLEL_MIN_FLOPS`] so the
/// direct path never overlaps the parallel one.
const DIRECT_MAX_FLOPS: usize = 1 << 20;

/// Minimum output width for the direct kernel: its row-axpy inner loop
/// only beats the packed micro-kernel when `C` rows are wide enough to
/// amortise the per-`(i, p)` scalar work.
const DIRECT_MIN_N: usize = 128;

/// A logical row-major `rows x cols` matrix viewed through strides, so the
/// packing routines can read `A`, `A^T` and `B^T` without materialising
/// the transpose. Element `(r, c)` lives at `data[r * rs + c * cs]`.
#[derive(Clone, Copy)]
struct View<'a> {
    data: &'a [f32],
    rs: usize,
    cs: usize,
}

impl<'a> View<'a> {
    #[inline(always)]
    fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.rs + c * self.cs]
    }
}

/// Reference GEMM: `C = alpha * A @ B + beta * C`, row-major.
///
/// # Panics
/// Panics if slice lengths do not match `m*k`, `k*n`, `m*n`.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_naive(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    check_dims(m, k, n, a, b, c);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

/// Packs an `mr x kc` sub-panel of `a` (rows `i0..i0+mr`, k `p0..p0+kc`)
/// into `MR`-row tiles: tile-major, then `p`-major, then row within tile.
/// Rows past `mr` are zero-filled so the micro-kernel never branches.
fn pack_a(a: View<'_>, i0: usize, mr: usize, p0: usize, kc: usize, out: &mut [f32]) {
    let tiles = mr.div_ceil(MR);
    for t in 0..tiles {
        let base = t * kc * MR;
        let row0 = i0 + t * MR;
        let rows = MR.min(i0 + mr - row0);
        for p in 0..kc {
            let dst = &mut out[base + p * MR..base + p * MR + MR];
            for (r, d) in dst.iter_mut().enumerate() {
                *d = if r < rows {
                    a.at(row0 + r, p0 + p)
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs a `kc x nc` sub-panel of `b` (k `p0..p0+kc`, cols `j0..j0+nc`)
/// into `NR`-column tiles: tile-major, then `p`-major, then column within
/// tile. Columns past `nc` are zero-filled.
fn pack_b(b: View<'_>, p0: usize, kc: usize, j0: usize, nc: usize, out: &mut [f32]) {
    let tiles = nc.div_ceil(NR);
    for t in 0..tiles {
        let base = t * kc * NR;
        let col0 = j0 + t * NR;
        let cols = NR.min(j0 + nc - col0);
        for p in 0..kc {
            let dst = &mut out[base + p * NR..base + p * NR + NR];
            for (cidx, d) in dst.iter_mut().enumerate() {
                *d = if cidx < cols {
                    b.at(p0 + p, col0 + cidx)
                } else {
                    0.0
                };
            }
        }
    }
}

/// The `MR x NR` register-blocked micro-kernel: accumulates
/// `sum_p a_tile[p] (x) b_tile[p]` over `kc` steps into registers, then
/// adds `alpha *` the result to the valid `rows x cols` corner of C.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_kernel(
    kc: usize,
    alpha: f32,
    a_tile: &[f32], // kc * MR, p-major
    b_tile: &[f32], // kc * NR, p-major
    c: &mut [f32],  // full C chunk
    c_row0: usize,
    c_col0: usize,
    n: usize,
    rows: usize,
    cols: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let av = &a_tile[p * MR..p * MR + MR];
        let bv = &b_tile[p * NR..p * NR + NR];
        for r in 0..MR {
            let ar = av[r];
            for (col, &bvc) in bv.iter().enumerate() {
                acc[r][col] += ar * bvc;
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate().take(rows) {
        let crow = &mut c[(c_row0 + r) * n + c_col0..(c_row0 + r) * n + c_col0 + cols];
        for (cv, &av) in crow.iter_mut().zip(acc_row.iter()) {
            *cv += alpha * av;
        }
    }
}

/// Serial packed GEMM over logical views: `C = alpha * A @ B + beta * C`
/// where `a` is a logical `m x k` view and `b` a logical `k x n` view and
/// `c` is dense row-major `m x n`. Packing buffers come from `ws`.
#[allow(clippy::too_many_arguments)]
fn packed_serial(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: View<'_>,
    b: View<'_>,
    beta: f32,
    c: &mut [f32],
    ws: &mut Workspace,
) {
    apply_beta(beta, c);
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    let kc_max = k.min(KC);
    let mut a_pack = ws.take_pack(MC.min(m.div_ceil(MR) * MR) * kc_max);
    let mut b_pack = ws.take_pack(kc_max * n.div_ceil(NR) * NR);
    packed_serial_into(m, k, n, alpha, a, b, c, &mut a_pack, &mut b_pack);
    ws.give(a_pack);
    ws.give(b_pack);
}

/// The packed loop nest proper, with caller-provided packing buffers
/// (`a_pack`: at least `MC*KC`; `b_pack`: at least `KC * ceil(n/NR)*NR`).
#[allow(clippy::too_many_arguments)]
fn packed_serial_into(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: View<'_>,
    b: View<'_>,
    c: &mut [f32],
    a_pack: &mut [f32],
    b_pack: &mut [f32],
) {
    for p0 in (0..k).step_by(KC) {
        let kc = KC.min(k - p0);
        pack_b(b, p0, kc, 0, n, b_pack);
        for i0 in (0..m).step_by(MC) {
            let mc = MC.min(m - i0);
            pack_a(a, i0, mc, p0, kc, a_pack);
            for jt in 0..n.div_ceil(NR) {
                let j0 = jt * NR;
                let cols = NR.min(n - j0);
                let b_tile = &b_pack[jt * kc * NR..(jt + 1) * kc * NR];
                for it in 0..mc.div_ceil(MR) {
                    let rows = MR.min(mc - it * MR);
                    let a_tile = &a_pack[it * kc * MR..(it + 1) * kc * MR];
                    micro_kernel(
                        kc,
                        alpha,
                        a_tile,
                        b_tile,
                        c,
                        i0 + it * MR,
                        j0,
                        n,
                        rows,
                        cols,
                    );
                }
            }
        }
    }
}

/// Applies the `beta` scaling up-front so the packed loops can accumulate.
/// `beta == 0` *stores* zero (it must overwrite NaN/garbage, not scale it).
fn apply_beta(beta: f32, c: &mut [f32]) {
    if beta == 0.0 {
        c.iter_mut().for_each(|x| *x = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|x| *x *= beta);
    }
}

/// Whether the un-packed direct kernel should serve this multiply. The
/// direct kernel needs dense `B` rows (`cs == 1`) and wins only on
/// small, wide-output problems: its per-`(i, p)` scalar load amortises
/// over a full `C` row, while packing cost amortises over `C`'s rows
/// (`B` panels are reused `m/MR` times) and so dominates at small
/// `m·k·n`. Measured on the conv-lowered shapes in this workspace the
/// crossover sits near `n = 128` / 1 MFLOP. The predicate is a pure
/// function of the problem shape and layout — never of thread counts —
/// so serial and parallel entry points always agree on the path taken
/// and results stay bit-identical.
fn use_direct(m: usize, k: usize, n: usize, b: View<'_>) -> bool {
    b.cs == 1 && n >= DIRECT_MIN_N && 2 * m * k * n < DIRECT_MAX_FLOPS
}

/// Un-packed kernel for small wide-output problems, where packing
/// overhead dominates: row-axpy accumulation over contiguous `C` and `B`
/// rows (`use_direct` guarantees `b.cs == 1`). Deterministic: for each
/// `C` element the `k` dimension is consumed in one ascending pass.
#[allow(clippy::too_many_arguments)]
fn direct_serial(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: View<'_>,
    b: View<'_>,
    beta: f32,
    c: &mut [f32],
) {
    debug_assert_eq!(b.cs, 1);
    apply_beta(beta, c);
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    for i in 0..m {
        let crow = &mut c[i * n..(i + 1) * n];
        for p in 0..k {
            let av = alpha * a.at(i, p);
            if av == 0.0 {
                continue;
            }
            let brow = &b.data[p * b.rs..p * b.rs + n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// Dispatches a logical-view GEMM: the direct kernel for small problems,
/// otherwise the packed kernel — serially or, when the workspace's
/// parallelism hint and the problem size warrant it, across row panels.
/// The parallel and serial packed paths produce bit-identical output.
#[allow(clippy::too_many_arguments)]
fn packed_dispatch(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: View<'_>,
    b: View<'_>,
    beta: f32,
    c: &mut [f32],
    ws: &mut Workspace,
) {
    if use_direct(m, k, n, b) {
        direct_serial(m, k, n, alpha, a, b, beta, c);
        return;
    }
    let threads = ws.parallelism();
    if threads > 1 && 2 * m * k * n >= PARALLEL_MIN_FLOPS && m >= 2 * MR {
        packed_parallel(m, k, n, alpha, a, b, beta, c, threads, ws);
    } else {
        packed_serial(m, k, n, alpha, a, b, beta, c, ws);
    }
}

/// Multi-threaded packed GEMM over row panels. Each thread runs the
/// identical serial kernel on a contiguous chunk of C's rows (and the
/// matching rows of A), so output is bit-identical to the serial kernel.
#[allow(clippy::too_many_arguments)]
fn packed_parallel(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: View<'_>,
    b: View<'_>,
    beta: f32,
    c: &mut [f32],
    threads: usize,
    ws: &mut Workspace,
) {
    apply_beta(beta, c);
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    // Contiguous row chunks, rounded up to whole micro-tiles.
    let chunk = m.div_ceil(threads).div_ceil(MR) * MR;
    let kc_max = k.min(KC);
    let a_pack_len = MC.min(chunk) * kc_max;
    let b_pack_len = kc_max * n.div_ceil(NR) * NR;
    // Check the per-thread packing buffers out of the caller's arena
    // up-front; they travel into the scoped threads and come back after
    // the join, so the parallel path stays allocation-flat too.
    let n_chunks = m.div_ceil(chunk);
    let mut buffers: Vec<(Vec<f32>, Vec<f32>)> = (0..n_chunks)
        .map(|_| (ws.take_pack(a_pack_len), ws.take_pack(b_pack_len)))
        .collect();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(n_chunks);
        for (chunk_index, c_chunk) in c.chunks_mut(chunk * n).enumerate() {
            let (mut a_pack, mut b_pack) = buffers.pop().expect("one buffer pair per chunk");
            let i0 = chunk_index * chunk;
            let rows = c_chunk.len() / n;
            // Shift the A view down to this chunk's first row.
            let a_chunk = View {
                data: &a.data[i0 * a.rs..],
                rs: a.rs,
                cs: a.cs,
            };
            handles.push(s.spawn(move || {
                packed_serial_into(
                    rows,
                    k,
                    n,
                    alpha,
                    a_chunk,
                    b,
                    c_chunk,
                    &mut a_pack,
                    &mut b_pack,
                );
                (a_pack, b_pack)
            }));
        }
        for h in handles {
            let (a_pack, b_pack) = h.join().expect("gemm worker panicked");
            ws.give(a_pack);
            ws.give(b_pack);
        }
    });
}

/// Packed GEMM: `C = alpha * A @ B + beta * C`, row-major, with packing
/// buffers drawn from this thread's fallback [`Workspace`].
///
/// # Panics
/// Panics if slice lengths do not match `m*k`, `k*n`, `m*n`.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    with_thread_workspace(|ws| gemm_ws(m, k, n, alpha, a, b, beta, c, ws));
}

/// Packed GEMM with an explicit workspace: `C = alpha * A @ B + beta * C`.
///
/// When the workspace's parallelism hint is above 1 and the problem is
/// large enough, this transparently uses [`gemm_parallel`]; the result is
/// bit-identical either way.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_ws(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    ws: &mut Workspace,
) {
    check_dims(m, k, n, a, b, c);
    let av = View {
        data: a,
        rs: k,
        cs: 1,
    };
    let bv = View {
        data: b,
        rs: n,
        cs: 1,
    };
    packed_dispatch(m, k, n, alpha, av, bv, beta, c, ws);
}

/// Explicitly multi-threaded packed GEMM: `C = alpha * A @ B + beta * C`
/// split over `threads` row panels. Bit-identical to [`gemm_ws`] with
/// parallelism 1 — see the module-level *Determinism* notes.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_parallel(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    threads: usize,
    ws: &mut Workspace,
) {
    check_dims(m, k, n, a, b, c);
    let av = View {
        data: a,
        rs: k,
        cs: 1,
    };
    let bv = View {
        data: b,
        rs: n,
        cs: 1,
    };
    if use_direct(m, k, n, bv) {
        direct_serial(m, k, n, alpha, av, bv, beta, c);
    } else if threads <= 1 || m < 2 * MR {
        packed_serial(m, k, n, alpha, av, bv, beta, c, ws);
    } else {
        packed_parallel(m, k, n, alpha, av, bv, beta, c, threads, ws);
    }
}

/// GEMM with `A` transposed: `C = alpha * A^T @ B + beta * C` where `A` is
/// stored `k x m` row-major. Used by dense-layer backward passes. Packing
/// buffers come from this thread's fallback workspace.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_at(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32], // k x m
    b: &[f32], // k x n
    beta: f32,
    c: &mut [f32], // m x n
) {
    with_thread_workspace(|ws| gemm_at_ws(m, k, n, alpha, a, b, beta, c, ws));
}

/// [`gemm_at`] with an explicit workspace.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_at_ws(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32], // k x m
    b: &[f32], // k x n
    beta: f32,
    c: &mut [f32], // m x n
    ws: &mut Workspace,
) {
    assert_eq!(a.len(), k * m, "A(T) dims mismatch");
    assert_eq!(b.len(), k * n, "B dims mismatch");
    assert_eq!(c.len(), m * n, "C dims mismatch");
    // Logical A is m x k; element (i, p) of A^T lives at a[p * m + i].
    let av = View {
        data: a,
        rs: 1,
        cs: m,
    };
    let bv = View {
        data: b,
        rs: n,
        cs: 1,
    };
    packed_dispatch(m, k, n, alpha, av, bv, beta, c, ws);
}

/// GEMM with `B` transposed: `C = alpha * A @ B^T + beta * C` where `B` is
/// stored `n x k` row-major. Used by dense-layer input gradients. Packing
/// buffers come from this thread's fallback workspace.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_bt(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32], // m x k
    b: &[f32], // n x k
    beta: f32,
    c: &mut [f32], // m x n
) {
    with_thread_workspace(|ws| gemm_bt_ws(m, k, n, alpha, a, b, beta, c, ws));
}

/// [`gemm_bt`] with an explicit workspace.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_bt_ws(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32], // m x k
    b: &[f32], // n x k
    beta: f32,
    c: &mut [f32], // m x n
    ws: &mut Workspace,
) {
    assert_eq!(a.len(), m * k, "A dims mismatch");
    assert_eq!(b.len(), n * k, "B(T) dims mismatch");
    assert_eq!(c.len(), m * n, "C dims mismatch");
    let av = View {
        data: a,
        rs: k,
        cs: 1,
    };
    // Logical B is k x n; element (p, j) of B^T lives at b[j * k + p].
    let bv = View {
        data: b,
        rs: 1,
        cs: k,
    };
    packed_dispatch(m, k, n, alpha, av, bv, beta, c, ws);
}

/// Matrix-vector product `y = alpha * A @ x + beta * y`, `A: m x n` row-major.
pub fn gemv(m: usize, n: usize, alpha: f32, a: &[f32], x: &[f32], beta: f32, y: &mut [f32]) {
    assert_eq!(a.len(), m * n, "A dims mismatch");
    assert_eq!(x.len(), n, "x dims mismatch");
    assert_eq!(y.len(), m, "y dims mismatch");
    for i in 0..m {
        let row = &a[i * n..(i + 1) * n];
        let mut acc = 0.0f32;
        for (&av, &xv) in row.iter().zip(x) {
            acc += av * xv;
        }
        y[i] = alpha * acc + beta * y[i];
    }
}

fn check_dims(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &[f32]) {
    assert_eq!(a.len(), m * k, "A dims mismatch: {} != {m}*{k}", a.len());
    assert_eq!(b.len(), k * n, "B dims mismatch: {} != {k}*{n}", b.len());
    assert_eq!(c.len(), m * n, "C dims mismatch: {} != {m}*{n}", c.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "elem {i}: {x} vs {y}");
        }
    }

    #[test]
    fn naive_matches_hand_example() {
        // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        gemm_naive(2, 2, 2, 1.0, &a, &b, 0.0, &mut c);
        assert_close(&c, &[19.0, 22.0, 43.0, 50.0], 1e-6);
    }

    #[test]
    fn packed_matches_naive_over_sizes() {
        let mut rng = Rng::new(1);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 9, 33),
            (64, 64, 64),
            (65, 70, 130),
        ] {
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            let mut c1: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect();
            let mut c2 = c1.clone();
            gemm_naive(m, k, n, 0.7, &a, &b, 0.3, &mut c1);
            gemm(m, k, n, 0.7, &a, &b, 0.3, &mut c2);
            assert_close(&c1, &c2, 1e-3);
        }
    }

    /// Satellite property test: every packed variant vs the naive
    /// reference over randomized odd shapes and alpha/beta corners.
    #[test]
    fn packed_variants_match_naive_over_odd_shapes_and_scalars() {
        let sizes = [1usize, 3, 17, 64, 65, 130];
        let scalars = [0.0f32, 0.5, 1.0];
        let mut rng = Rng::new(99);
        // Randomized sweep over the cross product, bounded for test time.
        for trial in 0..60 {
            let m = sizes[rng.below(sizes.len())];
            let k = sizes[rng.below(sizes.len())];
            let n = sizes[rng.below(sizes.len())];
            let alpha = scalars[(trial / 3) % 3];
            let beta = scalars[trial % 3];
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            let c0: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect();
            // Tolerance scales with the reduction length.
            let tol = 1e-4 * (k as f32).max(1.0);

            let mut want = c0.clone();
            gemm_naive(m, k, n, alpha, &a, &b, beta, &mut want);
            let mut got = c0.clone();
            gemm(m, k, n, alpha, &a, &b, beta, &mut got);
            assert_close(&want, &got, tol);

            // A^T variant: store A as k x m.
            let mut at = vec![0.0; k * m];
            for i in 0..m {
                for p in 0..k {
                    at[p * m + i] = a[i * k + p];
                }
            }
            let mut got_at = c0.clone();
            gemm_at(m, k, n, alpha, &at, &b, beta, &mut got_at);
            assert_close(&want, &got_at, tol);

            // B^T variant: store B as n x k.
            let mut bt = vec![0.0; n * k];
            for p in 0..k {
                for j in 0..n {
                    bt[j * k + p] = b[p * n + j];
                }
            }
            let mut got_bt = c0.clone();
            gemm_bt(m, k, n, alpha, &a, &bt, beta, &mut got_bt);
            assert_close(&want, &got_bt, tol);
        }
    }

    /// Satellite property test: the parallel kernel is *bit-identical* to
    /// the serial one for any thread count (exact equality, no tolerance).
    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let mut rng = Rng::new(7);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 9, 33),
            (65, 70, 130),
            (128, 300, 64),
        ] {
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            let c0: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect();
            let mut ws = Workspace::new();
            let mut serial = c0.clone();
            gemm_ws(m, k, n, 0.7, &a, &b, 0.3, &mut serial, &mut ws);
            for threads in [2, 3, 4, 7] {
                let mut par = c0.clone();
                gemm_parallel(m, k, n, 0.7, &a, &b, 0.3, &mut par, threads, &mut ws);
                assert_eq!(serial, par, "threads={threads} m={m} k={k} n={n}");
            }
        }
    }

    #[test]
    fn dispatch_through_parallelism_hint_is_bit_identical() {
        let mut rng = Rng::new(11);
        // Big enough to clear PARALLEL_MIN_FLOPS so the hint actually
        // fans out.
        let (m, k, n) = (160, 130, 120);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut serial = vec![0.0; m * n];
        let mut ws1 = Workspace::new();
        gemm_ws(m, k, n, 1.0, &a, &b, 0.0, &mut serial, &mut ws1);
        let mut hinted = vec![0.0; m * n];
        let mut ws4 = Workspace::with_parallelism(4);
        gemm_ws(m, k, n, 1.0, &a, &b, 0.0, &mut hinted, &mut ws4);
        assert_eq!(serial, hinted);
    }

    #[test]
    fn workspace_packing_buffers_are_reused_across_calls() {
        let mut ws = Workspace::new();
        let (m, k, n) = (32, 32, 32);
        let a = vec![1.0; m * k];
        let b = vec![1.0; k * n];
        let mut c = vec![0.0; m * n];
        gemm_ws(m, k, n, 1.0, &a, &b, 0.0, &mut c, &mut ws);
        let after_first = ws.stats().fresh_allocs;
        for _ in 0..10 {
            gemm_ws(m, k, n, 1.0, &a, &b, 0.0, &mut c, &mut ws);
        }
        assert_eq!(
            ws.stats().fresh_allocs,
            after_first,
            "packing buffers must be checked out and returned, not reallocated"
        );
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [2.0, 0.0, 0.0, 2.0];
        let mut c = [f32::NAN; 4];
        gemm(2, 2, 2, 1.0, &a, &b, 0.0, &mut c);
        assert_close(&c, &[2.0, 0.0, 0.0, 2.0], 1e-6);
    }

    #[test]
    fn at_variant_matches_explicit_transpose() {
        let mut rng = Rng::new(2);
        let (m, k, n) = (6, 4, 5);
        let at: Vec<f32> = (0..k * m).map(|_| rng.normal()).collect(); // k x m
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        // Materialise A = transpose(at): m x k.
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = at[p * m + i];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm_naive(m, k, n, 1.0, &a, &b, 0.0, &mut c1);
        gemm_at(m, k, n, 1.0, &at, &b, 0.0, &mut c2);
        assert_close(&c1, &c2, 1e-4);
    }

    #[test]
    fn bt_variant_matches_explicit_transpose() {
        let mut rng = Rng::new(3);
        let (m, k, n) = (4, 7, 3);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let bt: Vec<f32> = (0..n * k).map(|_| rng.normal()).collect(); // n x k
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm_naive(m, k, n, 1.0, &a, &b, 0.0, &mut c1);
        gemm_bt(m, k, n, 1.0, &a, &bt, 0.0, &mut c2);
        assert_close(&c1, &c2, 1e-4);
    }

    #[test]
    fn gemv_matches_gemm_with_single_column() {
        let mut rng = Rng::new(4);
        let (m, n) = (5, 8);
        let a: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect();
        let x: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mut y1 = vec![0.0; m];
        let mut y2 = vec![0.0; m];
        gemm_naive(m, n, 1, 1.0, &a, &x, 0.0, &mut y1);
        gemv(m, n, 1.0, &a, &x, 0.0, &mut y2);
        assert_close(&y1, &y2, 1e-4);
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let mut c: Vec<f32> = vec![];
        gemm(0, 3, 0, 1.0, &[], &[], 0.0, &mut c);
        let mut c = vec![1.0, 2.0];
        // k = 0: C = beta * C.
        gemm(1, 0, 2, 1.0, &[], &[], 0.5, &mut c);
        assert_close(&c, &[0.5, 1.0], 1e-6);
    }
}
