//! Matrix multiplication kernels.
//!
//! Dense layers and im2col-lowered convolutions reduce to `sgemm`. Two
//! implementations are provided:
//!
//! * [`gemm_naive`] — the obvious triple loop, used as the correctness
//!   reference in tests;
//! * [`gemm`] — a cache-blocked kernel with a transposed-B micro-kernel,
//!   used everywhere else. On the model sizes in this workspace it is
//!   typically 3–6× faster than the naive loop.
//!
//! All matrices are row-major. `gemm` computes `C = alpha * A @ B + beta * C`
//! with `A: m x k`, `B: k x n`, `C: m x n`.

/// Block size (in elements) for the cache-blocked kernel. 64 keeps an A and
/// a B panel of f32 within L1 on common x86 parts.
const BLOCK: usize = 64;

/// Reference GEMM: `C = alpha * A @ B + beta * C`, row-major.
///
/// # Panics
/// Panics if slice lengths do not match `m*k`, `k*n`, `m*n`.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_naive(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    check_dims(m, k, n, a, b, c);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

/// Cache-blocked GEMM: `C = alpha * A @ B + beta * C`, row-major.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    check_dims(m, k, n, a, b, c);
    // Apply beta up-front so the blocked loops can accumulate.
    if beta == 0.0 {
        c.iter_mut().for_each(|x| *x = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|x| *x *= beta);
    }
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    for i0 in (0..m).step_by(BLOCK) {
        let i_end = (i0 + BLOCK).min(m);
        for p0 in (0..k).step_by(BLOCK) {
            let p_end = (p0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j_end = (j0 + BLOCK).min(n);
                for i in i0..i_end {
                    let a_row = &a[i * k..(i + 1) * k];
                    let c_row = &mut c[i * n + j0..i * n + j_end];
                    for p in p0..p_end {
                        let av = alpha * a_row[p];
                        if av == 0.0 {
                            continue;
                        }
                        let b_row = &b[p * n + j0..p * n + j_end];
                        for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                            *cv += av * bv;
                        }
                    }
                }
            }
        }
    }
}

/// GEMM with `A` transposed: `C = alpha * A^T @ B + beta * C` where `A` is
/// stored `k x m` row-major. Used by dense-layer backward passes.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_at(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32], // k x m
    b: &[f32], // k x n
    beta: f32,
    c: &mut [f32], // m x n
) {
    assert_eq!(a.len(), k * m, "A(T) dims mismatch");
    assert_eq!(b.len(), k * n, "B dims mismatch");
    assert_eq!(c.len(), m * n, "C dims mismatch");
    if beta == 0.0 {
        c.iter_mut().for_each(|x| *x = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|x| *x *= beta);
    }
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for i in 0..m {
            let av = alpha * a_row[i];
            if av == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// GEMM with `B` transposed: `C = alpha * A @ B^T + beta * C` where `B` is
/// stored `n x k` row-major. Used by dense-layer input gradients.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_bt(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32], // m x k
    b: &[f32], // n x k
    beta: f32,
    c: &mut [f32], // m x n
) {
    assert_eq!(a.len(), m * k, "A dims mismatch");
    assert_eq!(b.len(), n * k, "B(T) dims mismatch");
    assert_eq!(c.len(), m * n, "C dims mismatch");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            let cv = &mut c[i * n + j];
            *cv = alpha * acc + beta * *cv;
        }
    }
}

/// Matrix-vector product `y = alpha * A @ x + beta * y`, `A: m x n` row-major.
pub fn gemv(m: usize, n: usize, alpha: f32, a: &[f32], x: &[f32], beta: f32, y: &mut [f32]) {
    assert_eq!(a.len(), m * n, "A dims mismatch");
    assert_eq!(x.len(), n, "x dims mismatch");
    assert_eq!(y.len(), m, "y dims mismatch");
    for i in 0..m {
        let row = &a[i * n..(i + 1) * n];
        let mut acc = 0.0f32;
        for (&av, &xv) in row.iter().zip(x) {
            acc += av * xv;
        }
        y[i] = alpha * acc + beta * y[i];
    }
}

fn check_dims(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &[f32]) {
    assert_eq!(a.len(), m * k, "A dims mismatch: {} != {m}*{k}", a.len());
    assert_eq!(b.len(), k * n, "B dims mismatch: {} != {k}*{n}", b.len());
    assert_eq!(c.len(), m * n, "C dims mismatch: {} != {m}*{n}", c.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "elem {i}: {x} vs {y}");
        }
    }

    #[test]
    fn naive_matches_hand_example() {
        // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        gemm_naive(2, 2, 2, 1.0, &a, &b, 0.0, &mut c);
        assert_close(&c, &[19.0, 22.0, 43.0, 50.0], 1e-6);
    }

    #[test]
    fn blocked_matches_naive_over_sizes() {
        let mut rng = Rng::new(1);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 9, 33),
            (64, 64, 64),
            (65, 70, 130),
        ] {
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            let mut c1: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect();
            let mut c2 = c1.clone();
            gemm_naive(m, k, n, 0.7, &a, &b, 0.3, &mut c1);
            gemm(m, k, n, 0.7, &a, &b, 0.3, &mut c2);
            assert_close(&c1, &c2, 1e-3);
        }
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [2.0, 0.0, 0.0, 2.0];
        let mut c = [f32::NAN; 4];
        gemm(2, 2, 2, 1.0, &a, &b, 0.0, &mut c);
        assert_close(&c, &[2.0, 0.0, 0.0, 2.0], 1e-6);
    }

    #[test]
    fn at_variant_matches_explicit_transpose() {
        let mut rng = Rng::new(2);
        let (m, k, n) = (6, 4, 5);
        let at: Vec<f32> = (0..k * m).map(|_| rng.normal()).collect(); // k x m
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        // Materialise A = transpose(at): m x k.
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = at[p * m + i];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm_naive(m, k, n, 1.0, &a, &b, 0.0, &mut c1);
        gemm_at(m, k, n, 1.0, &at, &b, 0.0, &mut c2);
        assert_close(&c1, &c2, 1e-4);
    }

    #[test]
    fn bt_variant_matches_explicit_transpose() {
        let mut rng = Rng::new(3);
        let (m, k, n) = (4, 7, 3);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let bt: Vec<f32> = (0..n * k).map(|_| rng.normal()).collect(); // n x k
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm_naive(m, k, n, 1.0, &a, &b, 0.0, &mut c1);
        gemm_bt(m, k, n, 1.0, &a, &bt, 0.0, &mut c2);
        assert_close(&c1, &c2, 1e-4);
    }

    #[test]
    fn gemv_matches_gemm_with_single_column() {
        let mut rng = Rng::new(4);
        let (m, n) = (5, 8);
        let a: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect();
        let x: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mut y1 = vec![0.0; m];
        let mut y2 = vec![0.0; m];
        gemm_naive(m, n, 1, 1.0, &a, &x, 0.0, &mut y1);
        gemv(m, n, 1.0, &a, &x, 0.0, &mut y2);
        assert_close(&y1, &y2, 1e-4);
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let mut c: Vec<f32> = vec![];
        gemm(0, 3, 0, 1.0, &[], &[], 0.0, &mut c);
        let mut c = vec![1.0, 2.0];
        // k = 0: C = beta * C.
        gemm(1, 0, 2, 1.0, &[], &[], 0.5, &mut c);
        assert_close(&c, &[0.5, 1.0], 1e-6);
    }
}
