//! Tensor shapes.
//!
//! A [`Shape`] is an ordered list of dimension extents. CROSSBOW tensors are
//! row-major (C order), so the *last* dimension is contiguous. Shapes of up
//! to four dimensions are stored inline; anything larger spills to the heap,
//! which never happens for the models in this workspace (NCHW is the widest
//! layout we use).

use std::fmt;

/// Maximum number of dimensions stored inline.
const INLINE: usize = 4;

/// The extents of a dense, row-major tensor.
///
/// ```
/// use crossbow_tensor::Shape;
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: ShapeRepr,
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum ShapeRepr {
    Inline { len: u8, dims: [usize; INLINE] },
    Heap(Vec<usize>),
}

impl Shape {
    /// Creates a shape from a slice of extents.
    ///
    /// A zero-rank shape is a scalar with `len() == 1`.
    pub fn new(dims: &[usize]) -> Self {
        if dims.len() <= INLINE {
            let mut inline = [0usize; INLINE];
            inline[..dims.len()].copy_from_slice(dims);
            Shape {
                dims: ShapeRepr::Inline {
                    len: dims.len() as u8,
                    dims: inline,
                },
            }
        } else {
            Shape {
                dims: ShapeRepr::Heap(dims.to_vec()),
            }
        }
    }

    /// A 1-D shape of `n` elements.
    pub fn vector(n: usize) -> Self {
        Self::new(&[n])
    }

    /// A 2-D `rows x cols` shape.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Self::new(&[rows, cols])
    }

    /// An NCHW image-batch shape.
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self::new(&[n, c, h, w])
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        match &self.dims {
            ShapeRepr::Inline { len, dims } => &dims[..*len as usize],
            ShapeRepr::Heap(v) => v,
        }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims().len()
    }

    /// Extent of dimension `i`. Panics if out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.dims()[i]
    }

    /// Total number of elements (product of extents; 1 for a scalar shape).
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// True when the shape holds no elements (some extent is zero).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides, in elements.
    ///
    /// ```
    /// use crossbow_tensor::Shape;
    /// assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let dims = self.dims();
        let mut strides = vec![1usize; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// Panics (in debug builds) if the index is out of bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        let dims = self.dims();
        debug_assert_eq!(index.len(), dims.len(), "index rank mismatch");
        let mut off = 0usize;
        for (i, (&ix, &d)) in index.iter().zip(dims).enumerate() {
            debug_assert!(ix < d, "index {ix} out of bounds for dim {i} ({d})");
            off = off * d + ix;
        }
        off
    }

    /// Returns a new shape with the same number of elements, reinterpreted
    /// with the given extents. Returns `None` if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Option<Shape> {
        let new = Shape::new(dims);
        (new.len() == self.len()).then_some(new)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dims = self.dims();
        write!(f, "[")?;
        for (i, d) in dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).len(), 24);
        assert_eq!(Shape::vector(7).len(), 7);
        assert_eq!(Shape::matrix(5, 6).len(), 30);
        assert_eq!(Shape::nchw(2, 3, 8, 8).len(), 384);
    }

    #[test]
    fn zero_extent_is_empty() {
        assert!(Shape::new(&[4, 0, 2]).is_empty());
        assert_eq!(Shape::new(&[4, 0, 2]).len(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::vector(5).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        let strides = s.strides();
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..4 {
                    let expect = n * strides[0] + c * strides[1] + h * strides[2];
                    assert_eq!(s.offset(&[n, c, h]), expect);
                }
            }
        }
    }

    #[test]
    fn heap_shape_round_trips() {
        let dims = [2usize, 3, 4, 5, 6];
        let s = Shape::new(&dims);
        assert_eq!(s.dims(), &dims);
        assert_eq!(s.len(), 720);
        assert_eq!(s.rank(), 5);
    }

    #[test]
    fn reshape_preserves_len() {
        let s = Shape::new(&[2, 6]);
        assert_eq!(s.reshape(&[3, 4]).unwrap().dims(), &[3, 4]);
        assert!(s.reshape(&[5]).is_none());
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }
}
