//! A size-bucketed scratch-buffer arena for the training hot path.
//!
//! The paper's §4.5 memory planner observes that a learner's intermediate
//! buffers can be aggressively reused because their lifetimes are short and
//! known. [`Workspace`] is the executable form of that observation on the
//! CPU path: layers and kernels *check out* `Vec<f32>` scratch buffers and
//! *return* them when done, so after a warm-up iteration the training loop
//! performs O(1) fresh allocations per step instead of O(layers).
//!
//! Buffers are bucketed by capacity rounded to the next power of two, so a
//! checkout of any length between two powers of two is served by the same
//! bucket and fragmentation stays bounded. Checked-out buffers are always
//! zero-filled: callers never observe stale data, which keeps results
//! independent of the (otherwise arbitrary) reuse pattern — a requirement
//! for the repo-wide bit-exact determinism contract. (The crate-internal
//! GEMM packing path skips the zero-fill as it overwrites every element it
//! later reads.)
//!
//! The workspace also carries the *parallelism hint* consumed by
//! [`crate::gemm::gemm_ws`]: when a learner lane knows sibling lanes are
//! idle it raises the hint and large GEMMs transparently use
//! [`crate::gemm::gemm_parallel`] (which is bit-identical to the serial
//! kernel by construction; see `gemm.rs`).

use crate::shape::Shape;
use crate::tensor::Tensor;
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Counters describing how a [`Workspace`] has been used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceStats {
    /// Total number of buffer checkouts served.
    pub checkouts: u64,
    /// Checkouts served from a pooled buffer (no allocation).
    pub reuse_hits: u64,
    /// Checkouts that had to allocate a fresh buffer.
    pub fresh_allocs: u64,
    /// Bytes currently held in free buckets.
    pub bytes_free: usize,
    /// Bytes currently checked out by callers.
    pub bytes_out: usize,
    /// High-water mark of `bytes_free + bytes_out` over the lifetime.
    pub high_water: usize,
}

impl WorkspaceStats {
    /// Total bytes the arena is responsible for right now.
    pub fn bytes_held(&self) -> usize {
        self.bytes_free + self.bytes_out
    }
}

/// A size-bucketed checkout/return arena for `f32` scratch buffers.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// Free buffers, keyed by power-of-two capacity class.
    free: BTreeMap<usize, Vec<Vec<f32>>>,
    /// Threads the owner may fan a GEMM out over (1 = serial).
    parallelism: usize,
    stats: WorkspaceStats,
}

/// Rounds a requested length up to its power-of-two capacity class.
fn class_for(len: usize) -> usize {
    len.next_power_of_two().max(8)
}

impl Workspace {
    /// An empty workspace with no pooled buffers and serial GEMMs.
    pub fn new() -> Self {
        Workspace {
            free: BTreeMap::new(),
            parallelism: 1,
            stats: WorkspaceStats::default(),
        }
    }

    /// An empty workspace whose GEMM dispatch may use up to `threads`
    /// threads (clamped to at least 1).
    pub fn with_parallelism(threads: usize) -> Self {
        let mut ws = Workspace::new();
        ws.set_parallelism(threads);
        ws
    }

    /// Sets the GEMM parallelism hint (clamped to at least 1).
    pub fn set_parallelism(&mut self, threads: usize) {
        self.parallelism = threads.max(1);
    }

    /// The current GEMM parallelism hint.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Checks out a zero-filled buffer of exactly `len` elements.
    ///
    /// Served from the smallest free bucket whose class covers `len`, or
    /// freshly allocated (at the class capacity) when none is available.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        self.stats.checkouts += 1;
        let class = class_for(len);
        // Find the smallest bucket that can serve this class.
        let found = self
            .free
            .range_mut(class..)
            .find(|(_, bufs)| !bufs.is_empty())
            .map(|(&c, bufs)| (c, bufs.pop().expect("non-empty bucket")));
        let mut buf = match found {
            Some((c, buf)) => {
                self.stats.reuse_hits += 1;
                self.stats.bytes_free -= c * 4;
                buf
            }
            None => {
                self.stats.fresh_allocs += 1;
                Vec::with_capacity(class)
            }
        };
        buf.clear();
        buf.resize(len, 0.0);
        self.stats.bytes_out += buf.capacity() * 4;
        let held = self.stats.bytes_free + self.stats.bytes_out;
        self.stats.high_water = self.stats.high_water.max(held);
        buf
    }

    /// Checks out a buffer of `len` elements with *unspecified* contents.
    ///
    /// Internal fast path for the GEMM packing buffers, which are fully
    /// written before every read — skipping the zero-fill keeps small
    /// multiplies from being dominated by memset. Determinism is
    /// preserved because no unwritten element is ever observed; callers
    /// outside this crate go through [`Workspace::take`].
    pub(crate) fn take_pack(&mut self, len: usize) -> Vec<f32> {
        self.stats.checkouts += 1;
        let class = class_for(len);
        let found = self
            .free
            .range_mut(class..)
            .find(|(_, bufs)| !bufs.is_empty())
            .map(|(&c, bufs)| (c, bufs.pop().expect("non-empty bucket")));
        let mut buf = match found {
            Some((c, buf)) => {
                self.stats.reuse_hits += 1;
                self.stats.bytes_free -= c * 4;
                buf
            }
            None => {
                self.stats.fresh_allocs += 1;
                Vec::with_capacity(class)
            }
        };
        // resize only writes the grown tail; reused capacity keeps its
        // stale (never-read) contents.
        buf.resize(len, 0.0);
        self.stats.bytes_out += buf.capacity() * 4;
        let held = self.stats.bytes_free + self.stats.bytes_out;
        self.stats.high_water = self.stats.high_water.max(held);
        buf
    }

    /// Returns a buffer to the pool for later reuse.
    ///
    /// The buffer's *capacity* decides its bucket (rounded down to a power
    /// of two), so a returned buffer can always serve a checkout of its
    /// bucket class.
    pub fn give(&mut self, buf: Vec<f32>) {
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        // bytes_out was accounted at checkout by capacity; buffers created
        // outside the workspace are simply adopted.
        self.stats.bytes_out = self.stats.bytes_out.saturating_sub(cap * 4);
        // Round the capacity *down* so the bucket never over-promises.
        let class = if cap.is_power_of_two() {
            cap
        } else {
            cap.next_power_of_two() / 2
        };
        self.stats.bytes_free += cap * 4;
        self.free.entry(class).or_default().push(buf);
        let held = self.stats.bytes_free + self.stats.bytes_out;
        self.stats.high_water = self.stats.high_water.max(held);
    }

    /// Checks out a zero tensor of the given shape, backed by the arena.
    pub fn take_tensor<S: Into<Shape>>(&mut self, shape: S) -> Tensor {
        let shape = shape.into();
        let data = self.take(shape.len());
        Tensor::from_vec(shape, data)
    }

    /// Recycles a tensor's backing storage into the arena.
    pub fn recycle(&mut self, tensor: Tensor) {
        self.give(tensor.into_vec());
    }

    /// Pre-populates the pool with `count` buffers able to hold `len`
    /// elements each, so the first hot-path iteration already reuses.
    pub fn reserve(&mut self, len: usize, count: usize) {
        if len == 0 {
            return;
        }
        for _ in 0..count {
            let buf: Vec<f32> = Vec::with_capacity(class_for(len));
            self.stats.bytes_out += buf.capacity() * 4; // balanced by give()
            self.give(buf);
        }
    }

    /// Current usage counters.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Total fresh allocations performed so far (the hot-path flatness
    /// metric: this should stop growing after the warm-up iteration).
    pub fn fresh_allocs(&self) -> u64 {
        self.stats.fresh_allocs
    }

    /// High-water mark of bytes managed by the arena.
    pub fn high_water_mark(&self) -> usize {
        self.stats.high_water
    }

    /// Bytes currently managed (free + checked out).
    pub fn bytes_held(&self) -> usize {
        self.stats.bytes_free + self.stats.bytes_out
    }
}

thread_local! {
    static THREAD_WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Runs `f` with this thread's shared fallback workspace.
///
/// Legacy call sites that predate explicit workspace threading (and the
/// compatibility wrappers in `gemm.rs`) use this so they still reuse
/// packing buffers across calls instead of allocating per call. The
/// thread-local workspace always has parallelism 1, so code that never
/// opted in to `gemm_parallel` stays serial.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    THREAD_WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_exact_length() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(10);
        assert_eq!(buf.len(), 10);
        assert!(buf.iter().all(|&v| v == 0.0));
        buf.iter_mut().for_each(|v| *v = 7.0);
        ws.give(buf);
        // Reused buffer must come back zeroed despite the writes.
        let again = ws.take(10);
        assert_eq!(again.len(), 10);
        assert!(again.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn reuse_is_counted_and_allocations_stay_flat() {
        let mut ws = Workspace::new();
        for _ in 0..100 {
            let a = ws.take(100);
            let b = ws.take(33);
            ws.give(a);
            ws.give(b);
        }
        let stats = ws.stats();
        assert_eq!(stats.checkouts, 200);
        // First iteration allocates (two different classes), the other 99
        // reuse: allocations are O(1), not O(iterations).
        assert_eq!(stats.fresh_allocs, 2);
        assert_eq!(stats.reuse_hits, 198);
    }

    #[test]
    fn buckets_serve_any_length_in_class() {
        let mut ws = Workspace::new();
        let a = ws.take(100); // class 128
        ws.give(a);
        let b = ws.take(120); // same class: must reuse
        assert_eq!(ws.stats().fresh_allocs, 1);
        ws.give(b);
        let c = ws.take(129); // class 256: fresh
        assert_eq!(ws.stats().fresh_allocs, 2);
        ws.give(c);
    }

    #[test]
    fn larger_buckets_can_serve_smaller_requests() {
        let mut ws = Workspace::new();
        let big = ws.take(1000);
        ws.give(big);
        let small = ws.take(4);
        assert_eq!(small.len(), 4);
        assert_eq!(
            ws.stats().fresh_allocs,
            1,
            "the 1024-class buffer serves the small request"
        );
        ws.give(small);
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let mut ws = Workspace::new();
        let a = ws.take(256);
        let b = ws.take(256);
        let peak = ws.bytes_held();
        ws.give(a);
        ws.give(b);
        let small = ws.take(8);
        ws.give(small);
        assert!(ws.high_water_mark() >= peak);
        assert!(ws.bytes_held() <= ws.high_water_mark());
    }

    #[test]
    fn reserve_prewarms_the_pool() {
        let mut ws = Workspace::new();
        ws.reserve(500, 2);
        let a = ws.take(500);
        let b = ws.take(400);
        assert_eq!(ws.stats().fresh_allocs, 0, "reserved buffers serve both");
        ws.give(a);
        ws.give(b);
    }

    #[test]
    fn tensor_round_trip_recycles_storage() {
        let mut ws = Workspace::new();
        let t = ws.take_tensor([4, 8]);
        assert_eq!(t.len(), 32);
        ws.recycle(t);
        let t2 = ws.take_tensor([2, 16]);
        assert_eq!(ws.stats().fresh_allocs, 1);
        ws.recycle(t2);
    }

    #[test]
    fn parallelism_hint_round_trips_and_clamps() {
        let mut ws = Workspace::with_parallelism(4);
        assert_eq!(ws.parallelism(), 4);
        ws.set_parallelism(0);
        assert_eq!(ws.parallelism(), 1);
    }
}
