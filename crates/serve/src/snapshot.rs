//! Checkpoint-backed snapshot exchange.
//!
//! The PR-2 checkpoint format is the model-exchange medium between
//! training and serving: a trainer (or [`export_snapshot`]) writes a
//! `TrainingState` whose `algo.center` is the deployable consensus model
//! `z`, and [`load_into`] publishes the newest valid one into a
//! [`SnapshotRegistry`]. Because only `center` is read, a serving process
//! can point directly at a live training checkpoint directory — the
//! corruption fallback and atomic-write guarantees carry over for free.

use crate::registry::{ModelSnapshot, SnapshotRegistry};
use crossbow_checkpoint::{
    AlgoState, CheckpointError, CheckpointStore, RetentionPolicy, TrainingState,
};
use std::path::Path;

/// The `algorithm` tag of checkpoints written by [`export_snapshot`].
///
/// Distinct from every trainer algorithm name, and exported snapshots
/// carry no RNG streams, so the trainer's `resume` can never mistake one
/// for a resumable training state.
pub const SNAPSHOT_ALGORITHM: &str = "serve-snapshot";

/// Why a checkpointed model could not be imported.
#[derive(Debug)]
pub enum ImportError {
    /// The store could not be opened or read.
    Checkpoint(CheckpointError),
    /// The checkpointed model does not fit the registry's spec.
    Mismatch {
        /// Parameter count the registry serves.
        expected: usize,
        /// Parameter count found in the checkpoint.
        got: usize,
    },
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Checkpoint(e) => write!(f, "snapshot import failed: {e}"),
            ImportError::Mismatch { expected, got } => {
                write!(
                    f,
                    "checkpointed model has {got} parameters, registry serves {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ImportError {}

impl From<CheckpointError> for ImportError {
    fn from(e: CheckpointError) -> Self {
        ImportError::Checkpoint(e)
    }
}

/// Durably exports a snapshot's weights into `dir` using the checkpoint
/// format (atomic write, checksummed, epoch-boundary retention class).
///
/// # Errors
/// [`CheckpointError::Io`] when the directory or file cannot be written.
pub fn export_snapshot(dir: &Path, snapshot: &ModelSnapshot) -> Result<(), CheckpointError> {
    let store = CheckpointStore::open(dir, RetentionPolicy::default())?;
    let state = TrainingState {
        algorithm: SNAPSHOT_ALGORITHM.to_string(),
        iterations: snapshot.iteration,
        algo: AlgoState {
            center: snapshot.params.clone(),
            ..AlgoState::default()
        },
        ..TrainingState::default()
    };
    store.save(&state, true)?;
    Ok(())
}

/// Publishes the newest valid checkpointed model in `dir` into the
/// registry. Returns the assigned registry version, or `None` when the
/// directory holds no usable checkpoint (absent, empty, or all corrupt —
/// the same fallback semantics the trainer's resume has).
///
/// Accepts both [`export_snapshot`] output and live training checkpoints:
/// either way `algo.center` is the deployable consensus model.
///
/// # Errors
/// [`ImportError::Checkpoint`] on I/O failure, [`ImportError::Mismatch`]
/// when the model does not fit the registry.
pub fn load_into(registry: &SnapshotRegistry, dir: &Path) -> Result<Option<u64>, ImportError> {
    let store = CheckpointStore::open(dir, RetentionPolicy::default())?;
    let loaded = match store.load_latest() {
        Ok(Some(loaded)) => loaded,
        Ok(None) => return Ok(None),
        Err(CheckpointError::Corrupt(_)) => return Ok(None),
        Err(e @ CheckpointError::Io(_)) => return Err(e.into()),
    };
    let center = loaded.state.algo.center;
    let expected = registry.spec().param_len;
    if center.len() != expected {
        return Err(ImportError::Mismatch {
            expected,
            got: center.len(),
        });
    }
    let version = registry
        .publish(center, loaded.state.iterations)
        .expect("length checked above");
    Ok(Some(version))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelSpec;

    fn spec(n: usize) -> ModelSpec {
        ModelSpec {
            input_shape: vec![2],
            classes: 2,
            param_len: n,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("crossbow-serve-{name}-{}", std::process::id()))
    }

    #[test]
    fn export_then_import_round_trips_weights_and_iteration() {
        let dir = tmp("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = SnapshotRegistry::new(spec(3));
        registry.publish(vec![1.0, 2.0, 3.0], 40).unwrap();
        let snapshot = registry.current().unwrap();
        export_snapshot(&dir, &snapshot).expect("export");

        let fresh = SnapshotRegistry::new(spec(3));
        let version = load_into(&fresh, &dir).expect("import").expect("present");
        assert_eq!(version, 1);
        let imported = fresh.current().unwrap();
        assert_eq!(imported.params, vec![1.0, 2.0, 3.0]);
        assert_eq!(imported.iteration, 40);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_empty_directory_imports_nothing() {
        let dir = tmp("empty");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = SnapshotRegistry::new(spec(2));
        assert!(load_into(&registry, &dir).expect("no error").is_none());
        assert_eq!(registry.version(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_mismatched_checkpoint_is_refused() {
        let dir = tmp("mismatch");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = SnapshotRegistry::new(spec(3));
        registry.publish(vec![0.0; 3], 1).unwrap();
        export_snapshot(&dir, &registry.current().unwrap()).expect("export");
        let narrow = SnapshotRegistry::new(spec(2));
        match load_into(&narrow, &dir) {
            Err(ImportError::Mismatch {
                expected: 2,
                got: 3,
            }) => {}
            other => panic!("expected mismatch, got {other:?}"),
        }
        assert_eq!(narrow.version(), 0, "nothing published");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_live_training_checkpoint_is_servable() {
        // A training checkpoint (any algorithm tag, RNG streams present)
        // serves its center model directly.
        let dir = tmp("training");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir, RetentionPolicy::default()).unwrap();
        let state = TrainingState {
            algorithm: "sma".to_string(),
            iterations: 99,
            algo: AlgoState {
                center: vec![0.5, -0.5],
                center_prev: vec![0.4, -0.4],
                replicas: vec![vec![0.6, -0.6]],
                aux: vec![],
                iter: 99,
            },
            rngs: vec![crossbow_tensor::RngState {
                state: 1,
                inc: 2,
                spare_normal: None,
            }],
            ..TrainingState::default()
        };
        store.save(&state, false).unwrap();
        let registry = SnapshotRegistry::new(spec(2));
        let version = load_into(&registry, &dir)
            .expect("import")
            .expect("present");
        assert_eq!(version, 1);
        assert_eq!(registry.current().unwrap().params, vec![0.5, -0.5]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
