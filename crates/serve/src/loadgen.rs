//! Closed- and open-loop load generators.
//!
//! Closed loop: `clients` threads each issue a request, wait for the
//! answer, and immediately issue the next — the classic
//! think-time-zero client model, which also gives a per-client
//! happens-before chain: request `i+1` is submitted only after `i`
//! completed, so the served snapshot versions each client observes must
//! be non-decreasing. Open loop: requests are paced at a fixed arrival
//! rate regardless of completions, the model that actually exposes
//! queueing collapse under overload.

use crate::server::{Client, ServeError, Ticket};
use crossbow_tensor::Rng;
use std::time::{Duration, Instant};

/// How long a load client waits for any single answer before giving up
/// with [`ServeError::Deadline`]. Far above any sane service time, so it
/// never fires in a healthy run — it exists so one stuck worker turns
/// into a counted failure instead of hanging the whole load run.
const WAIT_LIMIT: Duration = Duration::from_secs(60);

/// The arrival model of a load run.
#[derive(Clone, Copy, Debug)]
pub enum LoadMode {
    /// `clients` concurrent callers, each issuing `requests_per_client`
    /// back-to-back requests.
    Closed {
        /// Concurrent closed-loop callers.
        clients: usize,
        /// Requests each caller issues.
        requests_per_client: usize,
    },
    /// A single submitter pacing `requests` arrivals at `rps` per second,
    /// collecting answers asynchronously.
    Open {
        /// Target arrival rate, requests per second.
        rps: f64,
        /// Total requests to submit.
        requests: usize,
    },
}

/// A load-generation run.
#[derive(Clone, Copy, Debug)]
pub struct LoadConfig {
    /// Arrival model.
    pub mode: LoadMode,
    /// Seed for input selection.
    pub seed: u64,
    /// Test hook: the closed-loop client with this index panics instead
    /// of running, exercising the harness's panic containment.
    pub panic_client: Option<usize>,
}

/// What a load run observed.
#[derive(Clone, Copy, Debug)]
pub struct LoadResult {
    /// Requests submitted (admitted or not).
    pub submitted: u64,
    /// Requests answered with a prediction.
    pub ok: u64,
    /// Requests refused at admission (`Overloaded`).
    pub rejected: u64,
    /// Requests that errored any other way (`NoModel`, `Dropped`, …).
    pub failed: u64,
    /// Closed-loop client threads that panicked mid-run. Their partial
    /// observations are lost, but the run itself survives and reports.
    pub client_panics: u64,
    /// Whether every closed-loop client observed non-decreasing snapshot
    /// versions (vacuously true in open mode, where completions are
    /// unordered).
    pub versions_monotonic: bool,
    /// Lowest snapshot version observed (`u64::MAX` when none).
    pub min_version: u64,
    /// Highest snapshot version observed (0 when none).
    pub max_version: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Completed requests per second.
    pub throughput: f64,
}

impl LoadResult {
    fn empty() -> Self {
        LoadResult {
            submitted: 0,
            ok: 0,
            rejected: 0,
            failed: 0,
            client_panics: 0,
            versions_monotonic: true,
            min_version: u64::MAX,
            max_version: 0,
            wall: Duration::ZERO,
            throughput: 0.0,
        }
    }

    fn absorb(&mut self, other: &LoadResult) {
        self.submitted += other.submitted;
        self.ok += other.ok;
        self.rejected += other.rejected;
        self.failed += other.failed;
        self.client_panics += other.client_panics;
        self.versions_monotonic &= other.versions_monotonic;
        self.min_version = self.min_version.min(other.min_version);
        self.max_version = self.max_version.max(other.max_version);
    }

    fn finish(mut self, wall: Duration) -> Self {
        self.wall = wall;
        self.throughput = if wall.as_secs_f64() > 0.0 {
            self.ok as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        self
    }

    /// Combines this run with a *later* run against the same server.
    ///
    /// Because registry versions only grow, a later round must not
    /// observe a version below an earlier round's maximum; the merged
    /// `versions_monotonic` enforces that across the boundary too.
    pub fn merged_with(&self, later: &LoadResult) -> LoadResult {
        let mut merged = *self;
        merged.absorb(later);
        merged.versions_monotonic = self.versions_monotonic
            && later.versions_monotonic
            && (self.max_version == 0
                || later.min_version == u64::MAX
                || later.min_version >= self.max_version);
        merged.finish(self.wall + later.wall)
    }
}

/// Per-thread observation fold.
struct ClientLog {
    result: LoadResult,
    last_version: u64,
}

impl ClientLog {
    fn new() -> Self {
        ClientLog {
            result: LoadResult::empty(),
            last_version: 0,
        }
    }

    fn observe(&mut self, outcome: Result<crate::server::Prediction, ServeError>, ordered: bool) {
        self.result.submitted += 1;
        match outcome {
            Ok(prediction) => {
                self.result.ok += 1;
                self.result.min_version = self.result.min_version.min(prediction.version);
                self.result.max_version = self.result.max_version.max(prediction.version);
                if ordered && prediction.version < self.last_version {
                    self.result.versions_monotonic = false;
                }
                self.last_version = self.last_version.max(prediction.version);
            }
            Err(ServeError::Overloaded) => self.result.rejected += 1,
            Err(_) => self.result.failed += 1,
        }
    }
}

/// Runs one load generation pass, drawing request payloads from `inputs`
/// uniformly at random (seeded, so the request mix is reproducible).
///
/// # Panics
/// Panics when `inputs` is empty or the mode requests zero work.
pub fn run_load(client: &Client, inputs: &[Vec<f32>], config: &LoadConfig) -> LoadResult {
    assert!(!inputs.is_empty(), "need at least one request payload");
    let started = Instant::now();
    let merged = match config.mode {
        LoadMode::Closed {
            clients,
            requests_per_client,
        } => {
            assert!(clients > 0 && requests_per_client > 0, "empty closed load");
            let logs: Vec<ClientLog> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        let client = client.clone();
                        scope.spawn(move || {
                            assert!(
                                config.panic_client != Some(c),
                                "injected load-client panic (client {c})"
                            );
                            let mut rng = Rng::new(config.seed ^ (c as u64).wrapping_mul(0x9e37));
                            let mut log = ClientLog::new();
                            for _ in 0..requests_per_client {
                                let input = inputs[rng.below(inputs.len())].clone();
                                let outcome = client
                                    .submit(input)
                                    .and_then(|ticket| ticket.wait_deadline(WAIT_LIMIT));
                                log.observe(outcome, true);
                            }
                            log
                        })
                    })
                    .collect();
                // A panicked client must not take the whole run down: its
                // observations are lost, but the panic itself becomes a
                // counted, reportable outcome.
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|_| {
                            let mut log = ClientLog::new();
                            log.result.client_panics = 1;
                            log
                        })
                    })
                    .collect()
            });
            let mut merged = LoadResult::empty();
            for log in &logs {
                merged.absorb(&log.result);
            }
            merged
        }
        LoadMode::Open { rps, requests } => {
            assert!(rps > 0.0 && requests > 0, "empty open load");
            let interval = Duration::from_secs_f64(1.0 / rps);
            let mut rng = Rng::new(config.seed);
            let mut log = ClientLog::new();
            let mut tickets: Vec<Ticket> = Vec::with_capacity(requests);
            let base = Instant::now();
            for i in 0..requests {
                // Pace against the schedule, not the previous send, so a
                // slow submit does not silently lower the offered rate.
                let target = base + interval.mul_f64(i as f64);
                if let Some(wait) = target.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let input = inputs[rng.below(inputs.len())].clone();
                match client.submit(input) {
                    Ok(ticket) => tickets.push(ticket),
                    Err(e) => log.observe(Err(e), false),
                }
            }
            for ticket in tickets {
                log.observe(ticket.wait_deadline(WAIT_LIMIT), false);
            }
            log.result
        }
    };
    merged.finish(started.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ModelSpec, SnapshotRegistry};
    use crate::server::{ServeConfig, Server};
    use crossbow_nn::zoo::mlp;
    use std::sync::Arc;

    fn serving() -> (Server, Vec<Vec<f32>>) {
        let net = Arc::new(mlp(4, &[8], 3));
        let registry = Arc::new(SnapshotRegistry::new(ModelSpec::of(&net)));
        let params = net.init_params(&mut Rng::new(1));
        registry.publish(params, 1).unwrap();
        let server = Server::start(net, registry, ServeConfig::new(2));
        let inputs: Vec<Vec<f32>> = (0..8).map(|i| vec![i as f32 * 0.1; 4]).collect();
        (server, inputs)
    }

    #[test]
    fn closed_loop_completes_every_request() {
        let (server, inputs) = serving();
        let result = run_load(
            &server.client(),
            &inputs,
            &LoadConfig {
                mode: LoadMode::Closed {
                    clients: 4,
                    requests_per_client: 25,
                },
                seed: 9,
                panic_client: None,
            },
        );
        assert_eq!(result.submitted, 100);
        assert_eq!(result.ok, 100);
        assert_eq!(result.rejected + result.failed, 0);
        assert!(result.versions_monotonic);
        assert_eq!((result.min_version, result.max_version), (1, 1));
        assert!(result.throughput > 0.0);
        assert_eq!(server.shutdown().completed, 100);
    }

    #[test]
    fn open_loop_completes_every_request_at_a_feasible_rate() {
        let (server, inputs) = serving();
        let result = run_load(
            &server.client(),
            &inputs,
            &LoadConfig {
                mode: LoadMode::Open {
                    rps: 2000.0,
                    requests: 60,
                },
                seed: 9,
                panic_client: None,
            },
        );
        assert_eq!(result.submitted, 60);
        assert_eq!(result.ok, 60);
        // Pacing 60 arrivals at 2000/s takes at least ~30ms.
        assert!(result.wall >= Duration::from_millis(25));
        server.shutdown();
    }

    #[test]
    fn a_panicking_client_is_counted_not_fatal() {
        let (server, inputs) = serving();
        let result = run_load(
            &server.client(),
            &inputs,
            &LoadConfig {
                mode: LoadMode::Closed {
                    clients: 4,
                    requests_per_client: 25,
                },
                seed: 9,
                panic_client: Some(2),
            },
        );
        assert_eq!(result.client_panics, 1, "the panic is a counted outcome");
        assert_eq!(result.submitted, 75, "the other three clients finish");
        assert_eq!(result.ok, 75);
        assert!(result.versions_monotonic);
        server.shutdown();
    }

    #[test]
    fn merged_rounds_check_monotonicity_across_the_boundary() {
        let mut early = LoadResult::empty();
        early.ok = 10;
        early.submitted = 10;
        early.min_version = 1;
        early.max_version = 3;
        let early = early.finish(Duration::from_millis(10));
        let mut late = LoadResult::empty();
        late.ok = 10;
        late.submitted = 10;
        late.min_version = 3;
        late.max_version = 5;
        let late = late.finish(Duration::from_millis(10));
        let merged = early.merged_with(&late);
        assert!(merged.versions_monotonic);
        assert_eq!((merged.min_version, merged.max_version), (1, 5));
        assert_eq!(merged.ok, 20);
        // A later round that saw an *older* version than the earlier
        // round's max breaks monotonicity.
        let mut stale = late;
        stale.min_version = 2;
        assert!(!early.merged_with(&stale).versions_monotonic);
    }
}
