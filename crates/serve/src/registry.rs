//! The snapshot registry: versioned, immutable model snapshots swapped
//! atomically under concurrent readers.
//!
//! Serving the paper's average model `z` while a trainer keeps improving
//! it needs one synchronisation point: a single cell holding the *current*
//! [`ModelSnapshot`]. Publishers replace the cell; readers clone an `Arc`
//! out of it. In-flight requests keep serving the snapshot they already
//! hold — a hot swap never blocks or invalidates them — and because
//! versions only ever grow, two reads ordered in time always observe
//! non-decreasing versions.

use crossbow_nn::{Network, QuantizedModel};
use crossbow_sync::PublishHook;
use crossbow_tensor::Precision;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The shape contract a snapshot must satisfy to be servable by a given
/// network: parameter count, per-sample input shape and class count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelSpec {
    /// Per-sample input shape (no batch dimension).
    pub input_shape: Vec<usize>,
    /// Number of output classes.
    pub classes: usize,
    /// Total parameter count.
    pub param_len: usize,
}

impl ModelSpec {
    /// The spec of a concrete network.
    pub fn of(net: &Network) -> ModelSpec {
        ModelSpec {
            input_shape: net.input_shape().dims().to_vec(),
            classes: net.output_classes(),
            param_len: net.param_len(),
        }
    }

    /// Flat length of one input sample.
    pub fn sample_len(&self) -> usize {
        self.input_shape.iter().product::<usize>().max(1)
    }
}

/// An immutable published model: weights plus provenance metadata.
///
/// Snapshots are shared as `Arc<ModelSnapshot>`; once published they are
/// never mutated, so a worker thread can keep computing against one while
/// a newer version is being swapped in.
#[derive(Clone, Debug)]
pub struct ModelSnapshot {
    /// Registry-assigned version; strictly increasing per registry.
    pub version: u64,
    /// Training iteration the weights came from (0 for an initial or
    /// imported model without provenance).
    pub iteration: u64,
    /// The flat parameter vector (the trainer's consensus model `z`).
    /// For a quantized snapshot these are the *effective* parameters
    /// (dense weights dequantized), so every f32 consumer keeps working.
    pub params: Vec<f32>,
    /// The shape contract the weights satisfy.
    pub spec: ModelSpec,
    /// Serving precision of this snapshot.
    pub precision: Precision,
    /// Accuracy this snapshot gains (+) or loses (−) against its f32
    /// source, measured at quantization time (`None` for f32 snapshots
    /// or when no eval set was available).
    pub accuracy_delta: Option<f32>,
    /// The quantized serving form; `None` means workers run the plain
    /// f32 forward on `params`.
    pub quant: Option<Arc<QuantizedModel>>,
}

/// Why a publication was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PublishError {
    /// The parameter vector does not fit the registry's [`ModelSpec`].
    ShapeMismatch {
        /// Parameter count the registry serves.
        expected: usize,
        /// Parameter count that was offered.
        got: usize,
    },
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "snapshot has {got} parameters, registry serves {expected}"
                )
            }
        }
    }
}

impl std::error::Error for PublishError {}

/// A single-cell registry of [`ModelSnapshot`]s with atomic hot-swap.
#[derive(Debug)]
pub struct SnapshotRegistry {
    spec: ModelSpec,
    current: Mutex<Option<Arc<ModelSnapshot>>>,
    /// Version of the newest published snapshot (0 = none yet). Written
    /// under the `current` lock, read lock-free.
    version: AtomicU64,
}

impl SnapshotRegistry {
    /// An empty registry for models of the given spec.
    pub fn new(spec: ModelSpec) -> Self {
        SnapshotRegistry {
            spec,
            current: Mutex::new(None),
            version: AtomicU64::new(0),
        }
    }

    /// The shape contract snapshots must satisfy.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Publishes a new snapshot, swapping it in atomically, and returns
    /// its assigned version. Readers holding the previous snapshot are
    /// unaffected; new reads see the new version.
    ///
    /// # Errors
    /// [`PublishError::ShapeMismatch`] when `params` does not fit the
    /// registry's spec; the current snapshot is left in place.
    pub fn publish(&self, params: Vec<f32>, iteration: u64) -> Result<u64, PublishError> {
        self.publish_snapshot(params, iteration, Precision::F32, None, None)
    }

    /// Publishes a quantized model as the next snapshot. The snapshot's
    /// `params` are the model's effective f32 parameters, so f32
    /// consumers (candidate staging, checkpoint export) keep working;
    /// workers serve through the quantized forward path.
    ///
    /// # Errors
    /// [`PublishError::ShapeMismatch`] when the model does not fit the
    /// registry's spec.
    pub fn publish_quantized(
        &self,
        quant: Arc<QuantizedModel>,
        iteration: u64,
        accuracy_delta: Option<f32>,
    ) -> Result<u64, PublishError> {
        let precision = quant.precision();
        self.publish_snapshot(
            quant.params().to_vec(),
            iteration,
            precision,
            accuracy_delta,
            Some(quant),
        )
    }

    fn publish_snapshot(
        &self,
        params: Vec<f32>,
        iteration: u64,
        precision: Precision,
        accuracy_delta: Option<f32>,
        quant: Option<Arc<QuantizedModel>>,
    ) -> Result<u64, PublishError> {
        if params.len() != self.spec.param_len {
            return Err(PublishError::ShapeMismatch {
                expected: self.spec.param_len,
                got: params.len(),
            });
        }
        let mut cell = self.current.lock().expect("registry lock poisoned");
        let version = self.version.load(Ordering::Relaxed) + 1;
        *cell = Some(Arc::new(ModelSnapshot {
            version,
            iteration,
            params,
            spec: self.spec.clone(),
            precision,
            accuracy_delta,
            quant,
        }));
        self.version.store(version, Ordering::Release);
        Ok(version)
    }

    /// The current snapshot, or `None` before the first publication.
    pub fn current(&self) -> Option<Arc<ModelSnapshot>> {
        self.current
            .lock()
            .expect("registry lock poisoned")
            .as_ref()
            .map(Arc::clone)
    }

    /// Version of the newest published snapshot (0 = none yet).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// A trainer-side publication hook: every `every` applied iterations
    /// the trainer hands its consensus model here and the registry swaps
    /// in a fresh snapshot. Publications that do not fit the spec are
    /// dropped (the trainer must not die because a registry was
    /// misconfigured); the registry version simply does not advance.
    pub fn hook(self: &Arc<Self>, every: u64) -> PublishHook {
        let registry = Arc::clone(self);
        PublishHook::new(every, move |iteration, z| {
            let _ = registry.publish(z.to_vec(), iteration);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: usize) -> ModelSpec {
        ModelSpec {
            input_shape: vec![n],
            classes: 2,
            param_len: n,
        }
    }

    #[test]
    fn starts_empty_and_versions_increase() {
        let reg = SnapshotRegistry::new(spec(3));
        assert!(reg.current().is_none());
        assert_eq!(reg.version(), 0);
        assert_eq!(reg.publish(vec![0.0; 3], 10), Ok(1));
        assert_eq!(reg.publish(vec![1.0; 3], 20), Ok(2));
        let snap = reg.current().expect("published");
        assert_eq!(snap.version, 2);
        assert_eq!(snap.iteration, 20);
        assert_eq!(snap.params, vec![1.0; 3]);
        assert_eq!(reg.version(), 2);
    }

    #[test]
    fn shape_mismatch_is_refused_and_keeps_the_old_snapshot() {
        let reg = SnapshotRegistry::new(spec(3));
        reg.publish(vec![0.5; 3], 1).unwrap();
        let err = reg.publish(vec![0.0; 4], 2).unwrap_err();
        assert_eq!(
            err,
            PublishError::ShapeMismatch {
                expected: 3,
                got: 4
            }
        );
        assert_eq!(reg.current().unwrap().version, 1, "old snapshot kept");
    }

    #[test]
    fn readers_keep_their_snapshot_across_a_swap() {
        let reg = SnapshotRegistry::new(spec(2));
        reg.publish(vec![1.0, 1.0], 1).unwrap();
        let held = reg.current().unwrap();
        reg.publish(vec![2.0, 2.0], 2).unwrap();
        assert_eq!(held.params, vec![1.0, 1.0], "in-flight reader unaffected");
        assert_eq!(reg.current().unwrap().params, vec![2.0, 2.0]);
    }

    #[test]
    fn concurrent_reads_see_nondecreasing_versions() {
        let reg = Arc::new(SnapshotRegistry::new(spec(1)));
        reg.publish(vec![0.0], 0).unwrap();
        std::thread::scope(|scope| {
            let reader = {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    let mut last = 0;
                    for _ in 0..2000 {
                        let v = reg.current().expect("published").version;
                        assert!(v >= last, "version went backwards: {last} -> {v}");
                        last = v;
                    }
                })
            };
            for i in 1..200u64 {
                reg.publish(vec![i as f32], i).unwrap();
            }
            reader.join().expect("reader");
        });
    }

    #[test]
    fn concurrent_publishers_keep_versions_dense_and_snapshots_untorn() {
        const PUBLISHERS: u64 = 4;
        const ROUNDS: u64 = 250;
        let reg = Arc::new(SnapshotRegistry::new(spec(8)));
        std::thread::scope(|scope| {
            // A reader races the publishers: every snapshot it pulls must
            // be internally consistent (all 8 params carry the same tag —
            // a torn swap would mix tags) and versions must never move
            // backwards across reads.
            let reader = {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    let mut last = 0u64;
                    while last < PUBLISHERS * ROUNDS {
                        if let Some(snap) = reg.current() {
                            let tag = snap.params[0];
                            assert!(
                                snap.params.iter().all(|&p| p == tag),
                                "torn snapshot at version {}",
                                snap.version
                            );
                            assert!(
                                snap.version >= last,
                                "version went backwards: {last} -> {}",
                                snap.version
                            );
                            last = snap.version;
                        }
                        std::hint::spin_loop();
                    }
                })
            };
            let publishers: Vec<_> = (0..PUBLISHERS)
                .map(|p| {
                    let reg = Arc::clone(&reg);
                    scope.spawn(move || {
                        let mut versions = Vec::with_capacity(ROUNDS as usize);
                        for r in 0..ROUNDS {
                            let tag = (p * ROUNDS + r) as f32;
                            versions.push(reg.publish(vec![tag; 8], r).unwrap());
                        }
                        versions
                    })
                })
                .collect();
            let mut all: Vec<u64> = publishers
                .into_iter()
                .flat_map(|h| h.join().expect("publisher"))
                .collect();
            reader.join().expect("reader");
            // Each publisher's own versions are strictly increasing by
            // construction of publish(); across all publishers the
            // assigned versions must be exactly 1..=N with no gaps or
            // duplicates — the registry never loses or reuses a version.
            all.sort_unstable();
            let expected: Vec<u64> = (1..=PUBLISHERS * ROUNDS).collect();
            assert_eq!(all, expected, "versions are dense and unique");
        });
        assert_eq!(reg.version(), PUBLISHERS * ROUNDS);
    }

    #[test]
    fn hook_publishes_into_the_registry() {
        let reg = Arc::new(SnapshotRegistry::new(spec(2)));
        let hook = reg.hook(5);
        hook.publish(5, &[1.0, 2.0]);
        let snap = reg.current().expect("hook published");
        assert_eq!(snap.version, 1);
        assert_eq!(snap.iteration, 5);
        // A mis-shaped publication is dropped, not fatal.
        hook.publish(10, &[1.0, 2.0, 3.0]);
        assert_eq!(reg.version(), 1);
    }
}
