//! Online inference for the CROSSBOW reproduction.
//!
//! Training's product — the central average model `z` (§3.1–3.2) — is
//! what a deployment actually runs. This crate is the serving half of
//! that train/serve stack, built entirely on std plus the in-repo
//! bounded channel:
//!
//! * [`registry`] — versioned, immutable [`ModelSnapshot`]s swapped
//!   atomically under concurrent readers (hot swap without blocking
//!   in-flight requests), fed either by a live trainer's
//!   [`PublishHook`](crossbow_sync::PublishHook) or from a checkpoint
//!   store;
//! * [`batcher`] — deadline-based micro-batching: serving inverts the
//!   paper's small-batch thesis, coalescing many independent requests
//!   into one efficient forward pass (flush on `max_batch` or
//!   `max_delay`);
//! * [`server`] — a bounded queue with `Overloaded` admission control, a
//!   pool of eval-mode inference workers, and a graceful drain that
//!   answers every admitted request before stopping;
//! * [`metrics`] — log2-bucketed latency histograms (p50/p95/p99),
//!   throughput and queue-depth gauges, merged into a [`ServeReport`];
//! * [`snapshot`] — model exchange over the PR-2 checkpoint format
//!   (export a snapshot durably, serve straight out of a training
//!   checkpoint directory);
//! * [`quant_snapshot`] — the `CBQS` quantized snapshot format: a
//!   versioned, checksummed, atomically-written inference artifact at
//!   f32, bf16 or per-channel int8 precision, reassembled on load so the
//!   served bytes match the exporter's exactly;
//! * [`loadgen`] + [`train_serve`] — closed/open-loop load generators
//!   and the combined run where a background trainer keeps publishing
//!   fresher `z` snapshots mid-load.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batcher;
pub mod loadgen;
pub mod metrics;
pub mod quant_snapshot;
pub mod registry;
pub mod server;
pub mod snapshot;
pub mod train_serve;

pub use batcher::BatchConfig;
pub use loadgen::{run_load, LoadConfig, LoadMode, LoadResult};
pub use metrics::{Histogram, LatencySummary, ServeReport};
pub use quant_snapshot::{export_quant_snapshot, load_quant_into, QUANT_SNAPSHOT_FILE};
pub use registry::{ModelSnapshot, ModelSpec, PublishError, SnapshotRegistry};
pub use server::{Client, Prediction, ServeConfig, ServeError, Server, Ticket};
pub use snapshot::{export_snapshot, load_into, ImportError, SNAPSHOT_ALGORITHM};
pub use train_serve::{train_and_serve, TrainAndServeConfig, TrainAndServeReport};
