//! Train-and-serve: a live trainer feeding a live server.
//!
//! The paper's average model `z` is the deployable artifact; here it is
//! deployed *while still improving*. A background trainer runs the usual
//! synchronous loop with a [`PublishHook`](crossbow_sync::PublishHook)
//! that hands `z` to the snapshot registry every few iterations, and the
//! bundled load generator hammers the server throughout. Hot swaps are
//! invisible to clients except as rising snapshot versions: zero requests
//! drop, and closed-loop clients observe versions that only grow.

use crate::loadgen::{run_load, LoadConfig, LoadResult};
use crate::metrics::ServeReport;
use crate::registry::{ModelSpec, SnapshotRegistry};
use crate::server::{ServeConfig, Server};
use crossbow_data::Dataset;
use crossbow_nn::{accuracy_delta, Network};
use crossbow_sync::algorithm::SyncAlgorithm;
use crossbow_sync::{train, TrainerConfig, TrainingCurve};
use crossbow_tensor::Precision;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How many test samples the quantization accuracy delta is measured on.
const DELTA_EVAL_SAMPLES: usize = 256;

/// A combined training-and-serving run.
#[derive(Clone, Debug)]
pub struct TrainAndServeConfig {
    /// The background training run.
    pub trainer: TrainerConfig,
    /// Publish the consensus model every this many applied iterations.
    pub publish_every: u64,
    /// The server.
    pub serve: ServeConfig,
    /// The foreground load.
    pub load: LoadConfig,
    /// Serving precision of the *final* model. Training publications stay
    /// f32 (the model is still moving; quantizing every few iterations
    /// buys nothing); once training finishes, the last consensus model is
    /// quantized, its accuracy delta measured against f32 on the test
    /// set, and the result published before the guaranteed post-training
    /// load round — so that round serves at the configured precision.
    pub precision: Precision,
}

/// What a train-and-serve run produced.
#[derive(Clone, Debug)]
pub struct TrainAndServeReport {
    /// The background trainer's curve.
    pub curve: TrainingCurve,
    /// The merged observation of every load round.
    pub load: LoadResult,
    /// The server's own metrics.
    pub serve: ServeReport,
}

/// Trains `algo` in a background thread while serving it under load.
///
/// The initial model is published before the server starts (version 1),
/// so no request ever sees `NoModel`; the trainer then re-publishes `z`
/// every `publish_every` iterations. Load runs in rounds until the
/// trainer finishes, with one final round guaranteed to run entirely
/// after the last publication. Request payloads are drawn from
/// `test_set`.
pub fn train_and_serve<A: SyncAlgorithm + Send>(
    net: &Arc<Network>,
    train_set: &Dataset,
    test_set: &Dataset,
    algo: &mut A,
    config: &TrainAndServeConfig,
) -> TrainAndServeReport {
    let registry = Arc::new(SnapshotRegistry::new(ModelSpec::of(net)));
    registry
        .publish(algo.consensus().to_vec(), 0)
        .expect("initial model fits its own network");
    let trainer_config = config
        .trainer
        .clone()
        .with_publish(registry.hook(config.publish_every));

    let sample_len = test_set.sample_len();
    let images = test_set.images_tensor();
    let inputs: Vec<Vec<f32>> = images
        .data()
        .chunks_exact(sample_len)
        .take(64)
        .map(<[f32]>::to_vec)
        .collect();

    let server = Server::start(Arc::clone(net), Arc::clone(&registry), config.serve.clone());
    let client = server.client();
    let done = AtomicBool::new(false);
    let (curve, load) = std::thread::scope(|scope| {
        let trainer = scope.spawn(|| {
            let curve = train(net, train_set, test_set, algo, &trainer_config);
            done.store(true, Ordering::Release);
            curve
        });
        let mut merged: Option<LoadResult> = None;
        loop {
            // Sampled before the round: when true, this round runs wholly
            // after training, so the loop always ends with a post-training
            // round against the final model.
            let finished = done.load(Ordering::Acquire);
            if finished && config.precision != Precision::F32 {
                publish_final_quantized(net, &registry, test_set, config.precision);
            }
            let round = run_load(&client, &inputs, &config.load);
            merged = Some(match merged {
                None => round,
                Some(earlier) => earlier.merged_with(&round),
            });
            if finished {
                break;
            }
        }
        let curve = trainer.join().expect("trainer thread panicked");
        (curve, merged.expect("at least one load round"))
    });
    let serve = server.shutdown();
    TrainAndServeReport { curve, load, serve }
}

/// Quantizes the registry's latest model (the final consensus `z` at
/// this point), measures what the precision costs against f32 on a
/// bounded slice of the test set, and publishes the result.
fn publish_final_quantized(
    net: &Network,
    registry: &SnapshotRegistry,
    test_set: &Dataset,
    precision: Precision,
) {
    let snapshot = registry.current().expect("published before serving");
    let model = net.quantize(&snapshot.params, precision);
    let sample_len = test_set.sample_len();
    let n = test_set.labels().len().min(DELTA_EVAL_SAMPLES);
    let delta = if n > 0 {
        let images = test_set.images_tensor();
        let head = crossbow_tensor::Tensor::from_vec(
            crossbow_tensor::Shape::new(&{
                let mut dims = vec![n];
                dims.extend_from_slice(net.input_shape().dims());
                dims
            }),
            images.data()[..n * sample_len].to_vec(),
        );
        Some(accuracy_delta(
            net,
            &snapshot.params,
            &model,
            &head,
            &test_set.labels()[..n],
            32,
        ))
    } else {
        None
    };
    registry
        .publish_quantized(Arc::new(model), snapshot.iteration, delta)
        .expect("quantized model keeps its own spec");
}
