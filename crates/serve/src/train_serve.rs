//! Train-and-serve: a live trainer feeding a live server.
//!
//! The paper's average model `z` is the deployable artifact; here it is
//! deployed *while still improving*. A background trainer runs the usual
//! synchronous loop with a [`PublishHook`](crossbow_sync::PublishHook)
//! that hands `z` to the snapshot registry every few iterations, and the
//! bundled load generator hammers the server throughout. Hot swaps are
//! invisible to clients except as rising snapshot versions: zero requests
//! drop, and closed-loop clients observe versions that only grow.

use crate::loadgen::{run_load, LoadConfig, LoadResult};
use crate::metrics::ServeReport;
use crate::registry::{ModelSpec, SnapshotRegistry};
use crate::server::{ServeConfig, Server};
use crossbow_data::Dataset;
use crossbow_nn::Network;
use crossbow_sync::algorithm::SyncAlgorithm;
use crossbow_sync::{train, TrainerConfig, TrainingCurve};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A combined training-and-serving run.
#[derive(Clone, Debug)]
pub struct TrainAndServeConfig {
    /// The background training run.
    pub trainer: TrainerConfig,
    /// Publish the consensus model every this many applied iterations.
    pub publish_every: u64,
    /// The server.
    pub serve: ServeConfig,
    /// The foreground load.
    pub load: LoadConfig,
}

/// What a train-and-serve run produced.
#[derive(Clone, Debug)]
pub struct TrainAndServeReport {
    /// The background trainer's curve.
    pub curve: TrainingCurve,
    /// The merged observation of every load round.
    pub load: LoadResult,
    /// The server's own metrics.
    pub serve: ServeReport,
}

/// Trains `algo` in a background thread while serving it under load.
///
/// The initial model is published before the server starts (version 1),
/// so no request ever sees `NoModel`; the trainer then re-publishes `z`
/// every `publish_every` iterations. Load runs in rounds until the
/// trainer finishes, with one final round guaranteed to run entirely
/// after the last publication. Request payloads are drawn from
/// `test_set`.
pub fn train_and_serve<A: SyncAlgorithm + Send>(
    net: &Arc<Network>,
    train_set: &Dataset,
    test_set: &Dataset,
    algo: &mut A,
    config: &TrainAndServeConfig,
) -> TrainAndServeReport {
    let registry = Arc::new(SnapshotRegistry::new(ModelSpec::of(net)));
    registry
        .publish(algo.consensus().to_vec(), 0)
        .expect("initial model fits its own network");
    let trainer_config = config
        .trainer
        .clone()
        .with_publish(registry.hook(config.publish_every));

    let sample_len = test_set.sample_len();
    let images = test_set.images_tensor();
    let inputs: Vec<Vec<f32>> = images
        .data()
        .chunks_exact(sample_len)
        .take(64)
        .map(<[f32]>::to_vec)
        .collect();

    let server = Server::start(Arc::clone(net), registry, config.serve.clone());
    let client = server.client();
    let done = AtomicBool::new(false);
    let (curve, load) = std::thread::scope(|scope| {
        let trainer = scope.spawn(|| {
            let curve = train(net, train_set, test_set, algo, &trainer_config);
            done.store(true, Ordering::Release);
            curve
        });
        let mut merged: Option<LoadResult> = None;
        loop {
            // Sampled before the round: when true, this round runs wholly
            // after training, so the loop always ends with a post-training
            // round against the final model.
            let finished = done.load(Ordering::Acquire);
            let round = run_load(&client, &inputs, &config.load);
            merged = Some(match merged {
                None => round,
                Some(earlier) => earlier.merged_with(&round),
            });
            if finished {
                break;
            }
        }
        let curve = trainer.join().expect("trainer thread panicked");
        (curve, merged.expect("at least one load round"))
    });
    let serve = server.shutdown();
    TrainAndServeReport { curve, load, serve }
}
