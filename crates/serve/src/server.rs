//! The inference server: admission control, a worker pool, and graceful
//! shutdown.
//!
//! A [`Server`] owns a bounded request queue and N worker threads. A
//! [`Client`] submits requests; admission is non-blocking — a full queue
//! answers [`ServeError::Overloaded`] immediately instead of stalling the
//! caller (backpressure surfaces at the edge, where the caller can shed
//! or retry). Workers coalesce requests into micro-batches (see
//! [`crate::batcher`]), run an eval-mode forward pass against the current
//! registry snapshot, and answer each request with the predicted class
//! and the snapshot version that produced it.

use crate::batcher::{collect_batch, BatchConfig};
use crate::metrics::{ServeReport, WorkerStats};
use crate::registry::SnapshotRegistry;
use crossbow_data::chan::{self, RecvTimeoutError, SendTimeoutError};
use crossbow_nn::Network;
use crossbow_telemetry::{Counter, Gauge, Recorder, SpanKind, Telemetry, HOST_DEVICE};
use crossbow_tensor::{Shape, Tensor};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often a parked worker re-checks the stopping flag.
const POLL: Duration = Duration::from_millis(10);

/// Why a request was not answered with a prediction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The request queue is full; shed load or retry later.
    Overloaded,
    /// The server is draining; no new requests are admitted.
    ShuttingDown,
    /// No model has been published to the registry yet.
    NoModel,
    /// The input does not match the model's sample shape.
    BadRequest {
        /// Flat input length the model expects.
        expected: usize,
        /// Flat input length that was submitted.
        got: usize,
    },
    /// The worker died before answering (a bug, surfaced rather than
    /// hung on).
    Dropped,
    /// [`Ticket::wait_deadline`] gave up before an answer arrived. The
    /// request itself may still be served; only this caller stopped
    /// waiting.
    Deadline,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "request queue full"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::NoModel => write!(f, "no model published yet"),
            ServeError::BadRequest { expected, got } => {
                write!(f, "input has {got} values, model expects {expected}")
            }
            ServeError::Dropped => write!(f, "request dropped without an answer"),
            ServeError::Deadline => write!(f, "gave up waiting for the answer"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A served inference result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted class (argmax of the logits).
    pub class: usize,
    /// Version of the snapshot that answered.
    pub version: u64,
    /// Queue time + inference latency of this request.
    pub latency: Duration,
}

/// A request's answer, as delivered to its [`Ticket`].
pub(crate) type Reply = Result<Prediction, ServeError>;

/// One queued request.
#[derive(Debug)]
pub(crate) struct Job {
    pub input: Vec<f32>,
    pub enqueued: Instant,
    pub resp: mpsc::Sender<Reply>,
}

/// A pending request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket(mpsc::Receiver<Reply>);

impl Ticket {
    /// Blocks until the request is answered.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.0.recv().unwrap_or(Err(ServeError::Dropped))
    }

    /// Blocks until the request is answered or `limit` elapses, whichever
    /// comes first.
    ///
    /// # Errors
    /// [`ServeError::Deadline`] on timeout — a typed, bounded outcome, so
    /// a wedged worker can never hang a caller forever —
    /// [`ServeError::Dropped`] when the worker died, or whatever the
    /// worker answered.
    pub fn wait_deadline(self, limit: Duration) -> Result<Prediction, ServeError> {
        match self.0.recv_timeout(limit) {
            Ok(reply) => reply,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::Deadline),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Dropped),
        }
    }
}

/// Cross-thread server state. Admission counters live in the telemetry
/// registry (shared instruments, atomic updates) so an external observer
/// sees the same numbers the final report does.
struct Shared {
    stopping: AtomicBool,
    rejected: Arc<Counter>,
    queue_depth: Arc<Gauge>,
}

/// Server parameters.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Inference worker threads.
    pub workers: usize,
    /// Micro-batching parameters.
    pub batch: BatchConfig,
    /// Load-testing knob: sleep this long inside every forward pass, so
    /// overload and drain behaviour can be exercised deterministically
    /// with tiny models (`None` = off).
    pub synthetic_delay: Option<Duration>,
    /// Tracing + metrics sink. Workers record batch-fetch and inference
    /// spans into its recorder, and admission control publishes the
    /// `serve.rejected` counter and `serve.queue_depth` gauge to its
    /// registry. `None` keeps the metrics (on a private registry) but
    /// drops the spans.
    pub telemetry: Option<Telemetry>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            batch: BatchConfig::default(),
            synthetic_delay: None,
            telemetry: None,
        }
    }
}

impl ServeConfig {
    /// A config with `workers` threads and default batching.
    pub fn new(workers: usize) -> Self {
        ServeConfig {
            workers: workers.max(1),
            ..ServeConfig::default()
        }
    }
}

/// A submission handle; clone one per caller thread.
#[derive(Clone)]
pub struct Client {
    tx: chan::Sender<Job>,
    rx: Arc<chan::Receiver<Job>>,
    shared: Arc<Shared>,
    sample_len: usize,
}

impl Client {
    /// Submits one request without blocking; the returned [`Ticket`]
    /// resolves when a worker answers.
    ///
    /// # Errors
    /// [`ServeError::ShuttingDown`] during drain,
    /// [`ServeError::BadRequest`] on a shape mismatch and
    /// [`ServeError::Overloaded`] when the bounded queue is full.
    pub fn submit(&self, input: Vec<f32>) -> Result<Ticket, ServeError> {
        if self.shared.stopping.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        if input.len() != self.sample_len {
            return Err(ServeError::BadRequest {
                expected: self.sample_len,
                got: input.len(),
            });
        }
        let (resp, ticket) = mpsc::channel();
        let job = Job {
            input,
            enqueued: Instant::now(),
            resp,
        };
        match self.tx.send_timeout(job, Duration::ZERO) {
            Ok(()) => {
                self.shared.queue_depth.set(self.rx.len() as u64);
                Ok(Ticket(ticket))
            }
            Err(SendTimeoutError::Timeout(_)) => {
                self.shared.rejected.inc();
                Err(ServeError::Overloaded)
            }
            Err(SendTimeoutError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Submits and blocks for the answer.
    ///
    /// # Errors
    /// Everything [`Client::submit`] returns, plus whatever the worker
    /// answers (e.g. [`ServeError::NoModel`]).
    pub fn call(&self, input: Vec<f32>) -> Result<Prediction, ServeError> {
        self.submit(input)?.wait()
    }

    /// Requests currently queued (a point-in-time gauge).
    pub fn queue_depth(&self) -> usize {
        self.rx.len()
    }
}

/// A running inference server.
pub struct Server {
    client: Client,
    workers: Vec<JoinHandle<WorkerStats>>,
    shared: Arc<Shared>,
    registry: Arc<SnapshotRegistry>,
    telemetry: Telemetry,
    started: Instant,
}

impl Server {
    /// Starts the worker pool serving `registry` snapshots through `net`.
    pub fn start(net: Arc<Network>, registry: Arc<SnapshotRegistry>, config: ServeConfig) -> Self {
        let telemetry = config.telemetry.clone().unwrap_or_else(Telemetry::disabled);
        let (tx, rx) = chan::bounded::<Job>(config.batch.queue_depth.max(1));
        let rx = Arc::new(rx);
        let shared = Arc::new(Shared {
            stopping: AtomicBool::new(false),
            rejected: telemetry.metrics.counter("serve.rejected"),
            queue_depth: telemetry.metrics.gauge("serve.queue_depth"),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let net = Arc::clone(&net);
                let registry = Arc::clone(&registry);
                let shared = Arc::clone(&shared);
                let config = config.clone();
                let recorder = Arc::clone(&telemetry.recorder);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&net, &registry, &rx, &shared, &config, &recorder, i as u32)
                    })
                    .expect("spawn inference worker")
            })
            .collect();
        let sample_len = registry.spec().sample_len();
        Server {
            client: Client {
                tx,
                rx,
                shared: Arc::clone(&shared),
                sample_len,
            },
            workers,
            shared,
            registry,
            telemetry,
            started: Instant::now(),
        }
    }

    /// A submission handle; clone freely across threads.
    pub fn client(&self) -> Client {
        self.client.clone()
    }

    /// Drains and stops the server: new submissions are refused, every
    /// already-admitted request is answered, workers exit, and their
    /// metrics are merged into the final [`ServeReport`].
    pub fn shutdown(self) -> ServeReport {
        self.shared.stopping.store(true, Ordering::Release);
        drop(self.client);
        let mut merged = WorkerStats::new();
        for worker in self.workers {
            merged.merge(&worker.join().expect("inference worker panicked"));
        }
        let wall = self.started.elapsed();
        let answered = merged.requests + merged.no_model;
        // Serving precision of the final snapshot: the steady state the
        // server drained in, which is what a canary comparison cares
        // about.
        let (precision, accuracy_delta) = match self.registry.current() {
            Some(snapshot) => (snapshot.precision, snapshot.accuracy_delta),
            None => (crossbow_tensor::Precision::F32, None),
        };
        ServeReport {
            precision,
            accuracy_delta,
            completed: merged.requests,
            rejected: self.shared.rejected.get(),
            no_model: merged.no_model,
            batches: merged.batches,
            mean_batch: if merged.batches > 0 {
                answered as f64 / merged.batches as f64
            } else {
                0.0
            },
            request_latency: merged.request_hist.summary(),
            batch_latency: merged.batch_hist.summary(),
            throughput: if wall.as_secs_f64() > 0.0 {
                merged.requests as f64 / wall.as_secs_f64()
            } else {
                0.0
            },
            max_queue_depth: self.shared.queue_depth.max() as usize,
            min_version: if merged.min_version == u64::MAX {
                0
            } else {
                merged.min_version
            },
            max_version: merged.max_version,
            wall,
            phases: self.telemetry.recorder.timeline().phase_breakdown(),
        }
    }
}

fn worker_loop(
    net: &Network,
    registry: &SnapshotRegistry,
    rx: &chan::Receiver<Job>,
    shared: &Shared,
    config: &ServeConfig,
    recorder: &Arc<Recorder>,
    lane: u32,
) -> WorkerStats {
    let mut stats = WorkerStats::new();
    // Pre-warm the arena for the largest micro-batch this worker can see,
    // so even the first inference allocates nothing (§4.5).
    let mut scratch = net.scratch_with_plan(&net.plan(config.batch.max_batch.max(1)));
    let mut shard = recorder.shard();
    loop {
        // Take a first job; during drain, exit once the queue is empty.
        // The batch-fetch span covers waiting for the first job plus the
        // micro-batching delay — the serving analogue of prefetch wait.
        let fetch_start = shard.now_ns();
        let first = match rx.try_recv() {
            Some(job) => job,
            None => {
                if shared.stopping.load(Ordering::Acquire) {
                    break;
                }
                match rx.recv_timeout(POLL) {
                    Ok(job) => job,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        };
        let batch = collect_batch(rx, first, &config.batch, &shared.stopping);
        // Re-sample the depth gauge at flush time too: between a burst of
        // submits and the next admission the queue may drain through many
        // batches, and a submit-only gauge would under-report the
        // high-water mark of anything enqueued while workers were busy.
        shared.queue_depth.set(rx.len() as u64);
        shard.close(
            SpanKind::BatchFetch,
            "collect-batch",
            fetch_start,
            HOST_DEVICE,
            lane,
            None,
        );
        stats.batches += 1;
        let infer_start = shard.now_ns();
        serve_batch(net, registry, batch, config, &mut scratch, &mut stats);
        shard.close(
            SpanKind::Infer,
            "serve-batch",
            infer_start,
            HOST_DEVICE,
            lane,
            None,
        );
    }
    stats
}

fn serve_batch(
    net: &Network,
    registry: &SnapshotRegistry,
    batch: Vec<Job>,
    config: &ServeConfig,
    scratch: &mut crossbow_nn::Scratch,
    stats: &mut WorkerStats,
) {
    let Some(snapshot) = registry.current() else {
        // Answer rather than hold: a server with no model is explicit
        // about it, and the request does not burn its caller's timeout.
        stats.no_model += batch.len() as u64;
        for job in batch {
            let _ = job.resp.send(Err(ServeError::NoModel));
        }
        return;
    };
    let n = batch.len();
    let sample_len = snapshot.spec.sample_len();
    let mut data = Vec::with_capacity(n * sample_len);
    for job in &batch {
        data.extend_from_slice(&job.input);
    }
    let mut dims = vec![n];
    dims.extend_from_slice(&snapshot.spec.input_shape);
    let input = Tensor::from_vec(Shape::new(&dims), data);
    if let Some(delay) = config.synthetic_delay {
        std::thread::sleep(delay);
    }
    let forward_started = Instant::now();
    // A quantized snapshot serves through its reduced-precision forward;
    // an f32 snapshot runs the plain eval path on the raw parameters.
    let classes = match &snapshot.quant {
        Some(model) => net.predict_quant(model, &input, scratch),
        None => net.predict(&snapshot.params, &input, scratch),
    };
    stats.batch_hist.record(forward_started.elapsed());
    let answered = Instant::now();
    for (job, class) in batch.into_iter().zip(classes) {
        stats.requests += 1;
        stats.observe_version(snapshot.version);
        let latency = answered.saturating_duration_since(job.enqueued);
        stats.request_hist.record(latency);
        // A caller that gave up on its ticket is its own business; the
        // server keeps serving.
        let _ = job.resp.send(Ok(Prediction {
            class,
            version: snapshot.version,
            latency,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelSpec;
    use crossbow_nn::zoo::mlp;
    use crossbow_tensor::Rng;

    fn setup() -> (Arc<Network>, Arc<SnapshotRegistry>, Vec<f32>) {
        let net = Arc::new(mlp(4, &[8], 3));
        let registry = Arc::new(SnapshotRegistry::new(ModelSpec::of(&net)));
        let params = net.init_params(&mut Rng::new(1));
        (net, registry, params)
    }

    #[test]
    fn predictions_match_a_direct_eval_forward() {
        let (net, registry, params) = setup();
        registry.publish(params.clone(), 7).unwrap();
        let server = Server::start(Arc::clone(&net), Arc::clone(&registry), ServeConfig::new(1));
        let client = server.client();
        let mut rng = Rng::new(2);
        for _ in 0..20 {
            let input: Vec<f32> = (0..4).map(|_| rng.normal()).collect();
            let served = client.call(input.clone()).expect("served");
            let direct = net.predict(
                &params,
                &Tensor::from_vec(Shape::new(&[1, 4]), input),
                &mut net.scratch(),
            );
            assert_eq!(served.class, direct[0], "server matches direct eval");
            assert_eq!(served.version, 1);
        }
        let report = server.shutdown();
        assert_eq!(report.completed, 20);
        assert_eq!(report.rejected, 0);
        assert_eq!((report.min_version, report.max_version), (1, 1));
        assert!(report.batches >= 1 && report.batches <= 20);
        assert!(report.request_latency.p99 > Duration::ZERO);
    }

    #[test]
    fn a_quantized_snapshot_serves_through_the_quant_path() {
        use crossbow_tensor::Precision;
        let (net, registry, params) = setup();
        let model = Arc::new(net.quantize(&params, Precision::Int8));
        registry
            .publish_quantized(Arc::clone(&model), 11, Some(-0.01))
            .unwrap();
        let server = Server::start(Arc::clone(&net), Arc::clone(&registry), ServeConfig::new(1));
        let client = server.client();
        let mut rng = Rng::new(9);
        for _ in 0..12 {
            let input: Vec<f32> = (0..4).map(|_| rng.normal()).collect();
            let served = client.call(input.clone()).expect("served");
            let direct = net.predict_quant(
                &model,
                &Tensor::from_vec(Shape::new(&[1, 4]), input),
                &mut net.scratch(),
            );
            assert_eq!(served.class, direct[0], "server matches the int8 forward");
        }
        let report = server.shutdown();
        assert_eq!(report.completed, 12);
        assert_eq!(report.precision, Precision::Int8);
        assert_eq!(report.accuracy_delta, Some(-0.01));
        assert!(report.summary().contains("precision int8"));
    }

    #[test]
    fn requests_before_the_first_publication_answer_no_model() {
        let (net, registry, _) = setup();
        let server = Server::start(net, registry, ServeConfig::new(1));
        let client = server.client();
        assert_eq!(client.call(vec![0.0; 4]), Err(ServeError::NoModel));
        let report = server.shutdown();
        assert_eq!(report.no_model, 1);
        assert_eq!(report.completed, 0);
        assert_eq!(report.min_version, 0, "no version ever served");
    }

    #[test]
    fn mis_shaped_inputs_are_refused_at_admission() {
        let (net, registry, params) = setup();
        registry.publish(params, 1).unwrap();
        let server = Server::start(net, registry, ServeConfig::new(1));
        let client = server.client();
        assert_eq!(
            client.submit(vec![0.0; 7]).err(),
            Some(ServeError::BadRequest {
                expected: 4,
                got: 7
            })
        );
        assert_eq!(server.shutdown().completed, 0);
    }

    #[test]
    fn a_full_queue_rejects_with_overloaded() {
        let (net, registry, params) = setup();
        registry.publish(params, 1).unwrap();
        let config = ServeConfig {
            workers: 1,
            batch: BatchConfig {
                max_batch: 1,
                max_delay: Duration::ZERO,
                queue_depth: 2,
            },
            // Slow the worker down so the burst genuinely overflows the
            // bounded queue.
            synthetic_delay: Some(Duration::from_millis(50)),
            telemetry: None,
        };
        let server = Server::start(net, registry, config);
        let client = server.client();
        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for _ in 0..10 {
            match client.submit(vec![0.1; 4]) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Overloaded) => rejected += 1,
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(rejected > 0, "the burst must overflow a depth-2 queue");
        let admitted = tickets.len() as u64;
        for ticket in tickets {
            ticket.wait().expect("admitted requests complete");
        }
        let report = server.shutdown();
        assert_eq!(report.completed, admitted);
        assert_eq!(report.rejected, rejected);
        assert!(report.max_queue_depth >= 1);
    }

    #[test]
    fn telemetry_sink_collects_spans_and_admission_metrics() {
        let (net, registry, params) = setup();
        registry.publish(params, 1).unwrap();
        let telemetry = Telemetry::wall();
        let config = ServeConfig {
            telemetry: Some(telemetry.clone()),
            ..ServeConfig::new(1)
        };
        let server = Server::start(net, registry, config);
        let client = server.client();
        for _ in 0..6 {
            client.call(vec![0.3; 4]).expect("served");
        }
        let report = server.shutdown();
        // Worker spans: every executed batch has a fetch and an infer span.
        let timeline = telemetry.recorder.timeline();
        assert_eq!(timeline.count(SpanKind::Infer) as u64, report.batches);
        assert_eq!(timeline.count(SpanKind::BatchFetch) as u64, report.batches);
        // The report's phase breakdown reflects the same spans.
        assert!(report.phases.total_ns(SpanKind::Infer) > 0);
        // Admission metrics live in the shared registry.
        let snap = telemetry.metrics.snapshot();
        assert_eq!(snap.counters["serve.rejected"], 0);
        // Depth at admission races with the worker draining the queue, so
        // only the instrument's existence is deterministic here; the
        // overload test asserts a positive high-water mark.
        assert!(snap.gauges.contains_key("serve.queue_depth"));
    }

    #[test]
    fn wait_deadline_times_out_with_a_typed_error() {
        let (net, registry, params) = setup();
        registry.publish(params, 1).unwrap();
        let config = ServeConfig {
            workers: 1,
            // A long per-batch charge so the second request is still
            // queued when its caller gives up.
            synthetic_delay: Some(Duration::from_millis(200)),
            ..ServeConfig::new(1)
        };
        let server = Server::start(net, registry, config);
        let client = server.client();
        let first = client.submit(vec![0.0; 4]).expect("admitted");
        let second = client.submit(vec![0.0; 4]).expect("admitted");
        assert_eq!(
            second.wait_deadline(Duration::from_millis(1)),
            Err(ServeError::Deadline),
            "a bounded wait must not hang on a busy worker"
        );
        // The request itself is still served; only the caller stopped
        // waiting. A generous bound succeeds.
        first
            .wait_deadline(Duration::from_secs(30))
            .expect("served within the bound");
        let report = server.shutdown();
        assert_eq!(report.completed, 2, "abandoned tickets still complete");
    }

    #[test]
    fn queue_depth_high_water_is_recorded_at_flush_not_only_submit() {
        let (net, registry, params) = setup();
        registry.publish(params, 1).unwrap();
        let telemetry = Telemetry::wall();
        let config = ServeConfig {
            workers: 1,
            batch: BatchConfig {
                max_batch: 1,
                max_delay: Duration::ZERO,
                queue_depth: 64,
            },
            synthetic_delay: Some(Duration::from_millis(5)),
            telemetry: Some(telemetry.clone()),
        };
        let server = Server::start(net, registry, config);
        let client = server.client();
        let tickets: Vec<Ticket> = (0..6)
            .map(|_| client.submit(vec![0.1; 4]).expect("admitted"))
            .collect();
        for t in tickets {
            t.wait().expect("served");
        }
        let report = server.shutdown();
        // Six requests, batch=1: the worker flushes six times, and each
        // flush re-samples the gauge, so the high-water mark reflects the
        // backlog even though no submit happened after the burst.
        assert_eq!(report.completed, 6);
        assert!(
            telemetry.metrics.gauge("serve.queue_depth").max() >= 1,
            "flush-time sampling must observe the backlog"
        );
    }

    #[test]
    fn shutdown_drains_admitted_requests_before_stopping() {
        let (net, registry, params) = setup();
        registry.publish(params, 1).unwrap();
        let config = ServeConfig {
            workers: 1,
            batch: BatchConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(1),
                queue_depth: 64,
            },
            synthetic_delay: Some(Duration::from_millis(5)),
            telemetry: None,
        };
        let server = Server::start(net, registry, config);
        let client = server.client();
        let tickets: Vec<Ticket> = (0..8)
            .map(|_| client.submit(vec![0.2; 4]).expect("admitted"))
            .collect();
        // Shut down immediately: every admitted request must still be
        // answered with a prediction, not dropped.
        let report = server.shutdown();
        for ticket in tickets {
            ticket.wait().expect("drained, not dropped");
        }
        assert_eq!(report.completed, 8);
        // Surviving clients are refused after the drain.
        assert_eq!(
            client.submit(vec![0.2; 4]).err(),
            Some(ServeError::ShuttingDown)
        );
    }
}
