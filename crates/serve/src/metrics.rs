//! Latency histograms and the aggregated serving report.
//!
//! Workers record per-request and per-batch latencies into fixed-size
//! log2-bucketed histograms — no allocation on the hot path, cheap to
//! merge at shutdown — from which the report derives p50/p95/p99.

use std::time::Duration;

const BUCKETS: usize = 64;

/// A log2-bucketed latency histogram over microseconds.
///
/// Bucket `i` counts samples whose microsecond value has its highest set
/// bit at position `i` (bucket 0 additionally holds 0µs), giving ~2×
/// resolution over the full `u64` range in a fixed 64-slot array.
/// Percentiles are reported as the *upper bound* of the bucket the
/// percentile falls in, so they never understate latency.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket(micros: u64) -> usize {
        if micros == 0 {
            0
        } else {
            (63 - micros.leading_zeros()) as usize
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[Self::bucket(micros)] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The latency at quantile `q` (0.0–1.0), as the upper bound of its
    /// bucket; `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // Upper bound of bucket i: 2^(i+1) - 1 microseconds.
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return Some(Duration::from_micros(upper));
            }
        }
        None
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The standard serving percentiles, or zeros when empty.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            p50: self.quantile(0.50).unwrap_or(Duration::ZERO),
            p95: self.quantile(0.95).unwrap_or(Duration::ZERO),
            p99: self.quantile(0.99).unwrap_or(Duration::ZERO),
        }
    }
}

/// p50/p95/p99 of a latency distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median latency (bucket upper bound).
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
}

/// Per-worker counters, merged into a [`ServeReport`] at shutdown.
#[derive(Clone, Debug, Default)]
pub(crate) struct WorkerStats {
    pub requests: u64,
    pub batches: u64,
    pub no_model: u64,
    pub request_hist: Histogram,
    pub batch_hist: Histogram,
    pub min_version: u64,
    pub max_version: u64,
}

impl WorkerStats {
    pub fn new() -> Self {
        WorkerStats {
            min_version: u64::MAX,
            ..WorkerStats::default()
        }
    }

    pub fn observe_version(&mut self, version: u64) {
        self.min_version = self.min_version.min(version);
        self.max_version = self.max_version.max(version);
    }

    pub fn merge(&mut self, other: &WorkerStats) {
        self.requests += other.requests;
        self.batches += other.batches;
        self.no_model += other.no_model;
        self.request_hist.merge(&other.request_hist);
        self.batch_hist.merge(&other.batch_hist);
        self.min_version = self.min_version.min(other.min_version);
        self.max_version = self.max_version.max(other.max_version);
    }
}

/// What a server did over its lifetime, produced by
/// [`Server::shutdown`](crate::Server::shutdown).
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests refused at admission (queue full).
    pub rejected: u64,
    /// Requests answered with `NoModel` (nothing published yet).
    pub no_model: u64,
    /// Inference batches executed.
    pub batches: u64,
    /// Mean requests per batch (0 when no batches ran).
    pub mean_batch: f64,
    /// Queue-time + inference latency per request.
    pub request_latency: LatencySummary,
    /// Forward-pass latency per batch.
    pub batch_latency: LatencySummary,
    /// Completed requests per second of server lifetime.
    pub throughput: f64,
    /// Deepest request-queue backlog observed at admission.
    pub max_queue_depth: usize,
    /// Lowest snapshot version that answered a request (0 when none did).
    pub min_version: u64,
    /// Highest snapshot version that answered a request (0 when none did).
    pub max_version: u64,
    /// Server lifetime, start to drained shutdown.
    pub wall: Duration,
}

impl ServeReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} ok / {} rejected, {} batches (mean {:.1}), {:.0} req/s, \
             p50 {:?} p99 {:?}, versions {}..{}",
            self.completed,
            self.rejected,
            self.batches,
            self.mean_batch,
            self.throughput,
            self.request_latency.p50,
            self.request_latency.p99,
            self.min_version,
            self.max_version,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.summary().p99, Duration::ZERO);
    }

    #[test]
    fn quantiles_bound_the_recorded_values() {
        let mut h = Histogram::new();
        for micros in [10u64, 20, 30, 40, 1000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.total(), 5);
        // p50 falls among the 10–40µs samples; its bucket upper bound is
        // below the 1000µs outlier.
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 >= Duration::from_micros(20) && p50 < Duration::from_micros(1000));
        // p99 lands in the outlier's bucket: upper bound >= 1000µs.
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= Duration::from_micros(1000));
    }

    #[test]
    fn merge_is_the_sum_of_both() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Duration::from_micros(5));
        b.record(Duration::from_micros(500));
        b.record(Duration::from_micros(600));
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert!(a.quantile(1.0).unwrap() >= Duration::from_micros(500));
    }

    #[test]
    fn zero_latency_lands_in_the_first_bucket() {
        let mut h = Histogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.quantile(1.0), Some(Duration::from_micros(1)));
    }

    #[test]
    fn worker_stats_merge_tracks_version_extremes() {
        let mut a = WorkerStats::new();
        let mut b = WorkerStats::new();
        a.observe_version(3);
        b.observe_version(7);
        b.observe_version(2);
        a.requests = 1;
        b.requests = 2;
        a.merge(&b);
        assert_eq!(a.min_version, 2);
        assert_eq!(a.max_version, 7);
        assert_eq!(a.requests, 3);
    }
}
