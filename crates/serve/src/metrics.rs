//! The aggregated serving report.
//!
//! Workers record per-request and per-batch latencies into the shared
//! log2-bucketed [`Histogram`] from `crossbow-telemetry` — no allocation
//! on the hot path, cheap to merge at shutdown — from which the report
//! derives p50/p95/p99. The histogram implementation used to live here;
//! it moved to the telemetry crate so every runtime shares one, and is
//! re-exported under its historical path.

pub use crossbow_telemetry::{Histogram, LatencySummary};

use crossbow_telemetry::PhaseBreakdown;
use crossbow_tensor::Precision;
use std::time::Duration;

/// Per-worker counters, merged into a [`ServeReport`] at shutdown.
#[derive(Clone, Debug, Default)]
pub(crate) struct WorkerStats {
    pub requests: u64,
    pub batches: u64,
    pub no_model: u64,
    pub request_hist: Histogram,
    pub batch_hist: Histogram,
    pub min_version: u64,
    pub max_version: u64,
}

impl WorkerStats {
    pub fn new() -> Self {
        WorkerStats {
            min_version: u64::MAX,
            ..WorkerStats::default()
        }
    }

    pub fn observe_version(&mut self, version: u64) {
        self.min_version = self.min_version.min(version);
        self.max_version = self.max_version.max(version);
    }

    pub fn merge(&mut self, other: &WorkerStats) {
        self.requests += other.requests;
        self.batches += other.batches;
        self.no_model += other.no_model;
        self.request_hist.merge(&other.request_hist);
        self.batch_hist.merge(&other.batch_hist);
        self.min_version = self.min_version.min(other.min_version);
        self.max_version = self.max_version.max(other.max_version);
    }
}

/// What a server did over its lifetime, produced by
/// [`Server::shutdown`](crate::Server::shutdown).
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests refused at admission (queue full).
    pub rejected: u64,
    /// Requests answered with `NoModel` (nothing published yet).
    pub no_model: u64,
    /// Inference batches executed.
    pub batches: u64,
    /// Mean requests per batch (0 when no batches ran).
    pub mean_batch: f64,
    /// Queue-time + inference latency per request.
    pub request_latency: LatencySummary,
    /// Forward-pass latency per batch.
    pub batch_latency: LatencySummary,
    /// Completed requests per second of server lifetime.
    pub throughput: f64,
    /// Deepest request-queue backlog observed at admission.
    pub max_queue_depth: usize,
    /// Lowest snapshot version that answered a request (0 when none did).
    pub min_version: u64,
    /// Highest snapshot version that answered a request (0 when none did).
    pub max_version: u64,
    /// Serving precision of the registry's final snapshot (f32 when no
    /// snapshot was ever published).
    pub precision: Precision,
    /// Accuracy delta of the final snapshot against its f32 source, when
    /// it was quantized with an eval set (`None` for f32 serving).
    pub accuracy_delta: Option<f32>,
    /// Server lifetime, start to drained shutdown.
    pub wall: Duration,
    /// Per-phase time breakdown of the spans recorded through the
    /// server's telemetry sink (batch-fetch vs infer); empty when the
    /// server ran without one ([`ServeConfig::telemetry`] unset).
    ///
    /// [`ServeConfig::telemetry`]: crate::ServeConfig::telemetry
    pub phases: PhaseBreakdown,
}

impl ServeReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        let delta = match self.accuracy_delta {
            Some(d) => format!(" (acc delta {d:+.4})"),
            None => String::new(),
        };
        format!(
            "{} ok / {} rejected, {} batches (mean {:.1}), {:.0} req/s, \
             p50 {:?} p99 {:?}, versions {}..{}, precision {}{}",
            self.completed,
            self.rejected,
            self.batches,
            self.mean_batch,
            self.throughput,
            self.request_latency.p50,
            self.request_latency.p99,
            self.min_version,
            self.max_version,
            self.precision,
            delta,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The histogram/quantile behaviour itself is covered where the
    // implementation lives, in `crossbow-telemetry`.

    #[test]
    fn worker_stats_merge_tracks_version_extremes() {
        let mut a = WorkerStats::new();
        let mut b = WorkerStats::new();
        a.observe_version(3);
        b.observe_version(7);
        b.observe_version(2);
        a.requests = 1;
        b.requests = 2;
        a.merge(&b);
        assert_eq!(a.min_version, 2);
        assert_eq!(a.max_version, 7);
        assert_eq!(a.requests, 3);
    }

    #[test]
    fn re_exported_histogram_keeps_the_old_api() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(10));
        assert_eq!(h.total(), 1);
        assert!(h.summary().p99 >= Duration::from_micros(10));
    }
}
