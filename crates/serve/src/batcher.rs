//! Deadline-based micro-batch assembly.
//!
//! The serving inversion of the paper's small-batch thesis: training
//! wants small batches for statistical efficiency, but a forward pass
//! over one request wastes the hardware. Workers therefore coalesce
//! queued requests into a batch, flushing when either `max_batch`
//! requests are in hand or the *oldest* request has waited `max_delay` —
//! so a burst pays one efficient forward pass and a trickle still meets
//! its latency bound.

use crate::server::Job;
use crossbow_data::chan::{Receiver, RecvTimeoutError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Micro-batching parameters.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Flush once this many requests are coalesced.
    pub max_batch: usize,
    /// Flush once the oldest queued request has waited this long.
    pub max_delay: Duration,
    /// Bounded request-queue capacity; a full queue rejects new
    /// submissions with `Overloaded` (admission control).
    pub queue_depth: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 16,
            max_delay: Duration::from_millis(2),
            queue_depth: 256,
        }
    }
}

impl BatchConfig {
    /// The batch=1 baseline: no coalescing, every request is its own
    /// forward pass.
    pub fn unbatched() -> Self {
        BatchConfig {
            max_batch: 1,
            ..BatchConfig::default()
        }
    }
}

/// Coalesces `first` with further queued jobs into one batch.
///
/// Returns once `max_batch` jobs are in hand or `first` has aged past
/// `max_delay` — whichever comes sooner. During shutdown (`stopping`
/// set) nothing waits: whatever is buffered right now is taken, so the
/// drain completes promptly.
pub(crate) fn collect_batch(
    rx: &Receiver<Job>,
    first: Job,
    config: &BatchConfig,
    stopping: &AtomicBool,
) -> Vec<Job> {
    let deadline = first.enqueued + config.max_delay;
    let mut batch = Vec::with_capacity(config.max_batch.max(1));
    batch.push(first);
    while batch.len() < config.max_batch {
        // Free jobs first: anything already buffered joins the batch
        // without waiting.
        if let Some(job) = rx.try_recv() {
            batch.push(job);
            continue;
        }
        if stopping.load(Ordering::Acquire) {
            break;
        }
        let Some(wait) = deadline.checked_duration_since(Instant::now()) else {
            break;
        };
        match rx.recv_timeout(wait) {
            Ok(job) => batch.push(job),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Job;
    use crossbow_data::chan::bounded;
    use std::sync::mpsc;

    fn job() -> (Job, mpsc::Receiver<crate::server::Reply>) {
        let (resp, ticket) = mpsc::channel();
        (
            Job {
                input: vec![0.0],
                enqueued: Instant::now(),
                resp,
            },
            ticket,
        )
    }

    #[test]
    fn flushes_on_max_batch_without_waiting_out_the_delay() {
        let (tx, rx) = bounded::<Job>(8);
        let mut tickets = Vec::new();
        for _ in 0..3 {
            let (j, t) = job();
            tx.send_timeout(j, Duration::ZERO).unwrap();
            tickets.push(t);
        }
        let first = rx.recv().unwrap();
        let cfg = BatchConfig {
            max_batch: 3,
            max_delay: Duration::from_secs(60),
            queue_depth: 8,
        };
        let started = Instant::now();
        let batch = collect_batch(&rx, first, &cfg, &AtomicBool::new(false));
        assert_eq!(batch.len(), 3);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "a full batch must not wait for the deadline"
        );
    }

    #[test]
    fn flushes_a_partial_batch_at_the_deadline() {
        let (tx, rx) = bounded::<Job>(8);
        let (j, _t) = job();
        tx.send_timeout(j, Duration::ZERO).unwrap();
        let first = rx.recv().unwrap();
        let cfg = BatchConfig {
            max_batch: 16,
            max_delay: Duration::from_millis(20),
            queue_depth: 8,
        };
        let batch = collect_batch(&rx, first, &cfg, &AtomicBool::new(false));
        assert_eq!(batch.len(), 1, "deadline flush with whatever arrived");
    }

    #[test]
    fn deadline_is_anchored_to_the_oldest_request() {
        // A first job that has already aged past the delay flushes with
        // only the free jobs — the deadline does not restart per arrival.
        let (tx, rx) = bounded::<Job>(8);
        let (mut j, _t) = job();
        j.enqueued = Instant::now() - Duration::from_secs(1);
        tx.send_timeout(j, Duration::ZERO).unwrap();
        let (j2, _t2) = job();
        tx.send_timeout(j2, Duration::ZERO).unwrap();
        let first = rx.recv().unwrap();
        let cfg = BatchConfig {
            max_batch: 16,
            max_delay: Duration::from_millis(50),
            queue_depth: 8,
        };
        let started = Instant::now();
        let batch = collect_batch(&rx, first, &cfg, &AtomicBool::new(false));
        assert_eq!(batch.len(), 2, "buffered job still joins");
        assert!(
            started.elapsed() < Duration::from_millis(40),
            "no fresh wait"
        );
    }

    #[test]
    fn stopping_takes_the_buffer_without_waiting() {
        let (tx, rx) = bounded::<Job>(8);
        let (j, _t) = job();
        tx.send_timeout(j, Duration::ZERO).unwrap();
        let (j2, _t2) = job();
        tx.send_timeout(j2, Duration::ZERO).unwrap();
        let first = rx.recv().unwrap();
        let cfg = BatchConfig {
            max_batch: 16,
            max_delay: Duration::from_secs(60),
            queue_depth: 8,
        };
        let started = Instant::now();
        let batch = collect_batch(&rx, first, &cfg, &AtomicBool::new(true));
        assert_eq!(batch.len(), 2);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "drain is prompt"
        );
    }
}
