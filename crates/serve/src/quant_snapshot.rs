//! The quantized snapshot format (`CBQS`).
//!
//! The PR-2 checkpoint format stores a full-precision training state;
//! serving wants the opposite trade — a small, inference-only artifact
//! at a chosen precision. A `CBQS` file holds one deployable model:
//!
//! ```text
//! magic "CBQS" | format u32 | precision u8
//! spec: input dims (u64 count + u64 each) | classes u64 | param_len u64
//! snapshot version u64 | iteration u64 | accuracy_delta opt_f32
//! payload (by precision):
//!   f32  — length-prefixed f32 parameter vector
//!   bf16 — length-prefixed raw bytes, 2 per parameter (LE u16 bf16)
//!   int8 — layer count u64, then per layer: presence u8, and when
//!          present rows u64 | cols u64 | per-channel scales (f32 slice)
//!          | weights (byte slice, two's-complement i8); then the
//!          remaining f32 parameters (biases + non-dense layers) in
//!          layer order
//! checksum u64 — FNV-1a/64 over everything above
//! ```
//!
//! Everything multi-byte is little-endian via the checkpoint crate's
//! [`codec`](crossbow_checkpoint::codec); writes go through a temp file
//! and an atomic rename, mirroring the checkpoint store.
//!
//! The int8 payload stores the *quantized* weights plus their scales —
//! not the dequantized f32s — so the loader reassembles through
//! [`Network::requantized`] and serves byte-identical predictions to the
//! exporter. Re-quantizing dequantized weights would re-derive every
//! channel scale and serve different bytes; see the warning on
//! [`Network::requantized`].

use crate::registry::{ModelSnapshot, ModelSpec, SnapshotRegistry};
use crate::snapshot::ImportError;
use crossbow_checkpoint::codec::{fnv1a64, DecodeError, Reader, Writer};
use crossbow_checkpoint::CheckpointError;
use crossbow_nn::{Network, QuantizedModel};
use crossbow_tensor::quant::{bf16_decode, bf16_encode_slice, QuantLinear};
use crossbow_tensor::Precision;
use std::path::Path;
use std::sync::Arc;

/// File name of a quantized snapshot inside its directory.
pub const QUANT_SNAPSHOT_FILE: &str = "model.cbqs";

/// `b"CBQS"` as a little-endian `u32`.
const MAGIC: u32 = u32::from_le_bytes(*b"CBQS");

/// Bumped on any incompatible layout change.
const FORMAT_VERSION: u32 = 1;

/// Decoded payload, before reassembly against a concrete network.
enum Payload {
    F32(Vec<f32>),
    Bf16(Vec<u16>),
    Int8 {
        lins: Vec<Option<QuantLinear>>,
        rest: Vec<f32>,
    },
}

/// Durably exports a snapshot into `dir/`[`QUANT_SNAPSHOT_FILE`] at the
/// snapshot's own precision, returning the file size in bytes. An f32
/// snapshot stores the raw parameter vector; quantized snapshots store
/// the reduced-precision payload, so the file shrinks roughly 2x (bf16)
/// or 4x (int8 weights) against f32.
///
/// `net` must be the network the snapshot was published for (it supplies
/// the per-layer parameter ranges the int8 payload is split by).
///
/// # Errors
/// [`CheckpointError::Io`] when the directory or file cannot be written.
///
/// # Panics
/// Panics if `net` does not match the snapshot's spec.
pub fn export_quant_snapshot(
    dir: &Path,
    net: &Network,
    snapshot: &ModelSnapshot,
) -> Result<u64, CheckpointError> {
    assert_eq!(
        ModelSpec::of(net),
        snapshot.spec,
        "snapshot from a different network"
    );
    let mut w = Writer::new();
    w.u32(MAGIC);
    w.u32(FORMAT_VERSION);
    w.u8(snapshot.precision.tag());
    w.u64(snapshot.spec.input_shape.len() as u64);
    for &d in &snapshot.spec.input_shape {
        w.u64(d as u64);
    }
    w.u64(snapshot.spec.classes as u64);
    w.u64(snapshot.spec.param_len as u64);
    w.u64(snapshot.version);
    w.u64(snapshot.iteration);
    w.opt_f32(snapshot.accuracy_delta);
    match &snapshot.quant {
        Some(model) if model.precision() == Precision::Bf16 => {
            // The model's params already went through the bf16 round
            // trip, so encoding is exact: the loader decodes the same
            // f32 values the exporter served.
            let raw: Vec<u8> = bf16_encode_slice(model.params())
                .into_iter()
                .flat_map(u16::to_le_bytes)
                .collect();
            w.bytes(&raw);
        }
        Some(model) if model.precision() == Precision::Int8 => {
            let layers = model.dense_layers();
            w.u64(layers.len() as u64);
            for qd in layers {
                match qd {
                    Some(qd) => {
                        w.u8(1);
                        w.u64(qd.lin.rows as u64);
                        w.u64(qd.lin.cols as u64);
                        w.f32_slice(&qd.lin.scales);
                        let bytes: Vec<u8> = qd.lin.q.iter().map(|&v| v as u8).collect();
                        w.bytes(&bytes);
                    }
                    None => w.u8(0),
                }
            }
            w.f32_slice(&non_dense_params(net, model));
        }
        // f32 snapshots (and a defensively-handled f32 QuantizedModel)
        // store the raw parameter vector.
        _ => w.f32_slice(&snapshot.params),
    }
    let mut body = w.into_bytes();
    let checksum = fnv1a64(&body);
    body.extend_from_slice(&checksum.to_le_bytes());

    std::fs::create_dir_all(dir).map_err(CheckpointError::Io)?;
    let tmp = dir.join(format!("{QUANT_SNAPSHOT_FILE}.tmp"));
    let fin = dir.join(QUANT_SNAPSHOT_FILE);
    std::fs::write(&tmp, &body).map_err(CheckpointError::Io)?;
    std::fs::rename(&tmp, &fin).map_err(CheckpointError::Io)?;
    Ok(body.len() as u64)
}

/// The f32 parameters an int8 payload keeps verbatim: per layer, the
/// bias when the layer's weights are quantized, the full range otherwise.
fn non_dense_params(net: &Network, model: &QuantizedModel) -> Vec<f32> {
    let params = model.params();
    let mut rest = Vec::new();
    for (i, qd) in model.dense_layers().iter().enumerate() {
        let range = net.param_range(i);
        let skip = qd.as_ref().map_or(0, |qd| qd.lin.rows * qd.lin.cols);
        rest.extend_from_slice(&params[range.start + skip..range.end]);
    }
    rest
}

/// Publishes the quantized snapshot in `dir` into the registry, if one
/// exists. Returns the assigned registry version, or `None` when the
/// file is absent or fails validation (bad magic, version, checksum, or
/// internal structure) — the same corrupt-fallback semantics as
/// [`crate::snapshot::load_into`].
///
/// `net` must be the network behind `registry`: an int8 payload is
/// reassembled through [`Network::requantized`] so the served bytes are
/// exactly what the exporter measured, and a bf16 payload re-enters
/// through [`Network::quantize`] (a no-op on already-rounded values).
///
/// # Errors
/// [`ImportError::Checkpoint`] on I/O failure, [`ImportError::Mismatch`]
/// when a valid file holds a model for a different spec.
pub fn load_quant_into(
    registry: &SnapshotRegistry,
    net: &Network,
    dir: &Path,
) -> Result<Option<u64>, ImportError> {
    assert_eq!(
        &ModelSpec::of(net),
        registry.spec(),
        "registry from a different network"
    );
    let path = dir.join(QUANT_SNAPSHOT_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(ImportError::Checkpoint(CheckpointError::Io(e))),
    };
    let Ok((spec, version, iteration, accuracy_delta, payload)) = decode(&bytes) else {
        return Ok(None);
    };
    if &spec != registry.spec() {
        return Err(ImportError::Mismatch {
            expected: registry.spec().param_len,
            got: spec.param_len,
        });
    }
    let published = match payload {
        Payload::F32(params) => registry
            .publish(params, iteration)
            .expect("spec checked above"),
        Payload::Bf16(us) => {
            if us.len() != net.param_len() {
                return Ok(None);
            }
            let params: Vec<f32> = us.into_iter().map(bf16_decode).collect();
            let model = net.quantize(&params, Precision::Bf16);
            registry
                .publish_quantized(Arc::new(model), iteration, accuracy_delta)
                .expect("spec checked above")
        }
        Payload::Int8 { lins, rest } => {
            let Ok(model) = rebuild_int8(net, lins, &rest) else {
                return Ok(None);
            };
            registry
                .publish_quantized(Arc::new(model), iteration, accuracy_delta)
                .expect("spec checked above")
        }
    };
    let _ = version; // provenance only; the registry assigns its own.
    Ok(Some(published))
}

/// Decodes and checksums a `CBQS` byte image. Any structural problem is
/// a [`DecodeError`] — the loader treats it as "no usable snapshot".
#[allow(clippy::type_complexity)]
fn decode(bytes: &[u8]) -> Result<(ModelSpec, u64, u64, Option<f32>, Payload), DecodeError> {
    if bytes.len() < 8 {
        return Err(DecodeError("file shorter than its checksum"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8"));
    if fnv1a64(body) != stored {
        return Err(DecodeError("checksum mismatch"));
    }
    let mut r = Reader::new(body);
    if r.u32()? != MAGIC {
        return Err(DecodeError("not a CBQS file"));
    }
    if r.u32()? != FORMAT_VERSION {
        return Err(DecodeError("unsupported CBQS version"));
    }
    let precision = Precision::from_tag(r.u8()?).ok_or(DecodeError("unknown precision tag"))?;
    let ndims = r.u64()? as usize;
    if ndims > 16 {
        return Err(DecodeError("implausible input rank"));
    }
    let mut input_shape = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        input_shape.push(r.u64()? as usize);
    }
    let spec = ModelSpec {
        input_shape,
        classes: r.u64()? as usize,
        param_len: r.u64()? as usize,
    };
    let version = r.u64()?;
    let iteration = r.u64()?;
    let accuracy_delta = r.opt_f32()?;
    let payload = match precision {
        Precision::F32 => Payload::F32(r.f32_vec()?),
        Precision::Bf16 => {
            let raw = r.bytes()?;
            if raw.len() % 2 != 0 {
                return Err(DecodeError("odd bf16 byte count"));
            }
            Payload::Bf16(
                raw.chunks_exact(2)
                    .map(|c| u16::from_le_bytes([c[0], c[1]]))
                    .collect(),
            )
        }
        Precision::Int8 => {
            let n_layers = r.u64()? as usize;
            if n_layers > 4096 {
                return Err(DecodeError("implausible layer count"));
            }
            let mut lins = Vec::with_capacity(n_layers);
            for _ in 0..n_layers {
                match r.u8()? {
                    0 => lins.push(None),
                    1 => {
                        let rows = r.u64()? as usize;
                        let cols = r.u64()? as usize;
                        let scales = r.f32_vec()?;
                        let q: Vec<i8> = r.bytes()?.into_iter().map(|b| b as i8).collect();
                        if scales.len() != rows || q.len() != rows.saturating_mul(cols) {
                            return Err(DecodeError("dense layer sizes inconsistent"));
                        }
                        lins.push(Some(QuantLinear::from_parts(rows, cols, scales, q)));
                    }
                    _ => return Err(DecodeError("invalid presence tag")),
                }
            }
            Payload::Int8 {
                lins,
                rest: r.f32_vec()?,
            }
        }
    };
    if !r.is_empty() {
        return Err(DecodeError("trailing bytes after payload"));
    }
    Ok((spec, version, iteration, accuracy_delta, payload))
}

/// Reassembles an int8 model against `net`, validating the payload's
/// layer structure first so a malformed file errors instead of panicking
/// inside [`Network::requantized`].
fn rebuild_int8(
    net: &Network,
    lins: Vec<Option<QuantLinear>>,
    rest: &[f32],
) -> Result<QuantizedModel, DecodeError> {
    if lins.len() != net.layers().len() {
        return Err(DecodeError("layer count mismatch"));
    }
    let mut params = vec![0.0f32; net.param_len()];
    let mut pos = 0usize;
    for (i, layer) in net.layers().iter().enumerate() {
        let range = net.param_range(i);
        let skip = match (layer.as_dense(), &lins[i]) {
            (Some(d), Some(lin)) => {
                if lin.rows != d.out_features() || lin.cols != d.in_features() {
                    return Err(DecodeError("dense layer shape mismatch"));
                }
                lin.rows * lin.cols
            }
            (_, None) => 0,
            (None, Some(_)) => return Err(DecodeError("quantized weights for a non-dense layer")),
        };
        let keep = range.len() - skip;
        if pos + keep > rest.len() {
            return Err(DecodeError("f32 remainder too short"));
        }
        params[range.start + skip..range.end].copy_from_slice(&rest[pos..pos + keep]);
        pos += keep;
    }
    if pos != rest.len() {
        return Err(DecodeError("f32 remainder too long"));
    }
    Ok(net.requantized(params, lins))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbow_nn::zoo::mlp;
    use crossbow_tensor::{Rng, Shape, Tensor};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("crossbow-cbqs-{name}-{}", std::process::id()))
    }

    fn setup() -> (Network, SnapshotRegistry, Vec<f32>) {
        let net = mlp(6, &[10], 4);
        let registry = SnapshotRegistry::new(ModelSpec::of(&net));
        let params = net.init_params(&mut Rng::new(5));
        (net, registry, params)
    }

    fn publish_at(
        net: &Network,
        registry: &SnapshotRegistry,
        params: &[f32],
        precision: Precision,
    ) {
        match precision {
            Precision::F32 => {
                registry.publish(params.to_vec(), 9).unwrap();
            }
            _ => {
                let model = Arc::new(net.quantize(params, precision));
                registry.publish_quantized(model, 9, Some(-0.0125)).unwrap();
            }
        }
    }

    #[test]
    fn every_precision_round_trips_to_identical_predictions() {
        for precision in Precision::all() {
            let dir = tmp(&format!("roundtrip-{precision}"));
            let _ = std::fs::remove_dir_all(&dir);
            let (net, registry, params) = setup();
            publish_at(&net, &registry, &params, precision);
            let exported = registry.current().unwrap();
            export_quant_snapshot(&dir, &net, &exported).expect("export");

            let fresh = SnapshotRegistry::new(ModelSpec::of(&net));
            let version = load_quant_into(&fresh, &net, &dir)
                .expect("load")
                .expect("present");
            assert_eq!(version, 1);
            let loaded = fresh.current().unwrap();
            assert_eq!(loaded.precision, precision);
            assert_eq!(loaded.iteration, 9);
            assert_eq!(
                loaded.params, exported.params,
                "{precision}: effective params survive the disk trip"
            );
            if precision != Precision::F32 {
                assert_eq!(loaded.accuracy_delta, Some(-0.0125));
                assert!(loaded.quant.is_some());
            }
            // The served predictions are byte-identical to the exporter's.
            let batch = Tensor::randn(Shape::new(&[8, 6]), 1.0, &mut Rng::new(6));
            let mut scratch = net.scratch();
            let before = match &exported.quant {
                Some(m) => net.forward_eval_quant(m, &batch, &mut scratch),
                None => net.forward_eval(&exported.params, &batch, &mut scratch),
            };
            let after = match &loaded.quant {
                Some(m) => net.forward_eval_quant(m, &batch, &mut scratch),
                None => net.forward_eval(&loaded.params, &batch, &mut scratch),
            };
            assert_eq!(before.data(), after.data(), "{precision}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn quantized_files_are_smaller_than_f32() {
        let dir = tmp("sizes");
        let _ = std::fs::remove_dir_all(&dir);
        // Big enough that the int8 side costs (per-channel scales, f32
        // biases, layer headers) are dwarfed by the 1-byte weights; on a
        // ~100-parameter toy they would not be.
        let net = mlp(16, &[128], 4);
        let registry = SnapshotRegistry::new(ModelSpec::of(&net));
        let params = net.init_params(&mut Rng::new(5));
        let mut sizes = Vec::new();
        for precision in Precision::all() {
            publish_at(&net, &registry, &params, precision);
            let bytes =
                export_quant_snapshot(&dir, &net, &registry.current().unwrap()).expect("export");
            sizes.push(bytes);
        }
        let (f32b, bf16b, int8b) = (sizes[0], sizes[1], sizes[2]);
        assert!(bf16b < f32b, "bf16 {bf16b} vs f32 {f32b}");
        assert!(int8b < bf16b, "int8 {int8b} vs bf16 {bf16b}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_missing_file_imports_nothing() {
        let (net, registry, _) = setup();
        let dir = tmp("absent");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(load_quant_into(&registry, &net, &dir)
            .expect("no error")
            .is_none());
        assert_eq!(registry.version(), 0);
    }

    #[test]
    fn corruption_anywhere_is_detected_and_skipped() {
        let dir = tmp("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let (net, registry, params) = setup();
        publish_at(&net, &registry, &params, Precision::Int8);
        export_quant_snapshot(&dir, &net, &registry.current().unwrap()).expect("export");
        let path = dir.join(QUANT_SNAPSHOT_FILE);
        let good = std::fs::read(&path).unwrap();
        // Flip one byte at a spread of offsets (checksum catches all).
        for at in (0..good.len()).step_by(good.len() / 13 + 1) {
            let mut bad = good.clone();
            bad[at] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            let fresh = SnapshotRegistry::new(ModelSpec::of(&net));
            assert!(
                load_quant_into(&fresh, &net, &dir)
                    .expect("no io error")
                    .is_none(),
                "flip at {at} must be rejected"
            );
            assert_eq!(fresh.version(), 0, "nothing published at {at}");
        }
        // Truncations too.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        let fresh = SnapshotRegistry::new(ModelSpec::of(&net));
        assert!(load_quant_into(&fresh, &net, &dir).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_valid_file_for_a_different_model_is_refused() {
        let dir = tmp("wrongspec");
        let _ = std::fs::remove_dir_all(&dir);
        let (net, registry, params) = setup();
        publish_at(&net, &registry, &params, Precision::Bf16);
        export_quant_snapshot(&dir, &net, &registry.current().unwrap()).expect("export");
        let wider = mlp(6, &[11], 4);
        let narrow = SnapshotRegistry::new(ModelSpec::of(&wider));
        match load_quant_into(&narrow, &wider, &dir) {
            Err(ImportError::Mismatch { expected, got }) => {
                assert_eq!(expected, wider.param_len());
                assert_eq!(got, net.param_len());
            }
            unexpected => panic!("expected mismatch, got {unexpected:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
