//! Fault-tolerant multi-node training over real sockets.
//!
//! Crossbow's SMA trainer synchronises `k` learners every iteration;
//! this crate stretches those learners across OS processes connected by
//! TCP, without changing the arithmetic: a healthy distributed run
//! produces a training curve *bit-identical* to the single-process
//! trainer at the same configuration.
//!
//! The pieces, bottom up:
//!
//! - [`wire`]: length-prefixed frames with an FNV-1a checksum, parsed
//!   incrementally so read timeouts never desynchronise a stream.
//! - [`proto`]: the message set, serialized with the checkpoint crate's
//!   codec — the admission message literally carries an encoded
//!   checkpoint.
//! - [`fault`]: seeded transport-level fault injection (drop / delay /
//!   disconnect / partition), the socket analogue of the GPU simulator's
//!   fault plan; same seed, same faults.
//! - [`transport`]: framed connections with telemetry (`net.*` counters,
//!   `net-send`/`net-recv` spans) and capped-exponential retry.
//! - [`coordinator`]: the control plane. Runs the unmodified trainer
//!   loop and drives workers in one of two topologies — parameter
//!   server or a decentralized all-gather ring — with heartbeat failure
//!   detection, work resend with backoff, worker eviction (SMA
//!   renormalizes over survivors), and mid-run rejoin from the latest
//!   checkpoint.
//! - [`worker`]: the data plane — a stateless gradient server.
//! - [`cluster`]: loopback clusters (threads as processes) so the fault
//!   matrix is testable from plain unit tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod coordinator;
pub mod fault;
pub mod proto;
pub mod transport;
pub mod wire;
pub mod worker;

pub use cluster::{
    checksum_params, demo_algo, demo_task, run_local_cluster, LocalClusterOptions,
    LocalClusterReport,
};
pub use coordinator::{
    ClusterEvent, Coordinator, DistConfig, DistCounters, DistReport, EventHook, Topology,
};
pub use fault::{FaultAction, FaultInjector, NetFaultPlan};
pub use proto::Msg;
pub use transport::{connect_retry, Conn, MsgSender, RetryPolicy};
pub use wire::WireError;
pub use worker::{run_worker, WorkerConfig, WorkerEvent, WorkerOutcome};
