//! Fault-tolerant multi-node training over real sockets.
//!
//! Crossbow's SMA trainer synchronises `k` learners every iteration;
//! this crate stretches those learners across OS processes connected by
//! TCP, without changing the arithmetic: a healthy distributed run
//! produces a training curve *bit-identical* to the single-process
//! trainer at the same configuration.
//!
//! The pieces, bottom up:
//!
//! - [`wire`]: length-prefixed frames with an FNV-1a checksum, parsed
//!   incrementally so read timeouts never desynchronise a stream.
//! - [`proto`]: the message set, serialized with the checkpoint crate's
//!   codec — the admission message literally carries an encoded
//!   checkpoint.
//! - [`fault`]: seeded transport-level fault injection (drop / delay /
//!   disconnect / partition), the socket analogue of the GPU simulator's
//!   fault plan; same seed, same faults.
//! - [`transport`]: framed connections with telemetry (`net.*` counters,
//!   `net-send`/`net-recv` spans) and capped-exponential retry.
//! - [`coordinator`]: the control plane. Runs the unmodified trainer
//!   loop and drives workers in one of two topologies — parameter
//!   server or a decentralized all-gather ring — with heartbeat failure
//!   detection, work resend with backoff, worker eviction (SMA
//!   renormalizes over survivors), and mid-run rejoin from the latest
//!   checkpoint.
//! - [`worker`]: the data plane — a stateless gradient server, with a
//!   failover-surviving resilient loop that re-`Hello`s to fallback
//!   coordinator addresses.
//! - [`standby`]: the warm standby — registers for state replication,
//!   watches lease renewals, and takes over as primary at the next term
//!   when the leases stop.
//! - [`cluster`]: loopback clusters (threads as processes) so the fault
//!   matrix — including primary-crash failover — is testable from plain
//!   unit tests.
//! - [`chaos`]: named, seeded, replayable chaos scenarios composing the
//!   fault injectors end to end, each asserting a recovery invariant and
//!   emitting a machine-readable `CHAOS-REPORT` marker.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod cluster;
pub mod coordinator;
pub mod fault;
pub mod proto;
pub mod standby;
pub mod transport;
pub mod wire;
pub mod worker;

pub use chaos::{run_chaos, ChaosOptions, ChaosReport, ChaosScenario, SimPhase, SimPhaseReport};
pub use cluster::{
    checksum_params, demo_algo, demo_task, run_local_cluster, run_local_failover,
    LocalClusterOptions, LocalClusterReport, LocalFailoverOptions, LocalFailoverReport,
};
pub use coordinator::{
    ClusterEvent, Coordinator, DistConfig, DistCounters, DistReport, EventHook, Topology,
};
pub use fault::{FaultAction, FaultInjector, NetFaultPlan};
pub use proto::Msg;
pub use standby::{run_standby, StandbyConfig, StandbyEvent, StandbyOutcome};
pub use transport::{connect_retry, connect_retry_jittered, Conn, MsgSender, RetryPolicy};
pub use wire::WireError;
pub use worker::{
    run_worker, run_worker_resilient, run_worker_resilient_with_data, run_worker_with_data,
    WorkerConfig, WorkerEvent, WorkerOutcome,
};
