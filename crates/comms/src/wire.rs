//! Length-prefixed binary framing over byte streams.
//!
//! Every message travels as one *frame*: a 16-byte header (magic, payload
//! length, FNV-1a/64 checksum — the same hash the checkpoint store uses)
//! followed by the payload. The checksum makes a torn or corrupted stream
//! a detectable error instead of a garbage message, mirroring the
//! checkpoint file format's corruption discipline.
//!
//! [`FrameReader`] is incremental: it buffers partial reads, so a read
//! timeout in the middle of a frame never desynchronises the stream — the
//! next call resumes exactly where the bytes stopped.

use crossbow_checkpoint::codec::fnv1a64;
use std::io::{self, Read};

/// Frame magic: "CBWF" (CrossBow Wire Frame).
pub const MAGIC: [u8; 4] = *b"CBWF";

/// Header bytes preceding every payload: magic, `u32` length, `u64` hash.
pub const HEADER_LEN: usize = 16;

/// Upper bound on a payload; a corrupt length field beyond it is rejected
/// before any allocation.
pub const MAX_PAYLOAD: usize = 256 << 20;

/// Why a wire operation failed.
#[derive(Debug)]
pub enum WireError {
    /// An I/O error other than timeout or disconnection.
    Io(io::Error),
    /// The stream carried bytes that are not a valid frame; the connection
    /// is unrecoverable (framing is lost).
    Corrupt(&'static str),
    /// The peer is gone: EOF, reset, or broken pipe.
    Disconnected,
    /// No complete frame arrived within the read timeout; retryable.
    Timeout,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
            WireError::Disconnected => write!(f, "peer disconnected"),
            WireError::Timeout => write!(f, "wire read timed out"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maps a socket read error onto the retryable/fatal split the runtime
/// cares about. `SO_RCVTIMEO` expiry surfaces as `WouldBlock` or
/// `TimedOut` depending on the platform; both mean "try again".
pub(crate) fn map_read_err(e: io::Error) -> WireError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => WireError::Timeout,
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe => WireError::Disconnected,
        _ => WireError::Io(e),
    }
}

/// Maps a socket write error: a vanished peer is a disconnect, anything
/// else an I/O error.
pub(crate) fn map_write_err(e: io::Error) -> WireError {
    match e.kind() {
        io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe => WireError::Disconnected,
        _ => WireError::Io(e),
    }
}

/// Wraps `payload` in a frame: header plus bytes, ready for one write.
///
/// # Panics
/// Panics when the payload exceeds [`MAX_PAYLOAD`].
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD, "oversized frame");
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Incremental frame parser over any byte stream.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Extracts one complete frame from the buffer, if present.
    fn parse(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        if self.buf[..4] != MAGIC {
            return Err(WireError::Corrupt("bad frame magic"));
        }
        let len = u32::from_le_bytes(self.buf[4..8].try_into().expect("4")) as usize;
        if len > MAX_PAYLOAD {
            return Err(WireError::Corrupt("frame length exceeds limit"));
        }
        if self.buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let want = u64::from_le_bytes(self.buf[8..16].try_into().expect("8"));
        let payload = self.buf[HEADER_LEN..HEADER_LEN + len].to_vec();
        if fnv1a64(&payload) != want {
            return Err(WireError::Corrupt("frame checksum mismatch"));
        }
        self.buf.drain(..HEADER_LEN + len);
        Ok(Some(payload))
    }

    /// Bytes currently buffered awaiting a complete frame. A corrupt
    /// length prefix is rejected at header time — before any
    /// payload-sized allocation — so this never grows past the declared
    /// frame size plus one read chunk.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Reads until one complete frame is available and returns its
    /// payload. Partial bytes stay buffered across calls, so a
    /// [`WireError::Timeout`] mid-frame is resumable.
    pub fn read_frame(&mut self, src: &mut impl Read) -> Result<Vec<u8>, WireError> {
        loop {
            if let Some(payload) = self.parse()? {
                return Ok(payload);
            }
            let mut chunk = [0u8; 16 * 1024];
            match src.read(&mut chunk) {
                Ok(0) => return Err(WireError::Disconnected),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(map_read_err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader delivering its bytes `chunk` at a time, then EOF.
    struct Dribble {
        bytes: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl Read for Dribble {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            let n = self.chunk.min(self.bytes.len() - self.pos).min(out.len());
            out[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frames_round_trip_byte_by_byte() {
        let payload = b"synchronous model averaging".to_vec();
        let mut src = Dribble {
            bytes: frame(&payload),
            pos: 0,
            chunk: 1,
        };
        let mut reader = FrameReader::new();
        assert_eq!(reader.read_frame(&mut src).unwrap(), payload);
    }

    #[test]
    fn back_to_back_frames_stay_separated() {
        let mut bytes = frame(b"first");
        bytes.extend_from_slice(&frame(b"second"));
        bytes.extend_from_slice(&frame(b""));
        let mut src = Dribble {
            bytes,
            pos: 0,
            chunk: 7,
        };
        let mut reader = FrameReader::new();
        assert_eq!(reader.read_frame(&mut src).unwrap(), b"first");
        assert_eq!(reader.read_frame(&mut src).unwrap(), b"second");
        assert_eq!(reader.read_frame(&mut src).unwrap(), b"");
    }

    #[test]
    fn truncated_frame_reads_as_disconnect() {
        let mut bytes = frame(b"cut short");
        bytes.truncate(bytes.len() - 3);
        let mut src = Dribble {
            bytes,
            pos: 0,
            chunk: 64,
        };
        let mut reader = FrameReader::new();
        match reader.read_frame(&mut src) {
            Err(WireError::Disconnected) => {}
            other => panic!("expected disconnect, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_checksum_is_rejected() {
        let mut bytes = frame(b"trustworthy");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let mut src = Dribble {
            bytes,
            pos: 0,
            chunk: 64,
        };
        let mut reader = FrameReader::new();
        match reader.read_frame(&mut src) {
            Err(WireError::Corrupt(what)) => assert!(what.contains("checksum")),
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = frame(b"hello");
        bytes[0] = b'X';
        let mut src = Dribble {
            bytes,
            pos: 0,
            chunk: 64,
        };
        let mut reader = FrameReader::new();
        match reader.read_frame(&mut src) {
            Err(WireError::Corrupt(what)) => assert!(what.contains("magic")),
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocating() {
        let mut bytes = frame(b"ok");
        bytes[4..8].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut src = Dribble {
            bytes,
            pos: 0,
            chunk: 64,
        };
        let mut reader = FrameReader::new();
        match reader.read_frame(&mut src) {
            Err(WireError::Corrupt(what)) => assert!(what.contains("length")),
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    /// Drains `src` through a fresh reader: payloads until the first
    /// error, plus the error itself. The property harness — any input
    /// must land here, never in a panic.
    fn drain(bytes: Vec<u8>, chunk: usize) -> (Vec<Vec<u8>>, WireError) {
        let total = bytes.len();
        let mut src = Dribble {
            bytes,
            pos: 0,
            chunk: chunk.max(1),
        };
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        loop {
            match reader.read_frame(&mut src) {
                Ok(payload) => frames.push(payload),
                Err(e) => {
                    assert!(
                        reader.buffered() <= total,
                        "the reader must never buffer more than it was fed"
                    );
                    return (frames, e);
                }
            }
        }
    }

    #[test]
    fn seeded_random_bytes_are_typed_errors_never_panics() {
        // Pure noise and noise-with-valid-magic: every draw must come out
        // as a typed error (or a miraculous valid frame), not a panic.
        for seed in 0..64u64 {
            let mut state = seed;
            let len = 16 + (crate::fault::splitmix64(&mut state) % 512) as usize;
            let mut bytes: Vec<u8> = (0..len)
                .map(|_| crate::fault::splitmix64(&mut state) as u8)
                .collect();
            if seed % 2 == 0 {
                // Half the cases start with real magic so the parser gets
                // past the first check into length/checksum territory.
                bytes[..4].copy_from_slice(&MAGIC);
            }
            let chunk = 1 + (crate::fault::splitmix64(&mut state) % 64) as usize;
            let (_, err) = drain(bytes, chunk);
            assert!(
                matches!(
                    err,
                    WireError::Corrupt(_) | WireError::Disconnected | WireError::Io(_)
                ),
                "seed {seed}: unexpected outcome {err:?}"
            );
        }
    }

    #[test]
    fn every_truncation_of_a_frame_stream_is_a_clean_prefix() {
        let payloads: [&[u8]; 3] = [b"alpha", b"", b"gamma-gamma"];
        let mut stream = Vec::new();
        for p in payloads {
            stream.extend_from_slice(&frame(p));
        }
        for cut in 0..stream.len() {
            let (frames, err) = drain(stream[..cut].to_vec(), 13);
            // A truncated tail can only hide whole frames, never corrupt
            // or reorder the ones before it.
            assert!(
                matches!(err, WireError::Disconnected),
                "cut {cut}: got {err:?}"
            );
            assert!(frames.len() <= payloads.len());
            for (got, want) in frames.iter().zip(payloads) {
                assert_eq!(got, want, "cut {cut}");
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_at_header_time() {
        // Only the 16 header bytes arrive; the declared 4 GiB payload
        // never does. The reader must reject at the header — without
        // waiting for (or allocating room for) the phantom payload.
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes());
        let mut src = Dribble {
            bytes: header,
            pos: 0,
            chunk: 16,
        };
        let mut reader = FrameReader::new();
        match reader.read_frame(&mut src) {
            Err(WireError::Corrupt(what)) => assert!(what.contains("length")),
            other => panic!("expected corrupt, got {other:?}"),
        }
        assert_eq!(reader.buffered(), HEADER_LEN, "nothing beyond the header");
    }
}
