//! Seeded transport-level fault injection.
//!
//! The socket analogue of the GPU simulator's `FaultPlan`: a
//! [`NetFaultPlan`] describes *which* network pathologies to inject —
//! message drops, delivery delays, abrupt disconnects, a partition window
//! — and a per-connection [`FaultInjector`] decides deterministically,
//! from the plan seed and the connection id, what happens to each
//! outgoing frame. Two runs with the same plan and the same message
//! sequence inject exactly the same faults, so recovery behaviour is
//! testable bit-for-bit.
//!
//! Injection is applied on the coordinator's sends only: the
//! coordinator's frame sequence per connection is deterministic (rounds
//! are lockstep), while worker-side heartbeat threads interleave frames
//! nondeterministically.

use std::time::Duration;

/// What the injector decided for one outgoing frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Write the frame normally.
    Deliver,
    /// Silently discard the frame (the peer never sees it).
    Drop,
    /// Sleep, then deliver — a slow link.
    Delay(Duration),
    /// Shut the socket down — an abrupt mid-run disconnect.
    Disconnect,
}

/// A deterministic schedule of network faults.
#[derive(Clone, Debug)]
pub struct NetFaultPlan {
    /// Seed of the per-connection decision stream.
    pub seed: u64,
    /// Probability an eligible frame is dropped.
    pub drop_prob: f64,
    /// Probability an eligible frame is delayed by [`NetFaultPlan::delay`].
    pub delay_prob: f64,
    /// Added latency of a delayed frame.
    pub delay: Duration,
    /// Shut the connection down at this frame index (per connection).
    pub disconnect_after: Option<u64>,
    /// Drop every frame whose index falls in `[start, end)` — a network
    /// partition as seen from this side.
    pub partition: Option<(u64, u64)>,
    /// Leave the first frames of every connection untouched so the
    /// join handshake always completes (default 1: the welcome frame).
    pub skip_first: u64,
    /// Stop injecting probabilistic faults after this many (the
    /// partition window and `disconnect_after` are schedule-driven and
    /// exempt).
    pub max_faults: u64,
    /// Restrict the plan to one connection id; every other connection is
    /// fault-free. `None` applies it to all.
    pub only_conn: Option<u64>,
    /// Apply the plan only to connection ids strictly below this bound —
    /// the original cluster's links are cursed, replacement links made
    /// after a crash are healthy. `None` applies it to all.
    pub only_conns_below: Option<u64>,
}

impl NetFaultPlan {
    /// A fault-free plan under `seed`; chain builders to add faults.
    pub fn seeded(seed: u64) -> Self {
        NetFaultPlan {
            seed,
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::from_millis(1),
            disconnect_after: None,
            partition: None,
            skip_first: 1,
            max_faults: u64::MAX,
            only_conn: None,
            only_conns_below: None,
        }
    }

    /// Sets the drop probability (builder style).
    pub fn drop(mut self, prob: f64) -> Self {
        self.drop_prob = prob;
        self
    }

    /// Sets the delay probability and duration (builder style).
    pub fn delay(mut self, prob: f64, delay: Duration) -> Self {
        self.delay_prob = prob;
        self.delay = delay;
        self
    }

    /// Disconnects the link at this frame index (builder style).
    pub fn disconnect_after(mut self, frames: u64) -> Self {
        self.disconnect_after = Some(frames);
        self
    }

    /// Drops every frame in `[start, end)` (builder style).
    pub fn partition(mut self, start: u64, end: u64) -> Self {
        self.partition = Some((start, end));
        self
    }

    /// Caps the number of probabilistic faults (builder style).
    pub fn max_faults(mut self, n: u64) -> Self {
        self.max_faults = n;
        self
    }

    /// Restricts the plan to one connection id (builder style).
    pub fn only_conn(mut self, conn: u64) -> Self {
        self.only_conn = Some(conn);
        self
    }

    /// Restricts the plan to connection ids below `bound`, leaving
    /// replacement links healthy (builder style).
    pub fn conns_below(mut self, bound: u64) -> Self {
        self.only_conns_below = Some(bound);
        self
    }
}

/// SplitMix64: tiny, seedable, and good enough for fault scheduling —
/// and for the transport's jittered backoff and the chaos scheduler,
/// which draw from the same stream family.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-connection fault decision stream.
#[derive(Debug)]
pub struct FaultInjector {
    plan: NetFaultPlan,
    state: u64,
    frame: u64,
    faults: u64,
    inert: bool,
}

impl FaultInjector {
    /// An injector for connection `conn_id` under `plan`. Distinct
    /// connections get decorrelated decision streams from the same seed.
    pub fn new(plan: &NetFaultPlan, conn_id: u64) -> Self {
        let inert = plan.only_conn.is_some_and(|only| only != conn_id)
            || plan.only_conns_below.is_some_and(|bound| conn_id >= bound);
        FaultInjector {
            plan: plan.clone(),
            state: plan.seed ^ conn_id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            frame: 0,
            faults: 0,
            inert,
        }
    }

    /// Probabilistic faults injected so far (drops and delays).
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Decides the fate of the next outgoing frame. Decisions are a pure
    /// function of the frame index, so identical send sequences replay
    /// identical faults.
    pub fn on_send(&mut self) -> FaultAction {
        let idx = self.frame;
        self.frame += 1;
        if self.inert || idx < self.plan.skip_first {
            return FaultAction::Deliver;
        }
        if let Some(at) = self.plan.disconnect_after {
            if idx >= at {
                return FaultAction::Disconnect;
            }
        }
        if let Some((start, end)) = self.plan.partition {
            if idx >= start && idx < end {
                self.faults += 1;
                return FaultAction::Drop;
            }
        }
        // Draw exactly one random number per eligible frame, whether or
        // not it results in a fault, so the decision for frame `n` never
        // depends on anything but `n`.
        let r = (splitmix64(&mut self.state) >> 11) as f64 / (1u64 << 53) as f64;
        if self.faults >= self.plan.max_faults {
            return FaultAction::Deliver;
        }
        if r < self.plan.drop_prob {
            self.faults += 1;
            FaultAction::Drop
        } else if r < self.plan.drop_prob + self.plan.delay_prob {
            self.faults += 1;
            FaultAction::Delay(self.plan.delay)
        } else {
            FaultAction::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn actions(plan: &NetFaultPlan, conn: u64, n: usize) -> Vec<FaultAction> {
        let mut inj = FaultInjector::new(plan, conn);
        (0..n).map(|_| inj.on_send()).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = NetFaultPlan::seeded(7)
            .drop(0.3)
            .delay(0.2, Duration::from_millis(2));
        assert_eq!(actions(&plan, 1, 200), actions(&plan, 1, 200));
    }

    #[test]
    fn connections_are_decorrelated() {
        let plan = NetFaultPlan::seeded(7).drop(0.5);
        assert_ne!(actions(&plan, 0, 64), actions(&plan, 1, 64));
    }

    #[test]
    fn skip_first_protects_the_handshake() {
        let plan = NetFaultPlan::seeded(3).drop(1.0);
        let acts = actions(&plan, 0, 4);
        assert_eq!(acts[0], FaultAction::Deliver);
        assert!(acts[1..].iter().all(|a| *a == FaultAction::Drop));
    }

    #[test]
    fn disconnect_fires_at_the_scheduled_frame() {
        let plan = NetFaultPlan::seeded(3).disconnect_after(5);
        let acts = actions(&plan, 0, 8);
        assert!(acts[..5].iter().all(|a| *a == FaultAction::Deliver));
        assert!(acts[5..].iter().all(|a| *a == FaultAction::Disconnect));
    }

    #[test]
    fn partition_drops_the_window() {
        let plan = NetFaultPlan::seeded(3).partition(2, 4);
        let acts = actions(&plan, 0, 6);
        assert_eq!(acts[2], FaultAction::Drop);
        assert_eq!(acts[3], FaultAction::Drop);
        assert_eq!(acts[1], FaultAction::Deliver);
        assert_eq!(acts[4], FaultAction::Deliver);
    }

    #[test]
    fn only_conn_leaves_other_links_clean() {
        let plan = NetFaultPlan::seeded(3).drop(1.0).only_conn(2);
        assert!(actions(&plan, 0, 16)
            .iter()
            .all(|a| *a == FaultAction::Deliver));
        assert!(actions(&plan, 2, 16)[1..]
            .iter()
            .all(|a| *a == FaultAction::Drop));
    }

    #[test]
    fn conns_below_spares_replacement_links() {
        let plan = NetFaultPlan::seeded(3).drop(1.0).conns_below(2);
        assert!(actions(&plan, 0, 8)[1..]
            .iter()
            .all(|a| *a == FaultAction::Drop));
        assert!(actions(&plan, 2, 8)
            .iter()
            .all(|a| *a == FaultAction::Deliver));
    }

    #[test]
    fn max_faults_bounds_the_damage() {
        let plan = NetFaultPlan::seeded(3).drop(1.0).max_faults(2);
        let acts = actions(&plan, 0, 10);
        let drops = acts.iter().filter(|a| **a == FaultAction::Drop).count();
        assert_eq!(drops, 2);
    }
}
