//! Deterministic end-to-end chaos scenarios.
//!
//! Each scenario composes the repo's three seeded fault injectors — the
//! GPU simulator's `FaultPlan` (via a caller-supplied callback, since
//! the simulator lives above this crate), the transport's
//! [`NetFaultPlan`], and process crashes (a real `SIGKILL` against a
//! spawned `crossbow` binary, or its in-process `crash_drop` analogue) —
//! into a named, seeded, replayable drill that asserts a
//! scenario-specific recovery invariant.
//!
//! Everything that lands in the [`ChaosReport`] marker line is a pure
//! function of `(scenario, seed)` plus bit-identity booleans: the event
//! *schedule* is derived from the seed with SplitMix64, and the checks
//! compare checksums and counters that recovery is required to make
//! deterministic. Wall-clock noise (retry counts, kill latency) stays
//! out of the marker, so `same seed → same CHAOS-REPORT`, byte for byte.

use crate::cluster::{
    checksum_params, demo_algo, demo_task, run_local_cluster, run_local_failover,
    LocalClusterOptions, LocalFailoverOptions,
};
use crate::coordinator::{DistConfig, Topology};
use crate::fault::{splitmix64, NetFaultPlan};
use crate::transport::RetryPolicy;
use crossbow_sync::{train, TrainerConfig};
use crossbow_telemetry::Telemetry;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::mpsc::{self, Receiver};
use std::time::{Duration, Instant};

/// The scenario catalog.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosScenario {
    /// `SIGKILL` the primary coordinator process mid-round; the warm
    /// standby must take over within one lease period, workers must
    /// re-`Hello`, and the finished run's model checksum must equal an
    /// undisturbed in-process run's, bit for bit.
    KillPrimary,
    /// Drop a seed-derived window of coordinator→worker frames (a
    /// one-sided partition), then let it heal: resends must recover the
    /// round with *zero* evictions and a curve bit-identical to a clean
    /// run.
    PartitionHeal,
    /// The kitchen sink, phase by phase: a straggler+crash GPU
    /// simulation (caller callback), a transport-fault cluster (random
    /// drops plus scheduled worker-link crashes and a rebuilding late
    /// joiner), and a primary crash-drop failover that must still end
    /// bit-identical.
    Cascade,
}

impl ChaosScenario {
    /// Parses a scenario name as given on the command line.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "kill-primary" => Some(ChaosScenario::KillPrimary),
            "partition-heal" => Some(ChaosScenario::PartitionHeal),
            "cascade" => Some(ChaosScenario::Cascade),
            _ => None,
        }
    }

    /// The canonical name.
    pub fn name(self) -> &'static str {
        match self {
            ChaosScenario::KillPrimary => "kill-primary",
            ChaosScenario::PartitionHeal => "partition-heal",
            ChaosScenario::Cascade => "cascade",
        }
    }

    /// Every scenario, for `--list` and exhaustive CI sweeps.
    pub fn all() -> &'static [ChaosScenario] {
        &[
            ChaosScenario::KillPrimary,
            ChaosScenario::PartitionHeal,
            ChaosScenario::Cascade,
        ]
    }
}

/// What a GPU-simulation chaos phase reported back. The simulator lives
/// in a crate above this one, so the cascade scenario receives the phase
/// as a callback producing this summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimPhaseReport {
    /// A checksum over the simulated run's result (any stable
    /// fingerprint; compared across replays for determinism).
    pub checksum: u64,
    /// Whether the simulated run recovered from its injected faults.
    pub recovered: bool,
    /// Faults the simulator injected.
    pub faults: u64,
}

/// The cascade scenario's simulation phase: seed in, summary out. Must
/// be deterministic in the seed.
pub type SimPhase = Box<dyn Fn(u64) -> SimPhaseReport>;

/// What to run and how.
pub struct ChaosOptions {
    /// Which drill.
    pub scenario: ChaosScenario,
    /// The seed every schedule and fault plan derives from.
    pub seed: u64,
    /// Gradient topology for the phases that take one (`kill-primary`
    /// and the cascade's failover phase; `partition-heal` pins PS, where
    /// frame-window semantics are exact).
    pub topology: Topology,
    /// Path to the `crossbow` binary, required by `kill-primary` (the
    /// only scenario that spawns — and kills — real processes).
    pub binary: Option<PathBuf>,
    /// The cascade's GPU-simulation phase; skipped (and recorded as
    /// skipped) when absent.
    pub sim: Option<SimPhase>,
}

/// The machine-readable outcome. [`ChaosReport::marker`] renders the
/// single `CHAOS-REPORT` line harnesses grep for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// The seed the run derived everything from.
    pub seed: u64,
    /// Topology label.
    pub topology: &'static str,
    /// The seed-derived event schedule, in firing order.
    pub schedule: Vec<String>,
    /// One-line statement of what recovery had to guarantee.
    pub invariant: &'static str,
    /// Named invariant checks and whether each held.
    pub checks: Vec<(&'static str, bool)>,
    /// All checks held.
    pub pass: bool,
}

impl ChaosReport {
    fn finish(mut self) -> Self {
        self.pass = self.checks.iter().all(|(_, ok)| *ok);
        self
    }

    /// The one-line machine-readable marker. Deterministic for a given
    /// `(scenario, seed)` as long as the invariants hold the way they
    /// are required to.
    pub fn marker(&self) -> String {
        let checks: Vec<String> = self
            .checks
            .iter()
            .map(|(name, ok)| format!("{name}:{}", if *ok { "ok" } else { "FAIL" }))
            .collect();
        format!(
            "CHAOS-REPORT scenario={} seed={} topology={} schedule=[{}] invariant={} checks=[{}] pass={}",
            self.scenario,
            self.seed,
            self.topology,
            self.schedule.join("+"),
            self.invariant,
            checks.join(","),
            self.pass
        )
    }
}

fn topo_name(topology: Topology) -> &'static str {
    match topology {
        Topology::Ps => "ps",
        Topology::Ring => "ring",
    }
}

/// Draws `n` schedule values from the scenario's seed. Factored out so
/// the schedule a report prints is testably a pure function of the seed.
fn derive(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed;
    (0..n).map(|_| splitmix64(&mut state)).collect()
}

/// Runs one scenario to completion and returns its report. Progress
/// lines (reference-run results, kills fired, phase transitions) go
/// through `log`; only deterministic facts go in the report.
///
/// # Panics
/// Panics when a scenario cannot be *run* at all — a missing binary for
/// `kill-primary`, a spawn failure, or a harness timeout. Invariant
/// *violations* are not panics; they come back as failed checks.
pub fn run_chaos(opts: &ChaosOptions, telemetry: &Telemetry, log: &dyn Fn(String)) -> ChaosReport {
    telemetry.metrics.counter("chaos.scenarios").inc();
    let report = match opts.scenario {
        ChaosScenario::KillPrimary => kill_primary(opts, telemetry, log),
        ChaosScenario::PartitionHeal => partition_heal(opts, log),
        ChaosScenario::Cascade => cascade(opts, log),
    };
    if !report.pass {
        telemetry.metrics.counter("chaos.failed").inc();
    }
    report
}

// ---------------------------------------------------------------------
// Process harness (kill-primary)
// ---------------------------------------------------------------------

/// Kills the child on drop — both the cleanup path and, for the victim,
/// the fault itself: `Child::kill` is `SIGKILL`, no goodbye, no flush.
struct Reaped(Child);

impl Drop for Reaped {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn line_channel(out: ChildStdout) -> Receiver<String> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(out).lines().map_while(Result::ok) {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    rx
}

fn wait_for(
    rx: &Receiver<String>,
    what: &str,
    timeout: Duration,
    pred: impl Fn(&str) -> bool,
) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        assert!(
            !left.is_zero(),
            "chaos harness timed out waiting for {what}"
        );
        match rx.recv_timeout(left) {
            Ok(line) => {
                if pred(&line) {
                    return line;
                }
            }
            Err(_) => panic!("process exited while harness waited for {what}"),
        }
    }
}

fn field<'a>(line: &'a str, key: &str) -> &'a str {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|t| t.strip_prefix('=')))
        .unwrap_or_else(|| panic!("no {key}= in {line:?}"))
}

fn spawn_piped(bin: &PathBuf, args: &[&str]) -> (Reaped, Receiver<String>) {
    let mut child = Command::new(bin)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn crossbow process");
    let lines = line_channel(child.stdout.take().expect("piped stdout"));
    (Reaped(child), lines)
}

fn kill_primary(opts: &ChaosOptions, telemetry: &Telemetry, log: &dyn Fn(String)) -> ChaosReport {
    let bin = opts
        .binary
        .clone()
        .expect("kill-primary spawns real processes and needs the crossbow binary path");
    let drawn = derive(opts.seed, 1);
    let kill_iter = 5 + drawn[0] % 10;
    let topology = topo_name(opts.topology);
    let schedule = vec![format!("sigkill:primary@iter>={kill_iter}")];

    // The undisturbed reference, in-process: same task, same seeds.
    let trainer = TrainerConfig::new(8, 20).with_seed(11);
    let (net, train_set, test_set) = demo_task();
    let mut algo = demo_algo(&net, 2, "sma", 3);
    let reference = train(&net, &train_set, &test_set, algo.as_mut(), &trainer);
    let ref_checksum = checksum_params(algo.consensus());
    log(format!(
        "chaos: reference run done ({} iterations, checksum {ref_checksum:016x})",
        reference.iterations
    ));

    let timing: &[&str] = &["--lease-interval-ms", "100", "--lease-timeout-ms", "500"];
    let shape: &[&str] = &[
        "--workers",
        "2",
        "--topology",
        topology,
        "--epochs",
        "20",
        "--batch",
        "8",
        "--seed",
        "11",
        "--init-seed",
        "3",
    ];
    let mut primary_args = vec![
        "dist-train",
        "--role",
        "coordinator",
        "--bind",
        "127.0.0.1:0",
        "--progress-every",
        "1",
    ];
    primary_args.extend_from_slice(shape);
    primary_args.extend_from_slice(timing);
    let (primary, primary_lines) = spawn_piped(&bin, &primary_args);
    let listening = wait_for(&primary_lines, "LISTENING", Duration::from_secs(60), |l| {
        l.starts_with("LISTENING ")
    });
    let addr = listening
        .trim_start_matches("LISTENING ")
        .trim()
        .to_string();

    let mut standby_args = vec![
        "dist-train",
        "--role",
        "standby",
        "--connect",
        &addr,
        "--bind",
        "127.0.0.1:0",
        "--priority",
        "1",
    ];
    standby_args.extend_from_slice(shape);
    standby_args.extend_from_slice(timing);
    // Bind the handle so the standby outlives the wait below and is
    // reaped at function exit, after its REPORT is read.
    let (_standby, standby_lines) = spawn_piped(&bin, &standby_args);
    let standby_listening = wait_for(
        &standby_lines,
        "STANDBY LISTENING",
        Duration::from_secs(60),
        |l| l.starts_with("STANDBY LISTENING "),
    );
    let standby_addr = standby_listening
        .trim_start_matches("STANDBY LISTENING ")
        .trim()
        .to_string();
    wait_for(
        &standby_lines,
        "STANDBY REGISTERED",
        Duration::from_secs(60),
        |l| l.starts_with("STANDBY REGISTERED"),
    );

    let connect = format!("{addr},{standby_addr}");
    let workers: Vec<Reaped> = (0..2)
        .map(|i| {
            let jitter = (i + 1).to_string();
            let mut cmd = Command::new(&bin);
            cmd.args([
                "dist-train",
                "--role",
                "worker",
                "--connect",
                &connect,
                "--failover-retries",
                "10",
                "--jitter-seed",
                &jitter,
            ]);
            Reaped(
                cmd.stdout(Stdio::null())
                    .stderr(Stdio::null())
                    .spawn()
                    .expect("spawn worker"),
            )
        })
        .collect();

    wait_for(
        &primary_lines,
        "training progress",
        Duration::from_secs(120),
        |l| {
            l.strip_prefix("PROGRESS iter=")
                .and_then(|v| v.parse::<u64>().ok())
                .is_some_and(|iter| iter >= kill_iter)
        },
    );
    log(format!("chaos: SIGKILL primary at iter>={kill_iter}"));
    telemetry.metrics.counter("chaos.kills").inc();
    drop(primary);

    let takeover = wait_for(
        &standby_lines,
        "STANDBY TAKEOVER",
        Duration::from_secs(60),
        |l| l.starts_with("STANDBY TAKEOVER"),
    );
    log(format!("chaos: {takeover}"));
    let report = wait_for(&standby_lines, "REPORT", Duration::from_secs(300), |l| {
        l.starts_with("REPORT ")
    });
    let term: u64 = field(&report, "term").parse().expect("term");
    let checksum = u64::from_str_radix(field(&report, "checksum"), 16).expect("checksum");
    let iterations: u64 = field(&report, "iterations").parse().expect("iterations");
    drop(workers);

    ChaosReport {
        scenario: opts.scenario.name(),
        seed: opts.seed,
        topology,
        schedule,
        invariant: "standby-takeover-is-bit-identical",
        checks: vec![
            ("takeover_term_is_1", term == 1),
            ("run_completed", iterations == reference.iterations),
            ("checksum_matches_undisturbed", checksum == ref_checksum),
        ],
        pass: false,
    }
    .finish()
}

// ---------------------------------------------------------------------
// In-process scenarios
// ---------------------------------------------------------------------

fn partition_heal(opts: &ChaosOptions, log: &dyn Fn(String)) -> ChaosReport {
    let drawn = derive(opts.seed, 2);
    let start = 6 + drawn[0] % 8;
    let len = 3 + drawn[1] % 3;
    let schedule = vec![format!("partition:conn0@frames[{start},{})", start + len)];

    let trainer = TrainerConfig::new(8, 2).with_seed(11);
    // PS only: the frame-index window maps one-to-one onto work sends,
    // so the partition length bounds the resend count exactly.
    let mut dist = DistConfig::new(Topology::Ps, 2);
    dist.work_resend = Duration::from_millis(200);
    dist.retry = RetryPolicy {
        max_retries: 8,
        backoff_base: Duration::from_millis(25),
        backoff_cap: Duration::from_millis(100),
    };
    let run = |fault: Option<NetFaultPlan>| {
        let mut dist = dist.clone();
        dist.fault = fault;
        run_local_cluster(LocalClusterOptions {
            workers: 2,
            algo: "sma".into(),
            init_seed: 3,
            trainer: trainer.clone(),
            dist,
            late_workers: Vec::new(),
            events: None,
            worker_data: None,
        })
    };
    let clean = run(None);
    log("chaos: clean reference cluster done".to_string());
    let plan = NetFaultPlan::seeded(opts.seed)
        .partition(start, start + len)
        .only_conn(0);
    let parted = run(Some(plan));
    log(format!(
        "chaos: partitioned run done ({} resends)",
        parted.report.counters.retries
    ));

    ChaosReport {
        scenario: opts.scenario.name(),
        seed: opts.seed,
        topology: "ps",
        schedule,
        invariant: "partition-heals-by-resend-without-eviction",
        checks: vec![
            (
                "run_completed",
                parted.report.curve.epoch_accuracy.len() == 2,
            ),
            ("resends_fired", parted.report.counters.retries > 0),
            ("no_evictions", parted.report.counters.evictions == 0),
            ("curve_identical", parted.report.curve == clean.report.curve),
            (
                "checksum_matches_clean",
                parted.report.model_checksum == clean.report.model_checksum,
            ),
        ],
        pass: false,
    }
    .finish()
}

fn cascade(opts: &ChaosOptions, log: &dyn Fn(String)) -> ChaosReport {
    let drawn = derive(opts.seed, 3);
    let crash_iter = 10 + drawn[0] % 10;
    let disconnect_frame = 6 + drawn[1] % 6;
    let sim_seed = drawn[2];
    let topology = topo_name(opts.topology);
    let schedule = vec![
        format!("sim:straggler+crash@seed={sim_seed}"),
        format!("disconnect:conns<2@frame={disconnect_frame}+drop:2%"),
        format!("crashdrop:primary@iter={crash_iter}"),
    ];
    let mut checks: Vec<(&'static str, bool)> = Vec::new();

    // Phase 1: GPU-simulator faults, via the caller's callback (the
    // simulator lives above this crate). Replayed twice to pin
    // determinism, not just recovery.
    if let Some(sim) = &opts.sim {
        let first = sim(sim_seed);
        let second = sim(sim_seed);
        log(format!(
            "chaos: sim phase done ({} faults, checksum {:016x})",
            first.faults, first.checksum
        ));
        checks.push(("sim_recovered", first.recovered));
        checks.push(("sim_deterministic", first == second));
    } else {
        log("chaos: sim phase skipped (no simulator callback wired)".to_string());
    }

    // Phase 2: transport chaos — every original worker link dies at a
    // scheduled frame while 2% of frames drop; a late joiner rebuilds
    // the cluster and the run must still finish every epoch.
    let trainer = TrainerConfig::new(8, 4).with_seed(11);
    let mut dist = DistConfig::new(Topology::Ps, 2);
    dist.work_resend = Duration::from_millis(300);
    dist.fault = Some(
        NetFaultPlan::seeded(opts.seed)
            .drop(0.02)
            .disconnect_after(disconnect_frame)
            .conns_below(2),
    );
    let wrecked = run_local_cluster(LocalClusterOptions {
        workers: 2,
        algo: "sma".into(),
        init_seed: 3,
        trainer,
        dist,
        late_workers: vec![Duration::from_millis(800)],
        events: None,
        worker_data: None,
    });
    log(format!(
        "chaos: net phase done (evictions={}, rejoins={})",
        wrecked.report.counters.evictions, wrecked.report.counters.rejoins
    ));
    checks.push((
        "net_run_completed",
        wrecked.report.curve.epoch_accuracy.len() == 4,
    ));
    checks.push((
        "original_workers_evicted",
        wrecked.report.counters.evictions == 2,
    ));
    checks.push(("late_joiner_rebuilt", wrecked.report.counters.rejoins == 1));

    // Phase 3: primary crash-drop failover; the takeover must still be
    // bit-identical to an undisturbed run.
    let trainer = TrainerConfig::new(8, 3).with_seed(11);
    let mut dist = DistConfig::new(opts.topology, 2);
    dist.lease_interval = Duration::from_millis(100);
    dist.lease_timeout = Duration::from_millis(400);
    let failover = run_local_failover(LocalFailoverOptions {
        workers: 2,
        algo: "sma".into(),
        init_seed: 3,
        trainer: trainer.clone(),
        dist,
        crash_after: crash_iter,
    });
    let (net, train_set, test_set) = demo_task();
    let mut algo = demo_algo(&net, 2, "sma", 3);
    let local = train(&net, &train_set, &test_set, algo.as_mut(), &trainer);
    log(format!(
        "chaos: failover phase done (term {})",
        failover.takeover.term
    ));
    checks.push(("takeover_term_is_1", failover.takeover.term == 1));
    checks.push(("failover_curve_identical", failover.takeover.curve == local));
    checks.push((
        "failover_checksum_matches",
        failover.takeover.model_checksum == checksum_params(algo.consensus()),
    ));

    ChaosReport {
        scenario: opts.scenario.name(),
        seed: opts.seed,
        topology,
        schedule,
        invariant: "every-layer-recovers-and-failover-stays-bit-identical",
        checks,
        pass: false,
    }
    .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for s in ChaosScenario::all() {
            assert_eq!(ChaosScenario::parse(s.name()), Some(*s));
        }
        assert_eq!(ChaosScenario::parse("nope"), None);
    }

    #[test]
    fn schedules_are_a_pure_function_of_the_seed() {
        assert_eq!(derive(7, 3), derive(7, 3));
        assert_ne!(derive(7, 3), derive(8, 3));
    }

    #[test]
    fn marker_is_one_grepable_line() {
        let report = ChaosReport {
            scenario: "kill-primary",
            seed: 7,
            topology: "ps",
            schedule: vec!["sigkill:primary@iter>=9".into()],
            invariant: "standby-takeover-is-bit-identical",
            checks: vec![("takeover_term_is_1", true), ("checksum", false)],
            pass: false,
        }
        .finish();
        let marker = report.marker();
        assert!(marker.starts_with("CHAOS-REPORT scenario=kill-primary seed=7 "));
        assert!(!marker.contains('\n'));
        assert!(marker.contains("checks=[takeover_term_is_1:ok,checksum:FAIL]"));
        assert!(marker.ends_with("pass=false"));
        assert!(!report.pass, "one failed check fails the scenario");
    }

    #[test]
    fn partition_heal_recovers_bit_identically() {
        let report = run_chaos(
            &ChaosOptions {
                scenario: ChaosScenario::PartitionHeal,
                seed: 7,
                topology: Topology::Ps,
                binary: None,
                sim: None,
            },
            &Telemetry::disabled(),
            &|_| {},
        );
        assert!(report.pass, "partition-heal must pass: {:?}", report.checks);
        assert_eq!(report.schedule.len(), 1);
    }
}
