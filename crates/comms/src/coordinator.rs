//! The coordinator: control plane and state authority of a cluster.
//!
//! The coordinator runs the *unmodified* training loop
//! ([`crossbow_sync::train_with_source`]) — sampling, synchronisation,
//! evaluation, divergence guard, durable checkpointing — and plugs a
//! `RemoteCluster` in as the gradient source. Workers are stateless
//! gradient servers, so a healthy distributed run produces a
//! [`TrainingCurve`] bit-identical to the single-process trainer at the
//! same configuration, and every robustness feature the trainer already
//! has (guard rollback, checkpoint resume) works distributed for free.
//!
//! Failure handling is the Rudra-style degraded mode: a worker that
//! misses its heartbeat window, disconnects, or exhausts its work
//! retries is *evicted* — its learner slot is removed by snapshot-edit
//! and SMA renormalizes the central average over the survivors (`alpha =
//! 1/k` tracks the new `k`). A restarted worker rejoins between rounds:
//! the coordinator re-adds a replica initialised from the latest average
//! model and hands the newcomer the most recent durable checkpoint (or a
//! live snapshot encoded the same way) as its admission state.

use crate::cluster::checksum_params;
use crate::fault::{FaultInjector, NetFaultPlan};
use crate::proto::Msg;
use crate::transport::{Conn, RetryPolicy};
use crate::wire::WireError;
use crossbow_checkpoint::{AlgoState, CheckpointStore, TrainingState};
use crossbow_data::{PartitionPlan, SampleSource};
use crossbow_nn::Network;
use crossbow_sync::{
    resume_with_source, train_from_state_with_source, train_with_source, GradientSource,
    LearnerBatch, RoundStatus, StateHook, SyncAlgorithm, TrainerConfig, TrainingCurve,
};
use crossbow_telemetry::Telemetry;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How gradients travel between processes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Parameter server: every worker exchanges (params, gradient) with
    /// the coordinator directly.
    Ps,
    /// Decentralized ring: workers all-gather gradient blocks over
    /// worker-to-worker TCP links; slot 0 uploads the gathered round.
    Ring,
}

impl Topology {
    /// Wire encoding.
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            Topology::Ps => 0,
            Topology::Ring => 1,
        }
    }
}

/// Coordinator-side cluster configuration.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Gradient exchange topology.
    pub topology: Topology,
    /// Cluster size at formation; also the algorithm's initial `k`.
    pub workers: usize,
    /// Evict a worker silent for longer than this.
    pub heartbeat_timeout: Duration,
    /// Heartbeat interval workers are told to ping at (handed out in
    /// `Welcome`); must stay below `heartbeat_timeout`.
    pub heartbeat_interval: Duration,
    /// Re-issue a round's work after this long without a reply.
    pub work_resend: Duration,
    /// Per-member receive poll interval while collecting a round.
    pub poll: Duration,
    /// How long to wait for cluster formation, and for a replacement
    /// worker when every member is gone.
    pub join_timeout: Duration,
    /// How long an accepted connection may take to introduce itself
    /// (`Hello` or `Lease`) before it is dropped.
    pub hello_timeout: Duration,
    /// Lease-renewal interval toward registered standbys; must stay
    /// below `lease_timeout`.
    pub lease_interval: Duration,
    /// How long a standby tolerates lease silence before it elects
    /// itself primary.
    pub lease_timeout: Duration,
    /// Stream the training state to standbys every this many applied
    /// iterations (1 = every step; must be at least 1).
    pub state_every: u64,
    /// This coordinator's failover term (0 for the original primary; a
    /// standby takes over at the last observed term + 1).
    pub term: u64,
    /// Test hook: end the run by closing every socket *without* the
    /// `Shutdown` farewell — the FIN pattern a SIGKILLed process leaves
    /// behind, for in-process crash simulation.
    pub crash_drop: bool,
    /// Backoff discipline for work re-issues.
    pub retry: RetryPolicy,
    /// Transport fault injection applied to coordinator-side sends.
    pub fault: Option<NetFaultPlan>,
    /// Ship sample *indices* instead of batch payloads (`WorkIdx` rather
    /// than `Work`). Workers must then open the dataset locally (see
    /// `run_worker_with_data`) and gather their own batches — the
    /// shard-partitioned data plane, which cuts per-round bytes from
    /// O(batch × sample) to O(batch).
    pub index_work: bool,
}

impl DistConfig {
    /// Defaults for `workers` members in `topology`.
    pub fn new(topology: Topology, workers: usize) -> Self {
        DistConfig {
            topology,
            workers,
            heartbeat_timeout: Duration::from_secs(3),
            heartbeat_interval: Duration::from_millis(200),
            work_resend: Duration::from_secs(1),
            poll: Duration::from_millis(10),
            join_timeout: Duration::from_secs(30),
            hello_timeout: Duration::from_secs(5),
            lease_interval: Duration::from_millis(250),
            lease_timeout: Duration::from_secs(1),
            state_every: 1,
            term: 0,
            crash_drop: false,
            retry: RetryPolicy::default(),
            fault: None,
            index_work: false,
        }
    }

    /// Installs a fault plan (builder style).
    pub fn with_fault(mut self, plan: NetFaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Enables index-shipping work dispatch (builder style). Workers must
    /// hold a local copy of the dataset.
    pub fn with_index_work(mut self) -> Self {
        self.index_work = true;
        self
    }

    /// Checks the timing relations the protocol depends on: heartbeats
    /// must outpace eviction, lease renewals must outpace takeover, and
    /// every poll/resend interval must be positive.
    ///
    /// # Errors
    /// A description of the first violated relation.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("workers must be at least 1".into());
        }
        if self.heartbeat_interval.is_zero() {
            return Err("heartbeat interval must be positive".into());
        }
        if self.heartbeat_interval >= self.heartbeat_timeout {
            return Err(format!(
                "heartbeat interval ({:?}) must be below the eviction timeout ({:?})",
                self.heartbeat_interval, self.heartbeat_timeout
            ));
        }
        if self.lease_interval.is_zero() {
            return Err("lease interval must be positive".into());
        }
        if self.lease_interval >= self.lease_timeout {
            return Err(format!(
                "lease interval ({:?}) must be below the lease timeout ({:?})",
                self.lease_interval, self.lease_timeout
            ));
        }
        if self.work_resend.is_zero() {
            return Err("work resend interval must be positive".into());
        }
        if self.poll.is_zero() {
            return Err("poll interval must be positive".into());
        }
        if self.join_timeout.is_zero() || self.hello_timeout.is_zero() {
            return Err("join and hello timeouts must be positive".into());
        }
        if self.state_every == 0 {
            return Err("state_every must be at least 1".into());
        }
        Ok(())
    }
}

/// Fault-handling counters of one distributed run — the run report's
/// `faults` block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistCounters {
    /// Workers evicted (heartbeat timeout, disconnect, retry exhaustion).
    pub evictions: u64,
    /// Workers admitted after training started.
    pub rejoins: u64,
    /// Work re-issues after a lost or unanswered round.
    pub retries: u64,
}

/// A cluster membership event, surfaced to the embedding process (the
/// CLI prints these as progress markers).
#[derive(Clone, Debug)]
pub enum ClusterEvent {
    /// A worker joined; `rejoin` is true once training has started.
    Joined {
        /// The slot it owns.
        slot: usize,
        /// Whether this is a mid-run (re)join.
        rejoin: bool,
    },
    /// A worker was evicted.
    Evicted {
        /// The slot it owned.
        slot: usize,
        /// Why.
        reason: &'static str,
    },
    /// A round's work was re-issued.
    Resent {
        /// The round id.
        iter: u64,
        /// The retry attempt (1-based).
        attempt: u32,
    },
    /// A warm standby registered for state replication.
    StandbyJoined {
        /// The standby's takeover priority (lower takes over first).
        priority: u32,
    },
}

/// Callback type for [`ClusterEvent`]s.
pub type EventHook = Arc<dyn Fn(ClusterEvent) + Send + Sync>;

/// The end-of-run report: the curve plus the robustness and network
/// ledger.
#[derive(Clone, Debug)]
pub struct DistReport {
    /// The training curve (bit-identical to a local run when no faults
    /// changed membership).
    pub curve: TrainingCurve,
    /// Eviction/rejoin/retry counters.
    pub counters: DistCounters,
    /// Total framed bytes written (`net.bytes_sent`).
    pub bytes_sent: u64,
    /// Total framed bytes read (`net.bytes_recv`).
    pub bytes_recv: u64,
    /// Probabilistic faults the injector fired (`net.faults_injected`).
    pub faults_injected: u64,
    /// Live workers at the end of the run.
    pub workers: usize,
    /// FNV-1a/64 over the consensus model bits — a cheap cross-process
    /// fingerprint for "same model" assertions.
    pub model_checksum: u64,
    /// The failover term this report was produced under (0 = the
    /// original primary; n = the n-th takeover).
    pub term: u64,
}

/// One registered warm standby. The connection stays open for the life
/// of the run — the primary pushes leases and state updates through it
/// and never reads from it.
struct StandbyLink {
    conn: Conn,
    #[allow(dead_code)] // recorded for operators; selection runs standby-side
    priority: u32,
}

/// Shared standby-replication state: the registered links, the latest
/// encoded [`TrainingState`], and the update sequence counter. Shared
/// between the accept path (registration), the trainer's state hook
/// (updates), and the lease-renewal thread.
pub(crate) struct Replication {
    term: u64,
    standbys: Mutex<Vec<StandbyLink>>,
    last_state: Mutex<Option<Vec<u8>>>,
    seq: AtomicU64,
}

impl Replication {
    fn new(term: u64) -> Arc<Self> {
        Arc::new(Replication {
            term,
            standbys: Mutex::new(Vec::new()),
            last_state: Mutex::new(None),
            seq: AtomicU64::new(0),
        })
    }

    /// Sends `msg` to every standby, silently dropping links whose send
    /// failed — a dead standby must never stall the training loop.
    fn broadcast(&self, msg: &Msg) {
        let mut links = self.standbys.lock().unwrap_or_else(PoisonError::into_inner);
        links.retain(|link| link.conn.send(msg).is_ok());
    }

    /// Publishes one state update to every standby and caches it for
    /// late registrants.
    fn publish(&self, bytes: Vec<u8>) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let msg = Msg::State {
            term: self.term,
            seq,
            state: bytes.clone(),
        };
        *self
            .last_state
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(bytes);
        self.broadcast(&msg);
    }

    /// Registers a standby: acks with the current term, catches it up
    /// with the latest state, and keeps the connection. Returns false
    /// when the link died during the handshake.
    fn register(&self, conn: Conn, priority: u32) -> bool {
        let ack = Msg::Lease {
            term: self.term,
            priority: 0,
        };
        if conn.send(&ack).is_err() {
            return false;
        }
        let cached = self
            .last_state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        if let Some(bytes) = cached {
            let catch_up = Msg::State {
                term: self.term,
                seq: self.seq.load(Ordering::Relaxed),
                state: bytes,
            };
            if conn.send(&catch_up).is_err() {
                return false;
            }
        }
        self.standbys
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(StandbyLink { conn, priority });
        true
    }

    /// Releases every standby at end of run. A graceful finish sends
    /// `Shutdown` (so standbys exit instead of taking over); a simulated
    /// crash just closes the sockets.
    fn shutdown(&self, crash_drop: bool) {
        let mut links = self.standbys.lock().unwrap_or_else(PoisonError::into_inner);
        for link in links.drain(..) {
            if !crash_drop {
                let _ = link.conn.send(&Msg::Shutdown);
            }
            link.conn.shutdown();
        }
    }
}

/// The lease-renewal thread's handle: stops and joins on drop or via
/// [`LeaseTask::stop`].
struct LeaseTask {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl LeaseTask {
    fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for LeaseTask {
    fn drop(&mut self) {
        self.halt();
    }
}

fn spawn_lease(repl: Arc<Replication>, interval: Duration) -> LeaseTask {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        // Sleep in short slices so stop is prompt even with long leases.
        let slice = interval.min(Duration::from_millis(50));
        let mut next = Instant::now() + interval;
        while !flag.load(Ordering::Relaxed) {
            std::thread::sleep(slice);
            if Instant::now() >= next {
                repl.broadcast(&Msg::Lease {
                    term: repl.term,
                    priority: 0,
                });
                next = Instant::now() + interval;
            }
        }
    });
    LeaseTask {
        stop,
        handle: Some(handle),
    }
}

/// A TCP-listening coordinator. Bind, then [`Coordinator::run`],
/// [`Coordinator::resume`], or (on takeover)
/// [`Coordinator::run_from_state`].
pub struct Coordinator {
    listener: TcpListener,
    cfg: DistConfig,
    telemetry: Telemetry,
    events: Option<EventHook>,
}

impl Coordinator {
    /// Binds `addr` (use port 0 for an OS-assigned port, so parallel
    /// runs never collide).
    ///
    /// # Errors
    /// Any bind failure, or `InvalidInput` when `cfg` fails
    /// [`DistConfig::validate`].
    pub fn bind(addr: &str, cfg: DistConfig, telemetry: Telemetry) -> std::io::Result<Self> {
        Coordinator::from_listener(TcpListener::bind(addr)?, cfg, telemetry)
    }

    /// Wraps an already-bound listener — the takeover path, where the
    /// standby has been listening on its advertised address all along
    /// and now runs the cluster from it.
    ///
    /// # Errors
    /// Any socket failure, or `InvalidInput` when `cfg` fails
    /// [`DistConfig::validate`].
    pub fn from_listener(
        listener: TcpListener,
        cfg: DistConfig,
        telemetry: Telemetry,
    ) -> std::io::Result<Self> {
        cfg.validate()
            .map_err(|why| std::io::Error::new(std::io::ErrorKind::InvalidInput, why))?;
        listener.set_nonblocking(true)?;
        Ok(Coordinator {
            listener,
            cfg,
            telemetry,
            events: None,
        })
    }

    /// The bound address (report this to workers).
    ///
    /// # Errors
    /// Any socket failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Installs an event callback (builder style).
    pub fn with_events(mut self, events: EventHook) -> Self {
        self.events = Some(events);
        self
    }

    /// Forms the cluster, trains to completion, shuts the workers down.
    ///
    /// # Panics
    /// Panics when the cluster cannot form (or re-form) within
    /// `join_timeout`, and on trainer-level mismatches.
    pub fn run(
        &self,
        net: &Network,
        train_set: &dyn SampleSource,
        test_set: &dyn SampleSource,
        algo: &mut dyn SyncAlgorithm,
        tcfg: &TrainerConfig,
    ) -> DistReport {
        let (tcfg, repl, lease) = self.start_replication(tcfg);
        let mut cluster = RemoteCluster::form(self, algo, &tcfg, Arc::clone(&repl));
        let curve = train_with_source(net, train_set, test_set, algo, &tcfg, &mut cluster);
        lease.stop();
        self.finish(cluster, curve, algo, &repl)
    }

    /// As [`Coordinator::run`], but starts from an in-memory
    /// [`TrainingState`] — the standby-takeover path. The state is the
    /// last one the old primary streamed; continuing from it keeps the
    /// curve bit-identical to an undisturbed run.
    ///
    /// # Panics
    /// As [`Coordinator::run`], plus when the state does not fit the run.
    pub fn run_from_state(
        &self,
        net: &Network,
        train_set: &dyn SampleSource,
        test_set: &dyn SampleSource,
        algo: &mut dyn SyncAlgorithm,
        tcfg: &TrainerConfig,
        state: Option<TrainingState>,
    ) -> DistReport {
        let (tcfg, repl, lease) = self.start_replication(tcfg);
        let mut cluster = RemoteCluster::form(self, algo, &tcfg, Arc::clone(&repl));
        let curve = train_from_state_with_source(
            net,
            train_set,
            test_set,
            algo,
            &tcfg,
            state,
            &mut cluster,
        );
        lease.stop();
        self.finish(cluster, curve, algo, &repl)
    }

    /// Wires the replication tap into the trainer config and starts the
    /// lease-renewal thread. Every run variant goes through here, so a
    /// primary is always standby-capable.
    fn start_replication(
        &self,
        tcfg: &TrainerConfig,
    ) -> (TrainerConfig, Arc<Replication>, LeaseTask) {
        let repl = Replication::new(self.cfg.term);
        let tap = Arc::clone(&repl);
        let hooked = tcfg
            .clone()
            .with_state_hook(StateHook::new(self.cfg.state_every, move |state| {
                tap.publish(state.encode())
            }));
        let lease = spawn_lease(Arc::clone(&repl), self.cfg.lease_interval);
        (hooked, repl, lease)
    }

    /// As [`Coordinator::run`], but resumes from the newest durable
    /// checkpoint when one fits (coordinator crash recovery).
    ///
    /// # Errors
    /// [`crossbow_checkpoint::CheckpointError`] when the checkpoint
    /// directory is unreadable.
    ///
    /// # Panics
    /// As [`Coordinator::run`].
    pub fn resume(
        &self,
        net: &Network,
        train_set: &dyn SampleSource,
        test_set: &dyn SampleSource,
        algo: &mut dyn SyncAlgorithm,
        tcfg: &TrainerConfig,
    ) -> Result<DistReport, crossbow_checkpoint::CheckpointError> {
        let (tcfg, repl, lease) = self.start_replication(tcfg);
        let mut cluster = RemoteCluster::form(self, algo, &tcfg, Arc::clone(&repl));
        let curve = resume_with_source(net, train_set, test_set, algo, &tcfg, &mut cluster)?;
        lease.stop();
        Ok(self.finish(cluster, curve, algo, &repl))
    }

    fn finish(
        &self,
        mut cluster: RemoteCluster<'_>,
        curve: TrainingCurve,
        algo: &dyn SyncAlgorithm,
        repl: &Replication,
    ) -> DistReport {
        if self.cfg.crash_drop {
            // Simulated primary crash: every socket closes without the
            // Shutdown farewell — the same FIN a SIGKILLed process
            // leaves, so peers observe `Disconnected`, not a clean end.
            for member in &cluster.members {
                member.conn.shutdown();
            }
        } else {
            cluster.shutdown();
        }
        repl.shutdown(self.cfg.crash_drop);
        let metrics = &self.telemetry.metrics;
        DistReport {
            curve,
            counters: cluster.counters,
            bytes_sent: metrics.counter("net.bytes_sent").get(),
            bytes_recv: metrics.counter("net.bytes_recv").get(),
            faults_injected: metrics.counter("net.faults_injected").get(),
            workers: cluster.members.len(),
            model_checksum: checksum_params(algo.consensus()),
            term: self.cfg.term,
        }
    }
}

/// One admitted worker, indexed by its slot.
struct Member {
    conn: Conn,
    last_seen: Instant,
    ring_addr: String,
}

/// The remote [`GradientSource`]: owns the worker connections and the
/// round protocol for both topologies.
struct RemoteCluster<'a> {
    listener: &'a TcpListener,
    cfg: &'a DistConfig,
    telemetry: Telemetry,
    events: Option<EventHook>,
    members: Vec<Member>,
    store: Option<CheckpointStore>,
    repl: Arc<Replication>,
    partition: Option<PartitionPlan>,
    seed: u64,
    weight_decay: f32,
    round: u64,
    generation: u64,
    counters: DistCounters,
    next_conn: u64,
    started: bool,
}

impl<'a> RemoteCluster<'a> {
    /// Blocks until `cfg.workers` workers have joined.
    fn form(
        coordinator: &'a Coordinator,
        algo: &mut dyn SyncAlgorithm,
        tcfg: &TrainerConfig,
        repl: Arc<Replication>,
    ) -> Self {
        assert_eq!(
            algo.k(),
            coordinator.cfg.workers,
            "the algorithm's learner count must match the worker count"
        );
        let mut cluster = RemoteCluster {
            listener: &coordinator.listener,
            cfg: &coordinator.cfg,
            telemetry: coordinator.telemetry.clone(),
            events: coordinator.events.clone(),
            members: Vec::new(),
            store: tcfg.checkpoint.as_ref().and_then(|c| c.store().ok()),
            repl,
            partition: tcfg.partition,
            seed: tcfg.seed,
            weight_decay: tcfg.weight_decay,
            round: 0,
            generation: 0,
            counters: DistCounters::default(),
            next_conn: 0,
            started: false,
        };
        let deadline = Instant::now() + cluster.cfg.join_timeout;
        while cluster.members.len() < cluster.cfg.workers {
            if !cluster.accept_one(algo) {
                assert!(
                    Instant::now() < deadline,
                    "distributed run aborted: only {}/{} workers joined within {:?}",
                    cluster.members.len(),
                    cluster.cfg.workers,
                    cluster.cfg.join_timeout
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        if cluster.cfg.topology == Topology::Ring {
            cluster.push_ring_config();
        }
        cluster
    }

    fn emit(&self, event: ClusterEvent) {
        if let Some(hook) = &self.events {
            hook(event);
        }
    }

    /// Accepts and admits at most one pending worker. Returns whether a
    /// worker joined.
    fn accept_one(&mut self, algo: &mut dyn SyncAlgorithm) -> bool {
        let (stream, _) = match self.listener.accept() {
            Ok(accepted) => accepted,
            Err(_) => return false,
        };
        let _ = stream.set_nonblocking(false);
        let id = self.next_conn;
        self.next_conn += 1;
        let mut conn = match Conn::new(stream, self.telemetry.clone()) {
            Ok(conn) => conn,
            Err(_) => return false,
        };
        if let Some(plan) = &self.cfg.fault {
            conn = conn.with_injector(FaultInjector::new(plan, id));
        }
        // Wait briefly for the introduction (a worker's Hello or a
        // standby's Lease); a connector that never introduces itself is
        // dropped, not admitted.
        let hello_deadline = Instant::now() + self.cfg.hello_timeout;
        let poll = self.cfg.hello_timeout.min(Duration::from_millis(100));
        let (rejoin, ring_addr) = loop {
            match conn.recv_timeout(poll) {
                Ok(Msg::Hello { rejoin, ring_addr }) => break (rejoin, ring_addr),
                Ok(Msg::Lease { priority, .. }) => {
                    // A warm standby, not a worker: hand the connection
                    // to the replication registry and keep accepting.
                    if self.repl.register(conn, priority) {
                        self.emit(ClusterEvent::StandbyJoined { priority });
                    }
                    return false;
                }
                Ok(_) => continue,
                Err(WireError::Timeout) if Instant::now() < hello_deadline => continue,
                Err(_) => return false,
            }
        };
        // Slot assignment: the next free index. Mid-run joins normally
        // grow the learner group; after a last-man-standing eviction the
        // algorithm still holds an orphan replica, which the newcomer
        // adopts instead.
        let slot = self.members.len();
        if slot >= algo.k() && !algo.add_replica() {
            // The algorithm cannot grow; turn the worker away.
            let _ = conn.send(&Msg::Shutdown);
            return false;
        }
        // A partitioned run tells the worker which global sample range its
        // slot owns; the range follows the slot, so a rejoiner adopting a
        // different slot is re-ranged exactly like its replica. Plans are
        // sized for the formation `k` — a grown cluster's extra slots get
        // no range (the trainer rebuilds its plan on resize anyway).
        let (data_lo, data_hi) = match &self.partition {
            Some(plan) if slot < plan.groups() => {
                let (lo, hi) = plan.range(slot);
                (lo as u64, hi as u64)
            }
            _ => (0, 0),
        };
        let welcome = Msg::Welcome {
            slot: slot as u32,
            k: algo.k() as u32,
            topology: self.cfg.topology.as_u8(),
            weight_decay: self.weight_decay,
            heartbeat_ms: self.cfg.heartbeat_interval.as_millis() as u64,
            data_lo,
            data_hi,
            state: self.admission_state(algo),
        };
        if conn.send(&welcome).is_err() {
            return false;
        }
        self.members.push(Member {
            conn,
            last_seen: Instant::now(),
            ring_addr,
        });
        if self.started {
            self.counters.rejoins += 1;
        }
        self.emit(ClusterEvent::Joined {
            slot,
            rejoin: self.started || rejoin,
        });
        true
    }

    /// The state a joining worker recovers from: the latest durable
    /// checkpoint when one exists, else a live snapshot encoded with the
    /// same `TrainingState` serialization.
    fn admission_state(&self, algo: &dyn SyncAlgorithm) -> Vec<u8> {
        if let Some(store) = &self.store {
            if let Ok(Some(loaded)) = store.load_latest() {
                return loaded.state.encode();
            }
        }
        let state = match algo.snapshot() {
            Some(snap) => TrainingState {
                seed: self.seed,
                algorithm: algo.name().to_string(),
                iterations: snap.iter,
                algo: AlgoState {
                    center: snap.center,
                    center_prev: snap.center_prev,
                    replicas: snap.replicas,
                    aux: snap.aux,
                    iter: snap.iter,
                },
                ..TrainingState::default()
            },
            None => TrainingState {
                seed: self.seed,
                algorithm: algo.name().to_string(),
                ..TrainingState::default()
            },
        };
        state.encode()
    }

    /// Admits every worker waiting on the listener. Returns whether
    /// membership changed.
    fn adopt_joiners(&mut self, algo: &mut dyn SyncAlgorithm) -> bool {
        let mut changed = false;
        while self.accept_one(algo) {
            changed = true;
        }
        if changed && self.cfg.topology == Topology::Ring {
            self.push_ring_config();
        }
        changed
    }

    /// Removes member `j` and renormalizes the algorithm over the
    /// survivors by snapshot-edit (SMA's `alpha = 1/k` follows `k`).
    ///
    /// # Panics
    /// Panics for algorithms without per-replica state (S-SGD): they
    /// have no degraded mode to continue in.
    fn evict(&mut self, algo: &mut dyn SyncAlgorithm, j: usize, reason: &'static str) {
        let member = self.members.remove(j);
        member.conn.shutdown();
        self.counters.evictions += 1;
        self.emit(ClusterEvent::Evicted { slot: j, reason });
        let old_k = algo.k();
        if old_k > 1 {
            let mut snap = algo
                .snapshot()
                .expect("degraded-mode eviction needs a snapshot-capable algorithm");
            assert_eq!(
                snap.replicas.len(),
                old_k,
                "{} has no per-replica state and cannot renormalize over \
                 survivors; degraded mode needs sma",
                algo.name()
            );
            snap.replicas.remove(j);
            assert!(algo.restore(&snap), "snapshot-edit eviction failed");
        }
        // old_k == 1: keep the orphan replica for a future rejoiner.
        if self.cfg.topology == Topology::Ring {
            self.push_ring_config();
        }
    }

    /// Sends fresh ring links (slot, successor address) to every member
    /// under a new generation. Send failures are left for the next
    /// round's work dispatch to discover and evict.
    fn push_ring_config(&mut self) {
        self.generation += 1;
        let k = self.members.len();
        for j in 0..k {
            let msg = Msg::Ring {
                generation: self.generation,
                slot: j as u32,
                k: k as u32,
                next: self.members[(j + 1) % k].ring_addr.clone(),
            };
            let _ = self.members[j].conn.send(&msg);
        }
    }

    /// Re-sends the current ring generation without bumping it (heals
    /// dropped config frames during a resend).
    fn repeat_ring_config(&mut self) {
        let k = self.members.len();
        for j in 0..k {
            let msg = Msg::Ring {
                generation: self.generation,
                slot: j as u32,
                k: k as u32,
                next: self.members[(j + 1) % k].ring_addr.clone(),
            };
            let _ = self.members[j].conn.send(&msg);
        }
    }

    fn send_work(
        &mut self,
        j: usize,
        round: u64,
        params: &[f32],
        batch: &LearnerBatch,
    ) -> Result<(), WireError> {
        let msg = if self.cfg.index_work {
            Msg::WorkIdx {
                iter: round,
                slot: j as u32,
                params: params.to_vec(),
                indices: batch.indices.iter().map(|&i| i as u64).collect(),
            }
        } else {
            let images = &batch.images;
            Msg::Work {
                iter: round,
                slot: j as u32,
                params: params.to_vec(),
                dims: images.shape().dims().iter().map(|&d| d as u64).collect(),
                images: images.data().to_vec(),
                labels: batch.labels.iter().map(|&l| l as u64).collect(),
            }
        };
        self.members[j].conn.send(&msg)
    }

    /// One parameter-server round: dispatch work, collect gradients,
    /// resend with backoff, evict the silent.
    fn ps_round(
        &mut self,
        algo: &mut dyn SyncAlgorithm,
        batches: &[LearnerBatch],
        grads: &mut [Vec<f32>],
        losses: &mut [f32],
    ) -> RoundStatus {
        let k = self.members.len();
        self.round += 1;
        let round = self.round;
        for (j, batch) in batches.iter().enumerate().take(k) {
            let params = algo.replica(j).to_vec();
            if self.send_work(j, round, &params, batch).is_err() {
                self.evict(algo, j, "work dispatch failed");
                return RoundStatus::Resized;
            }
        }
        let mut pending = vec![true; k];
        let mut sent_at = vec![Instant::now(); k];
        let mut attempts = vec![1u32; k];
        while pending.iter().any(|&p| p) {
            for j in 0..k {
                loop {
                    match self.members[j].conn.recv_timeout(self.cfg.poll) {
                        Ok(Msg::Grad {
                            iter,
                            slot,
                            loss,
                            grad,
                        }) => {
                            self.members[j].last_seen = Instant::now();
                            if iter == round
                                && slot as usize == j
                                && grad.len() == grads[j].len()
                                && pending[j]
                            {
                                grads[j].copy_from_slice(&grad);
                                losses[j] = loss;
                                pending[j] = false;
                            }
                            break;
                        }
                        Ok(Msg::Ping { .. }) => {
                            self.members[j].last_seen = Instant::now();
                            continue;
                        }
                        Ok(_) => continue,
                        Err(WireError::Timeout) => break,
                        Err(_) => {
                            self.evict(algo, j, "connection lost");
                            return RoundStatus::Resized;
                        }
                    }
                }
            }
            let now = Instant::now();
            for j in 0..k {
                if !pending[j] {
                    continue;
                }
                if now.duration_since(self.members[j].last_seen) > self.cfg.heartbeat_timeout {
                    self.evict(algo, j, "heartbeat timeout");
                    return RoundStatus::Resized;
                }
                if now.duration_since(sent_at[j]) > self.cfg.work_resend {
                    if attempts[j] > self.cfg.retry.max_retries {
                        self.evict(algo, j, "work retries exhausted");
                        return RoundStatus::Resized;
                    }
                    std::thread::sleep(self.cfg.retry.backoff_for(attempts[j]));
                    self.counters.retries += 1;
                    self.telemetry.metrics.counter("net.retries").inc();
                    self.emit(ClusterEvent::Resent {
                        iter: round,
                        attempt: attempts[j],
                    });
                    let params = algo.replica(j).to_vec();
                    if self.send_work(j, round, &params, &batches[j]).is_err() {
                        self.evict(algo, j, "work dispatch failed");
                        return RoundStatus::Resized;
                    }
                    attempts[j] += 1;
                    sent_at[j] = Instant::now();
                }
            }
        }
        RoundStatus::Done
    }

    /// One ring round: dispatch work to every member, wait for slot 0's
    /// gathered upload, resend to all with backoff, evict the silent.
    fn ring_round(
        &mut self,
        algo: &mut dyn SyncAlgorithm,
        batches: &[LearnerBatch],
        grads: &mut [Vec<f32>],
        losses: &mut [f32],
    ) -> RoundStatus {
        let k = self.members.len();
        self.round += 1;
        let round = self.round;
        for (j, batch) in batches.iter().enumerate().take(k) {
            let params = algo.replica(j).to_vec();
            if self.send_work(j, round, &params, batch).is_err() {
                self.evict(algo, j, "work dispatch failed");
                return RoundStatus::Resized;
            }
        }
        let mut sent_at = Instant::now();
        let mut attempt = 1u32;
        loop {
            for j in 0..k {
                loop {
                    match self.members[j].conn.recv_timeout(self.cfg.poll) {
                        Ok(Msg::GradSet {
                            iter,
                            losses: ls,
                            grads: gs,
                        }) => {
                            self.members[j].last_seen = Instant::now();
                            let fits = iter == round
                                && j == 0
                                && ls.len() == k
                                && gs.len() == k
                                && gs.iter().all(|g| g.len() == grads[0].len());
                            if fits {
                                for (dst, src) in grads.iter_mut().zip(&gs) {
                                    dst.copy_from_slice(src);
                                }
                                losses.copy_from_slice(&ls);
                                return RoundStatus::Done;
                            }
                            break;
                        }
                        Ok(Msg::Ping { .. }) => {
                            self.members[j].last_seen = Instant::now();
                            continue;
                        }
                        Ok(_) => continue,
                        Err(WireError::Timeout) => break,
                        Err(_) => {
                            self.evict(algo, j, "connection lost");
                            return RoundStatus::Resized;
                        }
                    }
                }
            }
            let now = Instant::now();
            for j in 0..k {
                if now.duration_since(self.members[j].last_seen) > self.cfg.heartbeat_timeout {
                    self.evict(algo, j, "heartbeat timeout");
                    return RoundStatus::Resized;
                }
            }
            if now.duration_since(sent_at) > self.cfg.work_resend {
                assert!(
                    attempt <= self.cfg.retry.max_retries,
                    "ring round {round} stalled with every worker responsive"
                );
                std::thread::sleep(self.cfg.retry.backoff_for(attempt));
                self.counters.retries += 1;
                self.telemetry.metrics.counter("net.retries").inc();
                self.emit(ClusterEvent::Resent {
                    iter: round,
                    attempt,
                });
                // Heal possibly-lost ring config, then replay the round.
                self.repeat_ring_config();
                for (j, batch) in batches.iter().enumerate().take(k) {
                    let params = algo.replica(j).to_vec();
                    if self.send_work(j, round, &params, batch).is_err() {
                        self.evict(algo, j, "work dispatch failed");
                        return RoundStatus::Resized;
                    }
                }
                attempt += 1;
                sent_at = Instant::now();
            }
        }
    }

    /// Blocks until at least one worker is connected (the last-survivor
    /// path: every member died; a replacement must appear).
    fn await_any_worker(&mut self, algo: &mut dyn SyncAlgorithm) {
        let deadline = Instant::now() + self.cfg.join_timeout;
        while self.members.is_empty() {
            if !self.accept_one(algo) {
                assert!(
                    Instant::now() < deadline,
                    "distributed run aborted: every worker died and none \
                     rejoined within {:?}",
                    self.cfg.join_timeout
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        if self.cfg.topology == Topology::Ring {
            self.push_ring_config();
        }
    }

    fn shutdown(&mut self) {
        for member in &self.members {
            let _ = member.conn.send(&Msg::Shutdown);
        }
        for member in &self.members {
            member.conn.shutdown();
        }
    }
}

impl GradientSource for RemoteCluster<'_> {
    fn round(
        &mut self,
        algo: &mut dyn SyncAlgorithm,
        batches: &[LearnerBatch],
        grads: &mut [Vec<f32>],
        losses: &mut [f32],
    ) -> RoundStatus {
        self.started = true;
        if self.members.is_empty() {
            self.await_any_worker(algo);
            return RoundStatus::Resized;
        }
        if self.adopt_joiners(algo) {
            return RoundStatus::Resized;
        }
        debug_assert_eq!(algo.k(), self.members.len(), "one member per slot");
        match self.cfg.topology {
            Topology::Ps => self.ps_round(algo, batches, grads, losses),
            Topology::Ring => self.ring_round(algo, batches, grads, losses),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_enforces_timing_relations() {
        assert!(DistConfig::new(Topology::Ps, 2).validate().is_ok());

        let mut bad = DistConfig::new(Topology::Ps, 0);
        assert!(bad.validate().unwrap_err().contains("workers"));

        bad = DistConfig::new(Topology::Ps, 2);
        bad.heartbeat_interval = bad.heartbeat_timeout;
        assert!(bad.validate().unwrap_err().contains("heartbeat interval"));

        bad = DistConfig::new(Topology::Ring, 2);
        bad.lease_interval = bad.lease_timeout + Duration::from_millis(1);
        assert!(bad.validate().unwrap_err().contains("lease interval"));

        bad = DistConfig::new(Topology::Ps, 2);
        bad.state_every = 0;
        assert!(bad.validate().unwrap_err().contains("state_every"));

        bad = DistConfig::new(Topology::Ps, 2);
        bad.poll = Duration::ZERO;
        assert!(bad.validate().unwrap_err().contains("poll"));
    }

    #[test]
    fn bind_rejects_an_invalid_config() {
        let mut cfg = DistConfig::new(Topology::Ps, 2);
        cfg.heartbeat_interval = cfg.heartbeat_timeout * 2;
        let err = match Coordinator::bind("127.0.0.1:0", cfg, Telemetry::disabled()) {
            Err(err) => err,
            Ok(_) => panic!("validation must gate the bind"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
