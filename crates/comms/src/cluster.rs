//! In-process clusters: threads as processes.
//!
//! [`run_local_cluster`] stands a coordinator and `n` workers up inside
//! one process, each worker on its own thread with its own TCP
//! connections through the loopback interface. Every wire byte, retry,
//! heartbeat, and eviction behaves exactly as it does across real
//! processes — only `SIGKILL` needs the multi-process harness — which
//! makes the full fault matrix testable from a plain `#[test]`.

use crate::coordinator::{Coordinator, DistConfig, DistReport, EventHook};
use crate::standby::{run_standby, StandbyConfig, StandbyOutcome};
use crate::transport::RetryPolicy;
use crate::wire::WireError;
use crate::worker::{run_worker_resilient, run_worker_with_data, WorkerConfig, WorkerOutcome};
use crossbow_checkpoint::codec::fnv1a64;
use crossbow_data::synth::gaussian_mixture;
use crossbow_data::{Dataset, SampleSource};
use crossbow_nn::zoo::mlp;
use crossbow_nn::Network;
use crossbow_sync::{SSgd, SgdConfig, Sma, SmaConfig, SyncAlgorithm, TrainerConfig};
use crossbow_telemetry::Telemetry;
use crossbow_tensor::Rng;
use std::sync::Arc;
use std::time::Duration;

/// FNV-1a/64 over the little-endian bits of `params` — the model
/// fingerprint printed in run reports and compared across processes.
pub fn checksum_params(params: &[f32]) -> u64 {
    let mut bytes = Vec::with_capacity(params.len() * 4);
    for p in params {
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// The standard small demo task: a 6→16→4 MLP on a 4-class Gaussian
/// mixture, split 400 train / 80 test. Coordinator and workers build the
/// same task independently from the same constants.
pub fn demo_task() -> (Network, Dataset, Dataset) {
    let net = mlp(6, &[16], 4);
    let (train_set, test_set) = gaussian_mixture(4, 6, 480, 0.35, 7)
        .split_at(400)
        .expect("demo split is in range");
    (net, train_set, test_set)
}

/// Builds a `k`-learner algorithm by name ("sma" or "ssgd"), initialised
/// from `init_seed`.
///
/// # Panics
/// Panics on an unknown name.
pub fn demo_algo(net: &Network, k: usize, name: &str, init_seed: u64) -> Box<dyn SyncAlgorithm> {
    let init = net.init_params(&mut Rng::new(init_seed));
    match name {
        "sma" => Box::new(Sma::new(init, k, SmaConfig::default())),
        "ssgd" | "s-sgd" => Box::new(SSgd::new(init, k, SgdConfig::paper_default())),
        other => panic!("unknown algorithm {other:?} (expected sma or ssgd)"),
    }
}

/// Options for an in-process cluster on the demo task.
pub struct LocalClusterOptions {
    /// Cluster size at formation.
    pub workers: usize,
    /// Algorithm name ("sma" or "ssgd").
    pub algo: String,
    /// Model initialisation seed.
    pub init_seed: u64,
    /// Trainer configuration (epochs, batch, seed, checkpointing…).
    pub trainer: TrainerConfig,
    /// Cluster configuration (topology, timeouts, fault plan…).
    pub dist: DistConfig,
    /// Extra workers spawned after these delays, joining mid-run with
    /// `rejoin = true` (crash-recovery drills).
    pub late_workers: Vec<Duration>,
    /// Coordinator-side event hook.
    pub events: Option<EventHook>,
    /// A locally held dataset handed to every worker — required when
    /// `dist.index_work` is on (the coordinator ships indices, workers
    /// gather from this source). `None` = payload mode.
    pub worker_data: Option<Arc<dyn SampleSource>>,
}

/// What [`run_local_cluster`] produced.
pub struct LocalClusterReport {
    /// The coordinator's end-of-run report.
    pub report: DistReport,
    /// Per-worker outcomes, initial workers first, then late joiners in
    /// spawn order. Evicted workers surface their terminal [`WireError`].
    pub workers: Vec<Result<WorkerOutcome, WireError>>,
}

/// Runs a full cluster on loopback: the coordinator on this thread, each
/// worker on its own.
///
/// # Panics
/// Panics when the cluster cannot form or a worker thread panics.
pub fn run_local_cluster(opts: LocalClusterOptions) -> LocalClusterReport {
    let telemetry = Telemetry::disabled();
    let mut coordinator = Coordinator::bind("127.0.0.1:0", opts.dist.clone(), telemetry.clone())
        .expect("bind loopback coordinator");
    if let Some(events) = opts.events.clone() {
        coordinator = coordinator.with_events(events);
    }
    let addr = coordinator
        .local_addr()
        .expect("coordinator address")
        .to_string();

    let mut handles = Vec::new();
    for _ in 0..opts.workers {
        handles.push(spawn_worker(
            addr.clone(),
            Duration::ZERO,
            false,
            opts.worker_data.clone(),
        ));
    }
    for delay in &opts.late_workers {
        handles.push(spawn_worker(
            addr.clone(),
            *delay,
            true,
            opts.worker_data.clone(),
        ));
    }

    let (net, train_set, test_set) = demo_task();
    let mut algo = demo_algo(&net, opts.workers, &opts.algo, opts.init_seed);
    let report = coordinator.run(&net, &train_set, &test_set, algo.as_mut(), &opts.trainer);

    let workers = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread panicked"))
        .collect();
    LocalClusterReport { report, workers }
}

/// Options for an in-process primary-crash failover drill on the demo
/// task.
pub struct LocalFailoverOptions {
    /// Cluster size at formation.
    pub workers: usize,
    /// Algorithm name ("sma" or "ssgd").
    pub algo: String,
    /// Model initialisation seed.
    pub init_seed: u64,
    /// The *full* trainer configuration; the primary runs a copy with
    /// `crash_after` set, the standby finishes the run under this one.
    pub trainer: TrainerConfig,
    /// Cluster configuration shared by the primary and the takeover.
    pub dist: DistConfig,
    /// The primary "crashes" (sockets close with no farewell) after this
    /// many iterations.
    pub crash_after: u64,
}

/// What [`run_local_failover`] produced.
pub struct LocalFailoverReport {
    /// The crashed primary's partial report (term 0).
    pub primary: DistReport,
    /// The standby's end-of-run report (term 1) — the one whose curve
    /// must match an undisturbed local run bit-for-bit.
    pub takeover: DistReport,
    /// Per-worker outcomes; each should have served ≥ 2 sessions.
    pub workers: Vec<Result<WorkerOutcome, WireError>>,
}

/// Runs a primary-crash failover drill on loopback: a primary that
/// crash-drops mid-run, one warm standby that takes over from the
/// streamed state, and `workers` resilient workers that re-`Hello` to
/// the standby's advertised address.
///
/// # Panics
/// Panics when any piece fails to come up, the standby does not take
/// over, or a thread panics.
pub fn run_local_failover(opts: LocalFailoverOptions) -> LocalFailoverReport {
    let telemetry = Telemetry::disabled();
    let mut primary_dist = opts.dist.clone();
    primary_dist.crash_drop = true;
    let primary_trainer = opts.trainer.clone().with_crash_after(opts.crash_after);

    let primary = Coordinator::bind("127.0.0.1:0", primary_dist, telemetry.clone())
        .expect("bind loopback primary");
    let primary_addr = primary.local_addr().expect("primary address").to_string();
    let standby_listener =
        std::net::TcpListener::bind("127.0.0.1:0").expect("bind standby listener");
    let standby_addr = standby_listener
        .local_addr()
        .expect("standby address")
        .to_string();

    let standby = {
        let takeover_dist = opts.dist.clone();
        let scfg = StandbyConfig::new(primary_addr.clone());
        let trainer = opts.trainer.clone();
        let algo_name = opts.algo.clone();
        let init_seed = opts.init_seed;
        let telemetry = telemetry.clone();
        std::thread::spawn(move || {
            let (net, train_set, test_set) = demo_task();
            run_standby(
                &net,
                &train_set,
                &test_set,
                &|k| demo_algo(&net, k, &algo_name, init_seed),
                &trainer,
                &takeover_dist,
                &scfg,
                standby_listener,
                telemetry,
                None,
                &|_| {},
            )
        })
    };

    let handles: Vec<_> = (0..opts.workers)
        .map(|i| {
            let primary_addr = primary_addr.clone();
            let standby_addr = standby_addr.clone();
            std::thread::spawn(move || {
                let (net, _, _) = demo_task();
                let mut cfg = WorkerConfig::new(primary_addr);
                cfg.fallbacks = vec![standby_addr];
                cfg.failover_retries = 10;
                cfg.jitter_seed = i as u64 + 1;
                // A short dial budget per session: the dead primary's
                // refused connections should fail over fast.
                cfg.retry = RetryPolicy {
                    max_retries: 2,
                    backoff_base: Duration::from_millis(25),
                    backoff_cap: Duration::from_millis(100),
                };
                run_worker_resilient(&net, &cfg, &Telemetry::disabled(), &|_| {})
            })
        })
        .collect();

    let primary_report = {
        let (net, train_set, test_set) = demo_task();
        let mut algo = demo_algo(&net, opts.workers, &opts.algo, opts.init_seed);
        let report = primary.run(&net, &train_set, &test_set, algo.as_mut(), &primary_trainer);
        // Drop the primary so its listener closes and reconnecting
        // workers are refused (as a killed process's would be) instead
        // of queueing in a backlog nobody accepts.
        drop(primary);
        report
    };
    let takeover = match standby.join().expect("standby thread panicked") {
        Ok(StandbyOutcome::TookOver(report)) => report,
        other => panic!("standby must take over, got {other:?}"),
    };
    let workers = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread panicked"))
        .collect();
    LocalFailoverReport {
        primary: primary_report,
        takeover,
        workers,
    }
}

fn spawn_worker(
    addr: String,
    delay: Duration,
    rejoin: bool,
    data: Option<Arc<dyn SampleSource>>,
) -> std::thread::JoinHandle<Result<WorkerOutcome, WireError>> {
    std::thread::spawn(move || {
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        // Each worker rebuilds the demo network itself, exactly as a
        // separate process would.
        let (net, _, _) = demo_task();
        let mut cfg = WorkerConfig::new(addr);
        cfg.rejoin = rejoin;
        let telemetry = Telemetry::disabled();
        run_worker_with_data(&net, data, &cfg, &telemetry, &|_| {})
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::Topology;
    use crossbow_sync::train;

    #[test]
    fn loopback_ps_matches_local_training_bit_for_bit() {
        let trainer = TrainerConfig::new(8, 2).with_seed(11);
        let out = run_local_cluster(LocalClusterOptions {
            workers: 2,
            algo: "sma".into(),
            init_seed: 3,
            trainer: trainer.clone(),
            dist: DistConfig::new(Topology::Ps, 2),
            late_workers: Vec::new(),
            events: None,
            worker_data: None,
        });
        let (net, train_set, test_set) = demo_task();
        let mut algo = demo_algo(&net, 2, "sma", 3);
        let local = train(&net, &train_set, &test_set, algo.as_mut(), &trainer);
        assert_eq!(
            out.report.curve, local,
            "distributed curve must be bit-identical"
        );
        assert_eq!(
            out.report.counters,
            crate::coordinator::DistCounters::default()
        );
        assert!(out.workers.iter().all(|w| w.is_ok()));
        assert!(out.report.bytes_sent > 0 && out.report.bytes_recv > 0);
    }

    #[test]
    fn loopback_ring_matches_local_training_bit_for_bit() {
        let trainer = TrainerConfig::new(8, 2).with_seed(11);
        let out = run_local_cluster(LocalClusterOptions {
            workers: 3,
            algo: "sma".into(),
            init_seed: 3,
            trainer: trainer.clone(),
            dist: DistConfig::new(Topology::Ring, 3),
            late_workers: Vec::new(),
            events: None,
            worker_data: None,
        });
        let (net, train_set, test_set) = demo_task();
        let mut algo = demo_algo(&net, 3, "sma", 3);
        let local = train(&net, &train_set, &test_set, algo.as_mut(), &trainer);
        assert_eq!(
            out.report.curve, local,
            "ring all-gather must not change the arithmetic"
        );
        assert!(out.workers.iter().all(|w| w.is_ok()));
    }

    #[test]
    fn loopback_index_shipping_matches_local_partitioned_run() {
        use crossbow_data::PartitionPlan;
        let (_, train_set, _) = demo_task();
        let trainer = TrainerConfig::new(8, 2)
            .with_seed(11)
            .with_partition(PartitionPlan::even(train_set.len(), 2));
        let out = run_local_cluster(LocalClusterOptions {
            workers: 2,
            algo: "sma".into(),
            init_seed: 3,
            trainer: trainer.clone(),
            dist: DistConfig::new(Topology::Ps, 2).with_index_work(),
            late_workers: Vec::new(),
            events: None,
            worker_data: Some(Arc::new(train_set)),
        });
        let (net, train_set, test_set) = demo_task();
        let mut algo = demo_algo(&net, 2, "sma", 3);
        let local = train(&net, &train_set, &test_set, algo.as_mut(), &trainer);
        assert_eq!(
            out.report.curve, local,
            "index-shipping must not change the arithmetic"
        );
        assert!(out.workers.iter().all(|w| w.is_ok()));
        // Index mode ships O(batch) indices instead of O(batch × sample)
        // payloads; with 6-float samples the payload saving is visible
        // even on this toy task.
        assert!(out.report.bytes_sent > 0);
    }

    #[test]
    fn primary_crash_fails_over_bit_identically() {
        let trainer = TrainerConfig::new(8, 3).with_seed(11);
        let mut dist = DistConfig::new(Topology::Ps, 2);
        dist.lease_interval = Duration::from_millis(100);
        dist.lease_timeout = Duration::from_millis(400);
        let out = run_local_failover(LocalFailoverOptions {
            workers: 2,
            algo: "sma".into(),
            init_seed: 3,
            trainer: trainer.clone(),
            dist,
            crash_after: 20,
        });
        let (net, train_set, test_set) = demo_task();
        let mut algo = demo_algo(&net, 2, "sma", 3);
        let local = train(&net, &train_set, &test_set, algo.as_mut(), &trainer);
        assert_eq!(
            out.primary.curve.iterations, 20,
            "the primary must die exactly at the scheduled iteration"
        );
        assert_eq!(out.primary.term, 0);
        assert_eq!(out.takeover.term, 1, "one takeover, one term bump");
        assert_eq!(
            out.takeover.curve, local,
            "the takeover must continue the curve bit-identically"
        );
        assert_eq!(
            out.takeover.model_checksum,
            checksum_params(algo.consensus()),
            "the final model must be the undisturbed run's, bit for bit"
        );
        for worker in &out.workers {
            let outcome = worker.as_ref().expect("workers survive the failover");
            assert!(
                outcome.sessions >= 2,
                "every worker must have re-admitted itself, got {} sessions",
                outcome.sessions
            );
        }
    }
}
