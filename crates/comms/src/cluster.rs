//! In-process clusters: threads as processes.
//!
//! [`run_local_cluster`] stands a coordinator and `n` workers up inside
//! one process, each worker on its own thread with its own TCP
//! connections through the loopback interface. Every wire byte, retry,
//! heartbeat, and eviction behaves exactly as it does across real
//! processes — only `SIGKILL` needs the multi-process harness — which
//! makes the full fault matrix testable from a plain `#[test]`.

use crate::coordinator::{Coordinator, DistConfig, DistReport, EventHook};
use crate::wire::WireError;
use crate::worker::{run_worker, WorkerConfig, WorkerOutcome};
use crossbow_checkpoint::codec::fnv1a64;
use crossbow_data::synth::gaussian_mixture;
use crossbow_data::Dataset;
use crossbow_nn::zoo::mlp;
use crossbow_nn::Network;
use crossbow_sync::{SSgd, SgdConfig, Sma, SmaConfig, SyncAlgorithm, TrainerConfig};
use crossbow_telemetry::Telemetry;
use crossbow_tensor::Rng;
use std::time::Duration;

/// FNV-1a/64 over the little-endian bits of `params` — the model
/// fingerprint printed in run reports and compared across processes.
pub fn checksum_params(params: &[f32]) -> u64 {
    let mut bytes = Vec::with_capacity(params.len() * 4);
    for p in params {
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// The standard small demo task: a 6→16→4 MLP on a 4-class Gaussian
/// mixture, split 400 train / 80 test. Coordinator and workers build the
/// same task independently from the same constants.
pub fn demo_task() -> (Network, Dataset, Dataset) {
    let net = mlp(6, &[16], 4);
    let (train_set, test_set) = gaussian_mixture(4, 6, 480, 0.35, 7).split_at(400);
    (net, train_set, test_set)
}

/// Builds a `k`-learner algorithm by name ("sma" or "ssgd"), initialised
/// from `init_seed`.
///
/// # Panics
/// Panics on an unknown name.
pub fn demo_algo(net: &Network, k: usize, name: &str, init_seed: u64) -> Box<dyn SyncAlgorithm> {
    let init = net.init_params(&mut Rng::new(init_seed));
    match name {
        "sma" => Box::new(Sma::new(init, k, SmaConfig::default())),
        "ssgd" | "s-sgd" => Box::new(SSgd::new(init, k, SgdConfig::paper_default())),
        other => panic!("unknown algorithm {other:?} (expected sma or ssgd)"),
    }
}

/// Options for an in-process cluster on the demo task.
pub struct LocalClusterOptions {
    /// Cluster size at formation.
    pub workers: usize,
    /// Algorithm name ("sma" or "ssgd").
    pub algo: String,
    /// Model initialisation seed.
    pub init_seed: u64,
    /// Trainer configuration (epochs, batch, seed, checkpointing…).
    pub trainer: TrainerConfig,
    /// Cluster configuration (topology, timeouts, fault plan…).
    pub dist: DistConfig,
    /// Extra workers spawned after these delays, joining mid-run with
    /// `rejoin = true` (crash-recovery drills).
    pub late_workers: Vec<Duration>,
    /// Coordinator-side event hook.
    pub events: Option<EventHook>,
}

/// What [`run_local_cluster`] produced.
pub struct LocalClusterReport {
    /// The coordinator's end-of-run report.
    pub report: DistReport,
    /// Per-worker outcomes, initial workers first, then late joiners in
    /// spawn order. Evicted workers surface their terminal [`WireError`].
    pub workers: Vec<Result<WorkerOutcome, WireError>>,
}

/// Runs a full cluster on loopback: the coordinator on this thread, each
/// worker on its own.
///
/// # Panics
/// Panics when the cluster cannot form or a worker thread panics.
pub fn run_local_cluster(opts: LocalClusterOptions) -> LocalClusterReport {
    let telemetry = Telemetry::disabled();
    let mut coordinator = Coordinator::bind("127.0.0.1:0", opts.dist.clone(), telemetry.clone())
        .expect("bind loopback coordinator");
    if let Some(events) = opts.events.clone() {
        coordinator = coordinator.with_events(events);
    }
    let addr = coordinator
        .local_addr()
        .expect("coordinator address")
        .to_string();

    let mut handles = Vec::new();
    for _ in 0..opts.workers {
        handles.push(spawn_worker(addr.clone(), Duration::ZERO, false));
    }
    for delay in &opts.late_workers {
        handles.push(spawn_worker(addr.clone(), *delay, true));
    }

    let (net, train_set, test_set) = demo_task();
    let mut algo = demo_algo(&net, opts.workers, &opts.algo, opts.init_seed);
    let report = coordinator.run(&net, &train_set, &test_set, algo.as_mut(), &opts.trainer);

    let workers = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread panicked"))
        .collect();
    LocalClusterReport { report, workers }
}

fn spawn_worker(
    addr: String,
    delay: Duration,
    rejoin: bool,
) -> std::thread::JoinHandle<Result<WorkerOutcome, WireError>> {
    std::thread::spawn(move || {
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        // Each worker rebuilds the demo network itself, exactly as a
        // separate process would.
        let (net, _, _) = demo_task();
        let mut cfg = WorkerConfig::new(addr);
        cfg.rejoin = rejoin;
        let telemetry = Telemetry::disabled();
        run_worker(&net, &cfg, &telemetry, &|_| {})
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::Topology;
    use crossbow_sync::train;

    #[test]
    fn loopback_ps_matches_local_training_bit_for_bit() {
        let trainer = TrainerConfig::new(8, 2).with_seed(11);
        let out = run_local_cluster(LocalClusterOptions {
            workers: 2,
            algo: "sma".into(),
            init_seed: 3,
            trainer: trainer.clone(),
            dist: DistConfig::new(Topology::Ps, 2),
            late_workers: Vec::new(),
            events: None,
        });
        let (net, train_set, test_set) = demo_task();
        let mut algo = demo_algo(&net, 2, "sma", 3);
        let local = train(&net, &train_set, &test_set, algo.as_mut(), &trainer);
        assert_eq!(
            out.report.curve, local,
            "distributed curve must be bit-identical"
        );
        assert_eq!(
            out.report.counters,
            crate::coordinator::DistCounters::default()
        );
        assert!(out.workers.iter().all(|w| w.is_ok()));
        assert!(out.report.bytes_sent > 0 && out.report.bytes_recv > 0);
    }

    #[test]
    fn loopback_ring_matches_local_training_bit_for_bit() {
        let trainer = TrainerConfig::new(8, 2).with_seed(11);
        let out = run_local_cluster(LocalClusterOptions {
            workers: 3,
            algo: "sma".into(),
            init_seed: 3,
            trainer: trainer.clone(),
            dist: DistConfig::new(Topology::Ring, 3),
            late_workers: Vec::new(),
            events: None,
        });
        let (net, train_set, test_set) = demo_task();
        let mut algo = demo_algo(&net, 3, "sma", 3);
        let local = train(&net, &train_set, &test_set, algo.as_mut(), &trainer);
        assert_eq!(
            out.report.curve, local,
            "ring all-gather must not change the arithmetic"
        );
        assert!(out.workers.iter().all(|w| w.is_ok()));
    }
}
