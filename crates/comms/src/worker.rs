//! The worker: a stateless gradient server.
//!
//! A worker connects to the coordinator (with capped-exponential retry),
//! introduces itself, validates the admission state it is handed — the
//! latest durable checkpoint, recovered through exactly the
//! checkpoint-resume path — and then serves rounds: receive `Work`
//! (replica parameters plus a batch), compute the gradient with the same
//! arithmetic as the in-process trainer, and return it. A background
//! thread heartbeats over the same socket so the coordinator can tell a
//! slow worker from a dead one.
//!
//! In ring topology the gradient does not go straight back: workers
//! all-gather their gradient blocks over worker-to-worker TCP links
//! (each block travels `k - 1` hops), and slot 0 uploads the assembled
//! round. Membership changes re-key the ring under a new generation.

use crate::proto::Msg;
use crate::transport::{connect_retry, Conn, MsgSender, RetryPolicy};
use crate::wire::{self, FrameReader, WireError};
use crossbow_checkpoint::TrainingState;
use crossbow_data::SampleSource;
use crossbow_nn::network::Scratch;
use crossbow_nn::Network;
use crossbow_telemetry::Telemetry;
use crossbow_tensor::Tensor;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Worker-side configuration.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Coordinator address.
    pub connect: String,
    /// Heartbeat send interval.
    pub heartbeat_interval: Duration,
    /// Backoff discipline for the initial connect and ring links.
    pub retry: RetryPolicy,
    /// Main-loop receive poll interval.
    pub recv_timeout: Duration,
    /// Abandon a wedged ring all-gather after this long (the
    /// coordinator's resend restarts the round for everyone).
    pub ring_timeout: Duration,
    /// How long to wait for the `Welcome` after sending `Hello` — long
    /// enough to sit in a standby's accept backlog through a takeover.
    pub admit_timeout: Duration,
    /// Announce this join as a crash-recovery rejoin.
    pub rejoin: bool,
    /// Fallback coordinator addresses (standbys, in takeover-priority
    /// order) that [`run_worker_resilient`] rotates through when the
    /// current link dies.
    pub fallbacks: Vec<String>,
    /// How many consecutive *failed* sessions (ended in error without
    /// serving a round) [`run_worker_resilient`] tolerates before it
    /// gives up.
    pub failover_retries: u32,
    /// Seed of the full-jitter reconnect backoff; give each worker a
    /// distinct seed so a herd restarting after a failover decorrelates.
    pub jitter_seed: u64,
}

impl WorkerConfig {
    /// Defaults for a worker dialing `connect`.
    pub fn new(connect: impl Into<String>) -> Self {
        WorkerConfig {
            connect: connect.into(),
            heartbeat_interval: Duration::from_millis(200),
            retry: RetryPolicy::default(),
            recv_timeout: Duration::from_millis(500),
            ring_timeout: Duration::from_secs(2),
            admit_timeout: Duration::from_secs(30),
            rejoin: false,
            fallbacks: Vec::new(),
            failover_retries: 8,
            jitter_seed: 0,
        }
    }
}

/// Worker lifecycle events, surfaced to the embedding process.
#[derive(Clone, Debug)]
pub enum WorkerEvent {
    /// Admission completed.
    Joined {
        /// The slot this worker owns.
        slot: usize,
        /// The run iteration recorded in the admission state.
        iterations: u64,
        /// Whether this process announced itself as a rejoin.
        rejoin: bool,
    },
}

/// What a worker did before shutting down.
#[derive(Clone, Copy, Debug)]
pub struct WorkerOutcome {
    /// The slot owned at admission (the last session's, under
    /// [`run_worker_resilient`]).
    pub slot: usize,
    /// Gradient rounds served (summed over sessions under
    /// [`run_worker_resilient`]).
    pub rounds: u64,
    /// The run iteration recorded in the admission state (non-zero for
    /// a rejoin against a mid-run checkpoint).
    pub joined_at_iteration: u64,
    /// Coordinator sessions this worker served (1 unless the resilient
    /// loop re-admitted it after a link loss or failover).
    pub sessions: u32,
}

/// Ring-link state: one inbound (predecessor) and one outbound
/// (successor) TCP stream, keyed by a membership generation.
struct RingLinks {
    generation: u64,
    slot: usize,
    k: usize,
    next_addr: String,
    pred: Option<(TcpStream, FrameReader)>,
    succ: Option<TcpStream>,
}

impl RingLinks {
    fn new(generation: u64, slot: usize, k: usize, next_addr: String) -> Self {
        RingLinks {
            generation,
            slot,
            k,
            next_addr,
            pred: None,
            succ: None,
        }
    }

    /// Dials the successor lazily, introducing this link's generation
    /// first so a stale peer can reject it.
    fn ensure_succ(&mut self, retry: &RetryPolicy, telemetry: &Telemetry) -> Result<(), WireError> {
        if self.succ.is_some() {
            return Ok(());
        }
        let stream = connect_retry(&self.next_addr, retry, telemetry)?;
        stream.set_nodelay(true).map_err(WireError::Io)?;
        let hello = Msg::RingHello {
            generation: self.generation,
            origin: self.slot as u32,
        };
        let mut stream = stream;
        stream
            .write_all(&wire::frame(&hello.encode()))
            .map_err(wire::map_write_err)?;
        self.succ = Some(stream);
        Ok(())
    }

    /// Writes one frame to the successor; a failed link is dropped so the
    /// next attempt redials.
    fn send_block(&mut self, msg: &Msg) -> Result<(), WireError> {
        let Some(succ) = self.succ.as_mut() else {
            return Err(WireError::Disconnected);
        };
        let res = succ
            .write_all(&wire::frame(&msg.encode()))
            .map_err(wire::map_write_err);
        if res.is_err() {
            self.succ = None;
        }
        res
    }

    /// Accepts a pending predecessor link, validating its generation.
    fn try_accept_pred(&mut self, listener: &TcpListener) {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        if stream.set_nonblocking(false).is_err() || stream.set_nodelay(true).is_err() {
            return;
        }
        if stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .is_err()
        {
            return;
        }
        let mut frames = FrameReader::new();
        let mut stream = stream;
        if let Ok(payload) = frames.read_frame(&mut stream) {
            if let Ok(Msg::RingHello { generation, .. }) = Msg::decode(&payload) {
                if generation == self.generation {
                    self.pred = Some((stream, frames));
                }
            }
        }
    }

    /// Reads one message from the predecessor, accepting the link first
    /// if necessary. Partial frames stay buffered across polls.
    fn recv_block(&mut self, listener: &TcpListener, poll: Duration) -> Result<Msg, WireError> {
        if self.pred.is_none() {
            self.try_accept_pred(listener);
        }
        let Some((stream, frames)) = self.pred.as_mut() else {
            std::thread::sleep(poll.min(Duration::from_millis(20)));
            return Err(WireError::Timeout);
        };
        stream.set_read_timeout(Some(poll)).map_err(WireError::Io)?;
        let payload = frames.read_frame(stream)?;
        Msg::decode(&payload).map_err(|_| WireError::Corrupt("undecodable ring message"))
    }
}

/// All-gathers this round's blocks around the ring. Returns the per-slot
/// `(loss, gradient)` table, or `None` when the exchange wedged (a
/// membership change or lost link) — the coordinator's resend restarts
/// the round.
#[allow(clippy::too_many_arguments)]
fn ring_exchange(
    ring: &mut RingLinks,
    listener: &TcpListener,
    iter: u64,
    my_loss: f32,
    my_grad: &[f32],
    timeout: Duration,
    retry: &RetryPolicy,
    telemetry: &Telemetry,
) -> Option<(Vec<f32>, Vec<Vec<f32>>)> {
    let k = ring.k;
    if k == 1 {
        return Some((vec![my_loss], vec![my_grad.to_vec()]));
    }
    let mut blocks: Vec<Option<(f32, Vec<f32>)>> = vec![None; k];
    blocks[ring.slot] = Some((my_loss, my_grad.to_vec()));
    ring.ensure_succ(retry, telemetry).ok()?;
    ring.send_block(&Msg::Block {
        iter,
        origin: ring.slot as u32,
        loss: my_loss,
        grad: my_grad.to_vec(),
    })
    .ok()?;
    let succ_slot = (ring.slot + 1) % k;
    let deadline = Instant::now() + timeout;
    while blocks.iter().any(Option::is_none) {
        if Instant::now() > deadline {
            return None;
        }
        match ring.recv_block(listener, Duration::from_millis(20)) {
            Ok(Msg::Block {
                iter: i,
                origin,
                loss,
                grad,
            }) if i == iter => {
                let o = origin as usize;
                if o < k && blocks[o].is_none() {
                    // Forward before keeping, unless the next hop is the
                    // block's own origin (it already has it).
                    if o != succ_slot {
                        ring.send_block(&Msg::Block {
                            iter: i,
                            origin,
                            loss,
                            grad: grad.clone(),
                        })
                        .ok()?;
                    }
                    blocks[o] = Some((loss, grad));
                }
            }
            Ok(_) => {}
            Err(WireError::Timeout) => {}
            Err(_) => {
                // Predecessor gone; wait for it to redial or for the
                // deadline to abandon the round.
                ring.pred = None;
            }
        }
    }
    let mut losses = Vec::with_capacity(k);
    let mut grads = Vec::with_capacity(k);
    for block in blocks {
        let (loss, grad) = block.expect("all blocks gathered");
        losses.push(loss);
        grads.push(grad);
    }
    Some((losses, grads))
}

/// Runs one worker to completion: connect, admit, serve gradients until
/// the coordinator says `Shutdown`.
///
/// # Errors
/// [`WireError`] when the coordinator link dies or admission fails.
///
/// # Panics
/// Panics when the admission state disagrees with the local network
/// architecture — serving gradients for a different model corrupts the
/// run, so it must be loud.
pub fn run_worker(
    net: &Network,
    cfg: &WorkerConfig,
    telemetry: &Telemetry,
    on_event: &dyn Fn(WorkerEvent),
) -> Result<WorkerOutcome, WireError> {
    run_worker_with_data(net, None, cfg, telemetry, on_event)
}

/// [`run_worker`] with a locally held dataset: when the coordinator runs
/// shard-partitioned, it ships [`Msg::WorkIdx`] (sample indices) instead
/// of gathered batch payloads, and the worker gathers from `data` — the
/// mmap-backed shard set it opened itself. Workers without local data
/// still serve payload-mode [`Msg::Work`] rounds.
///
/// # Errors
/// As [`run_worker`]; additionally [`WireError::Corrupt`] when index
/// work arrives without local data, when the assigned sample range does
/// not fit the local dataset, or when a gather fails.
///
/// # Panics
/// As [`run_worker`].
pub fn run_worker_with_data(
    net: &Network,
    data: Option<Arc<dyn SampleSource>>,
    cfg: &WorkerConfig,
    telemetry: &Telemetry,
    on_event: &dyn Fn(WorkerEvent),
) -> Result<WorkerOutcome, WireError> {
    let stream = connect_retry(&cfg.connect, &cfg.retry, telemetry)?;
    // The ring listener binds on the interface that reaches the
    // coordinator, so the advertised address works for peers too.
    let local_ip = stream.local_addr().map_err(WireError::Io)?.ip();
    let ring_listener = TcpListener::bind((local_ip, 0)).map_err(WireError::Io)?;
    ring_listener.set_nonblocking(true).map_err(WireError::Io)?;
    let ring_addr = ring_listener
        .local_addr()
        .map_err(WireError::Io)?
        .to_string();

    let mut conn = Conn::new(stream, telemetry.clone()).map_err(WireError::Io)?;
    conn.send(&Msg::Hello {
        rejoin: cfg.rejoin,
        ring_addr,
    })?;

    // Admission: wait for the Welcome, tolerate quiet (a standby queues
    // the Hello and answers only once it has taken over).
    let admit_deadline = Instant::now() + cfg.admit_timeout;
    let (slot, _k, topology, weight_decay, heartbeat_ms, data_range, state) = loop {
        match conn.recv_timeout(cfg.recv_timeout) {
            Ok(Msg::Welcome {
                slot,
                k,
                topology,
                weight_decay,
                heartbeat_ms,
                data_lo,
                data_hi,
                state,
            }) => {
                break (
                    slot as usize,
                    k as usize,
                    topology,
                    weight_decay,
                    heartbeat_ms,
                    (data_lo, data_hi),
                    state,
                )
            }
            Ok(Msg::Shutdown) => return Err(WireError::Disconnected),
            Ok(_) => continue,
            Err(WireError::Timeout) if Instant::now() < admit_deadline => continue,
            Err(WireError::Timeout) => return Err(WireError::Timeout),
            Err(e) => return Err(e),
        }
    };
    let state = TrainingState::decode(&state)
        .map_err(|_| WireError::Corrupt("undecodable admission state"))?;
    // Crash recovery hands the newcomer a checkpoint; it must describe
    // the model this process was started with.
    if !state.algo.center.is_empty() {
        assert_eq!(
            state.algo.center.len(),
            net.param_len(),
            "admission state is for a different model ({} params, local net has {})",
            state.algo.center.len(),
            net.param_len()
        );
    }
    // A data-range assignment only makes sense against a local dataset
    // that actually covers it.
    if data_range.1 > data_range.0 {
        let Some(local) = &data else {
            return Err(WireError::Corrupt(
                "coordinator assigned a data range but no local dataset was opened",
            ));
        };
        if data_range.1 > local.len() as u64 {
            return Err(WireError::Corrupt(
                "assigned data range lies outside the local dataset",
            ));
        }
    }
    let joined_at_iteration = state.iterations;
    on_event(WorkerEvent::Joined {
        slot,
        iterations: joined_at_iteration,
        rejoin: cfg.rejoin,
    });

    // Heartbeats share the socket through the frame-atomic sender. The
    // coordinator's Welcome dictates the interval (keeping the validated
    // interval < eviction-timeout relation cluster-wide); 0 falls back
    // to the worker's own default.
    let hb_interval = if heartbeat_ms > 0 {
        Duration::from_millis(heartbeat_ms)
    } else {
        cfg.heartbeat_interval
    };
    let stop = Arc::new(AtomicBool::new(false));
    let slot_cell = Arc::new(AtomicU32::new(slot as u32));
    let hb = spawn_heartbeat(
        conn.sender(),
        Arc::clone(&stop),
        Arc::clone(&slot_cell),
        hb_interval,
    );

    let result = serve(
        net,
        data.as_deref(),
        cfg,
        telemetry,
        &mut conn,
        &ring_listener,
        topology,
        weight_decay,
        &slot_cell,
    );
    stop.store(true, Ordering::Relaxed);
    let _ = hb.join();
    result.map(|rounds| WorkerOutcome {
        slot,
        rounds,
        joined_at_iteration,
        sessions: 1,
    })
}

/// [`run_worker`] in a failover-surviving loop: when a session ends in a
/// link error, reconnect — rotating through `cfg.connect` and
/// `cfg.fallbacks` — and re-`Hello` as a rejoin, with seeded full-jitter
/// backoff between attempts so a worker herd restarting after a primary
/// crash decorrelates. Returns once a session ends with the
/// coordinator's `Shutdown`; `slot`/`rounds` describe that final
/// session, `sessions` counts every admission attempt.
///
/// # Errors
/// The last session's [`WireError`] once `cfg.failover_retries + 1`
/// consecutive sessions failed without being admitted. A session that
/// was admitted (its `Joined` event fired) refreshes the retry budget
/// and restarts the dial rotation at the primary address.
///
/// # Panics
/// As [`run_worker`].
pub fn run_worker_resilient(
    net: &Network,
    cfg: &WorkerConfig,
    telemetry: &Telemetry,
    on_event: &dyn Fn(WorkerEvent),
) -> Result<WorkerOutcome, WireError> {
    run_worker_resilient_with_data(net, None, cfg, telemetry, on_event)
}

/// [`run_worker_resilient`] with a locally held dataset (see
/// [`run_worker_with_data`]). The same dataset handle is reused across
/// reconnect sessions — remapping nothing on failover.
///
/// # Errors
/// As [`run_worker_resilient`].
///
/// # Panics
/// As [`run_worker`].
pub fn run_worker_resilient_with_data(
    net: &Network,
    data: Option<Arc<dyn SampleSource>>,
    cfg: &WorkerConfig,
    telemetry: &Telemetry,
    on_event: &dyn Fn(WorkerEvent),
) -> Result<WorkerOutcome, WireError> {
    let mut addrs = vec![cfg.connect.clone()];
    addrs.extend(cfg.fallbacks.iter().cloned());
    let mut jitter = cfg.jitter_seed;
    let mut sessions = 0u32;
    let mut failures = 0u32; // consecutive sessions that never joined
    let mut next_addr = 0usize;
    loop {
        let joined = AtomicBool::new(false);
        let tap = |ev: WorkerEvent| {
            if matches!(ev, WorkerEvent::Joined { .. }) {
                joined.store(true, Ordering::Relaxed);
            }
            on_event(ev);
        };
        let mut session_cfg = cfg.clone();
        session_cfg.connect = addrs[next_addr % addrs.len()].clone();
        // Any session after the first is a crash-recovery rejoin.
        session_cfg.rejoin = cfg.rejoin || sessions > 0;
        sessions += 1;
        match run_worker_with_data(net, data.clone(), &session_cfg, telemetry, &tap) {
            Ok(outcome) => {
                telemetry
                    .metrics
                    .counter("net.worker_sessions")
                    .add(u64::from(sessions));
                return Ok(WorkerOutcome {
                    sessions,
                    ..outcome
                });
            }
            Err(e) => {
                if joined.load(Ordering::Relaxed) {
                    // Admitted, then the link died mid-run — the primary
                    // crashed or we were evicted. Fresh budget, dial the
                    // primary address first again.
                    failures = 0;
                    next_addr = 0;
                } else {
                    failures += 1;
                    next_addr += 1;
                    if failures > cfg.failover_retries {
                        return Err(e);
                    }
                }
                telemetry.metrics.counter("net.worker_failovers").inc();
                std::thread::sleep(
                    cfg.retry
                        .jittered_backoff_for(failures.clamp(1, 6), &mut jitter),
                );
            }
        }
    }
}

fn spawn_heartbeat(
    sender: MsgSender,
    stop: Arc<AtomicBool>,
    slot: Arc<AtomicU32>,
    interval: Duration,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            std::thread::sleep(interval);
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let ping = Msg::Ping {
                slot: slot.load(Ordering::Relaxed),
            };
            if sender.send(&ping).is_err() {
                break;
            }
        }
    })
}

/// The round-serving loop. Returns the number of rounds served.
#[allow(clippy::too_many_arguments)]
fn serve(
    net: &Network,
    data: Option<&dyn SampleSource>,
    cfg: &WorkerConfig,
    telemetry: &Telemetry,
    conn: &mut Conn,
    ring_listener: &TcpListener,
    topology: u8,
    weight_decay: f32,
    slot_cell: &AtomicU32,
) -> Result<u64, WireError> {
    let plen = net.param_len();
    let mut grad = vec![0.0f32; plen];
    let mut cached: Option<(usize, Scratch)> = None;
    let mut ring: Option<RingLinks> = None;
    let mut rounds = 0u64;

    // One round's compute + reply, shared by payload (`Work`) and index
    // (`WorkIdx`) modes: exactly the in-process trainer's arithmetic, so
    // the distributed curve is bit-identical to the local one.
    macro_rules! compute_round {
        ($iter:expr, $slot:expr, $params:expr, $images:expr, $labels:expr) => {{
            let (iter, slot, params, images, labels) = ($iter, $slot, $params, $images, $labels);
            slot_cell.store(slot, Ordering::Relaxed);
            let batch = images.shape().dims()[0];
            // Scratch follows the §4.5 memory plan for this batch size
            // and is reused across rounds.
            let scratch = match &mut cached {
                Some((b, scratch)) if *b == batch => scratch,
                _ => {
                    let plan = net.plan(batch);
                    cached = Some((batch, net.scratch_with_plan(&plan)));
                    &mut cached.as_mut().expect("just set").1
                }
            };
            let (loss, _) = net.loss_and_grad(&params, &images, &labels, &mut grad, scratch);
            if weight_decay != 0.0 {
                crossbow_tensor::ops::axpy(weight_decay, &params, &mut grad);
            }
            rounds += 1;
            if topology == 0 {
                conn.send(&Msg::Grad {
                    iter,
                    slot,
                    loss,
                    grad: grad.clone(),
                })?;
            } else if let Some(links) = &mut ring {
                let gathered = ring_exchange(
                    links,
                    ring_listener,
                    iter,
                    loss,
                    &grad,
                    cfg.ring_timeout,
                    &cfg.retry,
                    telemetry,
                );
                if let Some((losses, grads)) = gathered {
                    if links.slot == 0 {
                        conn.send(&Msg::GradSet {
                            iter,
                            losses,
                            grads,
                        })?;
                    }
                }
                // A wedged exchange falls through: the coordinator's
                // resend (or a new Ring config) arrives here.
            }
        }};
    }

    loop {
        match conn.recv_timeout(cfg.recv_timeout) {
            Ok(Msg::Work {
                iter,
                slot,
                params,
                dims,
                images,
                labels,
            }) => {
                if params.len() != plen || dims.is_empty() {
                    return Err(WireError::Corrupt("work does not fit the local model"));
                }
                let dims: Vec<usize> = dims.iter().map(|&d| d as usize).collect();
                let labels: Vec<usize> = labels.iter().map(|&l| l as usize).collect();
                let images = Tensor::from_vec(dims.as_slice(), images);
                compute_round!(iter, slot, params, images, labels);
            }
            Ok(Msg::WorkIdx {
                iter,
                slot,
                params,
                indices,
            }) => {
                if params.len() != plen || indices.is_empty() {
                    return Err(WireError::Corrupt(
                        "index work does not fit the local model",
                    ));
                }
                let Some(local) = data else {
                    return Err(WireError::Corrupt(
                        "index work arrived but no local dataset was opened",
                    ));
                };
                let indices: Vec<usize> = indices.iter().map(|&i| i as usize).collect();
                // The gather is bit-identical to the coordinator's own
                // (the shard format stores f32 bit patterns), which is
                // what keeps index-mode runs on the same curve.
                let (images, labels) = local
                    .gather(&indices)
                    .map_err(|_| WireError::Corrupt("local gather failed for index work"))?;
                compute_round!(iter, slot, params, images, labels);
            }
            Ok(Msg::Ring {
                generation,
                slot,
                k,
                next,
            }) => {
                let stale = ring
                    .as_ref()
                    .is_some_and(|links| generation <= links.generation);
                if !stale {
                    slot_cell.store(slot, Ordering::Relaxed);
                    ring = Some(RingLinks::new(generation, slot as usize, k as usize, next));
                }
            }
            Ok(Msg::Shutdown) => return Ok(rounds),
            Ok(_) => continue,
            Err(WireError::Timeout) => continue,
            Err(e) => return Err(e),
        }
    }
}
