//! The distributed-training message set.
//!
//! Messages are encoded with the checkpoint crate's little-endian codec
//! ([`crossbow_checkpoint::codec`]) — the same serialization that makes
//! checkpoints durable makes them shippable, and the `Welcome` message
//! carries a full encoded `TrainingState` so a rejoining worker recovers
//! through exactly the checkpoint path a restarted coordinator would.

use crossbow_checkpoint::codec::{DecodeError, Reader, Writer};

/// One protocol message. Tags are stable; unknown tags decode to an
/// error rather than a guess.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Worker → coordinator: join (or rejoin) the cluster. `ring_addr` is
    /// where this worker accepts ring-predecessor connections.
    Hello {
        /// True when this process replaces a previously evicted worker.
        rejoin: bool,
        /// The worker's ring listener address (unused in PS topology).
        ring_addr: String,
    },
    /// Coordinator → worker: admission. `state` is an encoded
    /// `TrainingState` — the latest durable checkpoint when one exists,
    /// otherwise a synthesized snapshot of the live run — which the
    /// worker validates before serving gradients.
    Welcome {
        /// The learner slot this worker now owns.
        slot: u32,
        /// Current cluster size.
        k: u32,
        /// 0 = parameter server, 1 = ring.
        topology: u8,
        /// Weight decay every gradient must include.
        weight_decay: f32,
        /// Heartbeat interval the worker must ping at, in milliseconds
        /// (0 = keep the worker's own default). Handing the interval out
        /// at admission keeps it coordinator-driven, so the validated
        /// `interval < eviction timeout` relation holds cluster-wide.
        heartbeat_ms: u64,
        /// Start of the global sample range assigned to this slot when
        /// the run is shard-partitioned (`data_lo == data_hi` = no
        /// assignment: batches arrive by payload, not by index). Ranges
        /// follow the slot, so eviction/rejoin rebalances data exactly
        /// like replicas.
        data_lo: u64,
        /// One past the end of the assigned sample range.
        data_hi: u64,
        /// Encoded `crossbow_checkpoint::TrainingState`.
        state: Vec<u8>,
    },
    /// Coordinator → worker: compute one gradient.
    Work {
        /// Round id; echoed back so stale replies are discardable.
        iter: u64,
        /// The slot this work is for.
        slot: u32,
        /// The slot's replica parameters.
        params: Vec<f32>,
        /// Batch tensor dimensions.
        dims: Vec<u64>,
        /// Batch tensor data.
        images: Vec<f32>,
        /// Batch labels.
        labels: Vec<u64>,
    },
    /// Coordinator → worker: compute one gradient from *locally held*
    /// data. The index-shipping twin of [`Msg::Work`]: the worker opened
    /// its own copy of the sharded dataset, so the coordinator sends the
    /// drawn sample indices instead of the gathered payload — same
    /// round, a fraction of the bytes on the wire.
    WorkIdx {
        /// Round id; echoed back so stale replies are discardable.
        iter: u64,
        /// The slot this work is for.
        slot: u32,
        /// The slot's replica parameters.
        params: Vec<f32>,
        /// Global dataset indices of the batch samples.
        indices: Vec<u64>,
    },
    /// Worker → coordinator (PS): one finished gradient.
    Grad {
        /// Echo of [`Msg::Work`]'s round id.
        iter: u64,
        /// Echo of the slot.
        slot: u32,
        /// Mean training loss over the batch.
        loss: f32,
        /// The gradient, weight decay included.
        grad: Vec<f32>,
    },
    /// Worker → coordinator (ring): the full gathered round, uploaded by
    /// slot 0 after the all-gather completes.
    GradSet {
        /// Echo of the round id.
        iter: u64,
        /// Per-slot losses, slot order.
        losses: Vec<f32>,
        /// Per-slot gradients, slot order.
        grads: Vec<Vec<f32>>,
    },
    /// Worker → coordinator: heartbeat.
    Ping {
        /// The sender's slot.
        slot: u32,
    },
    /// Coordinator → worker: (re)configure ring links after membership
    /// changes. Stale generations are ignored.
    Ring {
        /// Monotonic ring-membership generation.
        generation: u64,
        /// The worker's (possibly reassigned) slot.
        slot: u32,
        /// New cluster size.
        k: u32,
        /// Address of the worker's ring successor.
        next: String,
    },
    /// Worker → worker: ring-link handshake, validating the generation
    /// so a stale predecessor cannot feed an old ring.
    RingHello {
        /// The sender's membership generation.
        generation: u64,
        /// The sender's slot.
        origin: u32,
    },
    /// Worker → worker: one all-gather block travelling around the ring.
    Block {
        /// Round id; blocks from other rounds are discarded.
        iter: u64,
        /// The slot whose gradient this is.
        origin: u32,
        /// That slot's batch loss.
        loss: f32,
        /// That slot's gradient.
        grad: Vec<f32>,
    },
    /// Coordinator → worker: the run is over; exit cleanly.
    Shutdown,
    /// Primary ⇄ standby lease traffic. Standby → primary: register as a
    /// warm standby (sent as the first message on the connection, in
    /// place of `Hello`; `priority` is the standby's takeover rank, lower
    /// first). Primary → standby: periodic lease renewal carrying the
    /// primary's term. Terms are failover generations: a standby only
    /// ever takes over at `term + 1`, so a deposed primary's stale
    /// messages are recognisably old — the same generation-stamping the
    /// ring reconfiguration uses.
    Lease {
        /// The sender's failover term (standbys echo the last one seen).
        term: u64,
        /// Takeover priority of the registering standby (0 from primary).
        priority: u32,
    },
    /// Primary → standby: one replicated state update. `state` is an
    /// encoded `TrainingState` — the same bytes a durable checkpoint
    /// would hold — captured post-step, so resuming from the latest one
    /// replays the rest of the run bit-identically.
    State {
        /// The primary's term.
        term: u64,
        /// Monotonic update sequence within the term.
        seq: u64,
        /// Encoded `crossbow_checkpoint::TrainingState`.
        state: Vec<u8>,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_WELCOME: u8 = 2;
const TAG_WORK: u8 = 3;
const TAG_GRAD: u8 = 4;
const TAG_GRADSET: u8 = 5;
const TAG_PING: u8 = 6;
const TAG_RING: u8 = 7;
const TAG_RINGHELLO: u8 = 8;
const TAG_BLOCK: u8 = 9;
const TAG_SHUTDOWN: u8 = 10;
const TAG_LEASE: u8 = 11;
const TAG_STATE: u8 = 12;
const TAG_WORKIDX: u8 = 13;

fn write_u64s(w: &mut Writer, v: &[u64]) {
    w.u64(v.len() as u64);
    for &x in v {
        w.u64(x);
    }
}

fn read_u64s(r: &mut Reader<'_>) -> Result<Vec<u64>, DecodeError> {
    let n = r.u64()? as usize;
    (0..n).map(|_| r.u64()).collect()
}

impl Msg {
    /// A short name for logs and spans.
    pub fn name(&self) -> &'static str {
        match self {
            Msg::Hello { .. } => "hello",
            Msg::Welcome { .. } => "welcome",
            Msg::Work { .. } => "work",
            Msg::WorkIdx { .. } => "work-idx",
            Msg::Grad { .. } => "grad",
            Msg::GradSet { .. } => "grad-set",
            Msg::Ping { .. } => "ping",
            Msg::Ring { .. } => "ring",
            Msg::RingHello { .. } => "ring-hello",
            Msg::Block { .. } => "block",
            Msg::Shutdown => "shutdown",
            Msg::Lease { .. } => "lease",
            Msg::State { .. } => "state",
        }
    }

    /// Encodes the message as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Msg::Hello { rejoin, ring_addr } => {
                w.u8(TAG_HELLO);
                w.u8(u8::from(*rejoin));
                w.str(ring_addr);
            }
            Msg::Welcome {
                slot,
                k,
                topology,
                weight_decay,
                heartbeat_ms,
                data_lo,
                data_hi,
                state,
            } => {
                w.u8(TAG_WELCOME);
                w.u32(*slot);
                w.u32(*k);
                w.u8(*topology);
                w.f32(*weight_decay);
                w.u64(*heartbeat_ms);
                w.u64(*data_lo);
                w.u64(*data_hi);
                w.bytes(state);
            }
            Msg::Work {
                iter,
                slot,
                params,
                dims,
                images,
                labels,
            } => {
                w.u8(TAG_WORK);
                w.u64(*iter);
                w.u32(*slot);
                w.f32_slice(params);
                write_u64s(&mut w, dims);
                w.f32_slice(images);
                write_u64s(&mut w, labels);
            }
            Msg::WorkIdx {
                iter,
                slot,
                params,
                indices,
            } => {
                w.u8(TAG_WORKIDX);
                w.u64(*iter);
                w.u32(*slot);
                w.f32_slice(params);
                write_u64s(&mut w, indices);
            }
            Msg::Grad {
                iter,
                slot,
                loss,
                grad,
            } => {
                w.u8(TAG_GRAD);
                w.u64(*iter);
                w.u32(*slot);
                w.f32(*loss);
                w.f32_slice(grad);
            }
            Msg::GradSet {
                iter,
                losses,
                grads,
            } => {
                w.u8(TAG_GRADSET);
                w.u64(*iter);
                w.f32_slice(losses);
                w.f32_slices(grads);
            }
            Msg::Ping { slot } => {
                w.u8(TAG_PING);
                w.u32(*slot);
            }
            Msg::Ring {
                generation,
                slot,
                k,
                next,
            } => {
                w.u8(TAG_RING);
                w.u64(*generation);
                w.u32(*slot);
                w.u32(*k);
                w.str(next);
            }
            Msg::RingHello { generation, origin } => {
                w.u8(TAG_RINGHELLO);
                w.u64(*generation);
                w.u32(*origin);
            }
            Msg::Block {
                iter,
                origin,
                loss,
                grad,
            } => {
                w.u8(TAG_BLOCK);
                w.u64(*iter);
                w.u32(*origin);
                w.f32(*loss);
                w.f32_slice(grad);
            }
            Msg::Shutdown => {
                w.u8(TAG_SHUTDOWN);
            }
            Msg::Lease { term, priority } => {
                w.u8(TAG_LEASE);
                w.u64(*term);
                w.u32(*priority);
            }
            Msg::State { term, seq, state } => {
                w.u8(TAG_STATE);
                w.u64(*term);
                w.u64(*seq);
                w.bytes(state);
            }
        }
        w.into_bytes()
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    /// [`DecodeError`] on an unknown tag, short payload, or trailing
    /// bytes — a framed-but-wrong message is corruption, not a request.
    pub fn decode(bytes: &[u8]) -> Result<Msg, DecodeError> {
        let mut r = Reader::new(bytes);
        let msg = match r.u8()? {
            TAG_HELLO => Msg::Hello {
                rejoin: r.u8()? != 0,
                ring_addr: r.str()?,
            },
            TAG_WELCOME => Msg::Welcome {
                slot: r.u32()?,
                k: r.u32()?,
                topology: r.u8()?,
                weight_decay: r.f32()?,
                heartbeat_ms: r.u64()?,
                data_lo: r.u64()?,
                data_hi: r.u64()?,
                state: r.bytes()?,
            },
            TAG_WORK => Msg::Work {
                iter: r.u64()?,
                slot: r.u32()?,
                params: r.f32_vec()?,
                dims: read_u64s(&mut r)?,
                images: r.f32_vec()?,
                labels: read_u64s(&mut r)?,
            },
            TAG_WORKIDX => Msg::WorkIdx {
                iter: r.u64()?,
                slot: r.u32()?,
                params: r.f32_vec()?,
                indices: read_u64s(&mut r)?,
            },
            TAG_GRAD => Msg::Grad {
                iter: r.u64()?,
                slot: r.u32()?,
                loss: r.f32()?,
                grad: r.f32_vec()?,
            },
            TAG_GRADSET => Msg::GradSet {
                iter: r.u64()?,
                losses: r.f32_vec()?,
                grads: r.f32_vecs()?,
            },
            TAG_PING => Msg::Ping { slot: r.u32()? },
            TAG_RING => Msg::Ring {
                generation: r.u64()?,
                slot: r.u32()?,
                k: r.u32()?,
                next: r.str()?,
            },
            TAG_RINGHELLO => Msg::RingHello {
                generation: r.u64()?,
                origin: r.u32()?,
            },
            TAG_BLOCK => Msg::Block {
                iter: r.u64()?,
                origin: r.u32()?,
                loss: r.f32()?,
                grad: r.f32_vec()?,
            },
            TAG_SHUTDOWN => Msg::Shutdown,
            TAG_LEASE => Msg::Lease {
                term: r.u64()?,
                priority: r.u32()?,
            },
            TAG_STATE => Msg::State {
                term: r.u64()?,
                seq: r.u64()?,
                state: r.bytes()?,
            },
            _ => return Err(DecodeError("unknown message tag")),
        };
        if !r.is_empty() {
            return Err(DecodeError("trailing bytes in message"));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &Msg) {
        let bytes = msg.encode();
        let back = Msg::decode(&bytes).expect("decodes");
        // Re-encode rather than compare values: bit-exact for any float
        // payload, NaN included.
        assert_eq!(back.encode(), bytes, "{} round-trips", msg.name());
    }

    #[test]
    fn every_message_round_trips() {
        round_trip(&Msg::Hello {
            rejoin: true,
            ring_addr: "127.0.0.1:4791".into(),
        });
        round_trip(&Msg::Welcome {
            slot: 3,
            k: 4,
            topology: 1,
            weight_decay: 1e-4,
            heartbeat_ms: 200,
            data_lo: 120,
            data_hi: 240,
            state: vec![0xCB, 0x00, 0xBF],
        });
        round_trip(&Msg::Work {
            iter: 42,
            slot: 1,
            params: vec![-0.5, f32::MIN_POSITIVE, 3.25],
            dims: vec![2, 3, 1, 5],
            images: vec![0.25; 30],
            labels: vec![0, 3, 1],
        });
        round_trip(&Msg::WorkIdx {
            iter: 43,
            slot: 2,
            params: vec![0.5, -1.25],
            indices: vec![120, 197, 133],
        });
        round_trip(&Msg::Grad {
            iter: 42,
            slot: 1,
            loss: 0.693,
            grad: vec![f32::NAN, -0.0, 1.0],
        });
        round_trip(&Msg::GradSet {
            iter: 7,
            losses: vec![0.1, 0.2],
            grads: vec![vec![1.0; 5], vec![-1.0; 5]],
        });
        round_trip(&Msg::Ping { slot: 9 });
        round_trip(&Msg::Ring {
            generation: 2,
            slot: 0,
            k: 3,
            next: "127.0.0.1:9".into(),
        });
        round_trip(&Msg::RingHello {
            generation: 2,
            origin: 1,
        });
        round_trip(&Msg::Block {
            iter: 7,
            origin: 2,
            loss: 1.5,
            grad: vec![2.0; 4],
        });
        round_trip(&Msg::Shutdown);
        round_trip(&Msg::Lease {
            term: 3,
            priority: 1,
        });
        round_trip(&Msg::State {
            term: 3,
            seq: 512,
            state: vec![0xAB; 9],
        });
    }

    #[test]
    fn truncated_payloads_error_instead_of_panicking() {
        let bytes = Msg::Work {
            iter: 1,
            slot: 0,
            params: vec![1.0; 8],
            dims: vec![2, 4],
            images: vec![0.5; 8],
            labels: vec![1, 0],
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(
                Msg::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Msg::Ping { slot: 1 }.encode();
        bytes.push(0);
        assert_eq!(
            Msg::decode(&bytes),
            Err(DecodeError("trailing bytes in message"))
        );
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(Msg::decode(&[0xEE]).is_err());
    }
}
