//! The warm standby: a coordinator-in-waiting.
//!
//! A standby binds its own listener (advertised to workers as a fallback
//! address), registers with the primary by sending a `Lease`
//! introduction instead of a `Hello`, and then *follows*: it keeps the
//! latest `State` update the primary streams (the same post-step
//! [`TrainingState`] a durable checkpoint would persist) and watches the
//! lease renewals. When leases stop — silence past the lease timeout, or
//! the abrupt FIN a killed primary leaves — it runs a deterministic
//! election: wait out a priority-proportional stagger, defer to any
//! higher-priority peer that answers a re-registration probe, and
//! otherwise take over at `term + 1` by running
//! [`Coordinator::run_from_state`] on its own listener. Because the
//! streamed state is an exact post-step snapshot and workers are
//! stateless, a takeover with no in-flight loss continues the curve
//! bit-identically.

use crate::coordinator::{Coordinator, DistConfig, DistReport, EventHook};
use crate::proto::Msg;
use crate::transport::{connect_retry, Conn, RetryPolicy};
use crate::wire::WireError;
use crossbow_checkpoint::TrainingState;
use crossbow_data::Dataset;
use crossbow_nn::Network;
use crossbow_sync::{SyncAlgorithm, TrainerConfig};
use crossbow_telemetry::Telemetry;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Standby-side configuration.
#[derive(Clone, Debug)]
pub struct StandbyConfig {
    /// The primary coordinator's address.
    pub connect: String,
    /// Takeover priority: lower values take over first. Ties are broken
    /// by whoever wins the workers, so give every standby a distinct
    /// priority.
    pub priority: u32,
    /// Advertised addresses of *higher-priority* standbys. During an
    /// election these are probed (oldest first) before self-promotion;
    /// one that answers becomes this standby's new primary.
    pub peers: Vec<String>,
    /// Dial/backoff discipline for registration and probes.
    pub retry: RetryPolicy,
    /// Poll granularity on the follow link.
    pub recv_timeout: Duration,
    /// How long to wait for the primary's `Lease` ack at registration.
    pub register_timeout: Duration,
    /// Extra election delay per priority unit, so standbys self-promote
    /// in priority order instead of racing.
    pub election_stagger: Duration,
    /// Per-peer ack window when probing during an election.
    pub probe_timeout: Duration,
}

impl StandbyConfig {
    /// Defaults for a standby following the primary at `connect`.
    pub fn new(connect: impl Into<String>) -> Self {
        StandbyConfig {
            connect: connect.into(),
            priority: 1,
            peers: Vec::new(),
            retry: RetryPolicy::default(),
            recv_timeout: Duration::from_millis(100),
            register_timeout: Duration::from_secs(5),
            election_stagger: Duration::from_millis(500),
            probe_timeout: Duration::from_millis(500),
        }
    }
}

/// Standby lifecycle events, surfaced to the embedding process (the CLI
/// prints these as progress markers).
#[derive(Clone, Debug)]
pub enum StandbyEvent {
    /// Registered with a primary.
    Registered {
        /// The primary's current term.
        term: u64,
    },
    /// Received a state update.
    State {
        /// The term the update was produced under.
        term: u64,
        /// The update's sequence number.
        seq: u64,
        /// Trainer iterations captured in the update.
        iterations: u64,
    },
    /// Deferred to a higher-priority peer during an election.
    Deferred {
        /// The peer that answered the probe.
        peer: String,
        /// Its term.
        term: u64,
    },
    /// Won the election; promoting to primary at this term.
    TakingOver {
        /// The new term (last observed + 1).
        term: u64,
    },
}

/// How a standby's watch ended.
#[derive(Debug)]
pub enum StandbyOutcome {
    /// The primary finished the run and said goodbye; nothing to do.
    PrimaryFinished,
    /// This standby took over and drove the run to completion.
    TookOver(DistReport),
}

/// What the follow loop observed before it ended.
struct Followed {
    term_seen: u64,
    last_state: Option<Vec<u8>>,
    finished: bool,
}

/// Registers with the coordinator at `addr` and returns the follow link
/// plus the acked term.
fn register(
    addr: &str,
    term_seen: u64,
    scfg: &StandbyConfig,
    telemetry: &Telemetry,
    deadline: Duration,
) -> Result<(Conn, u64), WireError> {
    let stream = connect_retry(addr, &scfg.retry, telemetry)?;
    let mut conn = Conn::new(stream, telemetry.clone()).map_err(WireError::Io)?;
    conn.send(&Msg::Lease {
        term: term_seen,
        priority: scfg.priority,
    })?;
    let until = Instant::now() + deadline;
    loop {
        match conn.recv_timeout(scfg.recv_timeout.min(deadline)) {
            Ok(Msg::Lease { term, .. }) => return Ok((conn, term)),
            Ok(Msg::Shutdown) => return Err(WireError::Disconnected),
            Ok(_) => continue,
            Err(WireError::Timeout) if Instant::now() < until => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Follows one primary until it finishes, dies, or goes silent past the
/// lease timeout.
fn follow(
    conn: &mut Conn,
    mut term_seen: u64,
    mut last_state: Option<Vec<u8>>,
    lease_timeout: Duration,
    scfg: &StandbyConfig,
    on_event: &dyn Fn(StandbyEvent),
) -> Followed {
    let mut last_signal = Instant::now();
    loop {
        match conn.recv_timeout(scfg.recv_timeout) {
            Ok(Msg::Lease { term, .. }) => {
                term_seen = term_seen.max(term);
                last_signal = Instant::now();
            }
            Ok(Msg::State { term, seq, state }) => {
                // A stale-term update (an old primary flushing its last
                // write) must never overwrite a newer term's state.
                if term >= term_seen {
                    term_seen = term;
                    let iterations = TrainingState::decode(&state)
                        .map(|s| s.iterations)
                        .unwrap_or(0);
                    on_event(StandbyEvent::State {
                        term,
                        seq,
                        iterations,
                    });
                    last_state = Some(state);
                }
                last_signal = Instant::now();
            }
            Ok(Msg::Shutdown) => {
                return Followed {
                    term_seen,
                    last_state,
                    finished: true,
                }
            }
            Ok(_) => last_signal = Instant::now(),
            Err(WireError::Timeout) => {
                if last_signal.elapsed() > lease_timeout {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    Followed {
        term_seen,
        last_state,
        finished: false,
    }
}

/// Probes a peer during an election: dial once (no retry — a dead peer
/// must not stall the election), re-introduce, and wait briefly for the
/// `Lease` ack.
fn probe(
    addr: &str,
    term_seen: u64,
    scfg: &StandbyConfig,
    telemetry: &Telemetry,
) -> Option<(Conn, u64)> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut conn = Conn::new(stream, telemetry.clone()).ok()?;
    conn.send(&Msg::Lease {
        term: term_seen,
        priority: scfg.priority,
    })
    .ok()?;
    let until = Instant::now() + scfg.probe_timeout;
    loop {
        match conn.recv_timeout(scfg.probe_timeout) {
            Ok(Msg::Lease { term, .. }) => return Some((conn, term)),
            Ok(Msg::Shutdown) => return None,
            Ok(_) if Instant::now() < until => continue,
            _ => return None,
        }
    }
}

/// Runs a warm standby to completion: register, follow, and — if the
/// primary dies — win or defer the election. On takeover the standby
/// promotes its own `listener` into a [`Coordinator`] at the next term,
/// rebuilds the algorithm at the replicated state's learner count via
/// `algo_factory`, and drives the rest of the run.
///
/// `dist` supplies the takeover-side cluster configuration; its
/// `lease_timeout` also sets how long this standby tolerates lease
/// silence (keep it identical across the fleet).
///
/// # Errors
/// A [`WireError`] when registration with the primary fails, or an `Io`
/// wrap of a takeover bind failure.
///
/// # Panics
/// On takeover, as [`Coordinator::run_from_state`] — notably when the
/// replicated state does not fit the configured run.
#[allow(clippy::too_many_arguments)] // the coordinator run surface, plus standby identity
pub fn run_standby(
    net: &Network,
    train_set: &Dataset,
    test_set: &Dataset,
    algo_factory: &dyn Fn(usize) -> Box<dyn SyncAlgorithm>,
    tcfg: &TrainerConfig,
    dist: &DistConfig,
    scfg: &StandbyConfig,
    listener: TcpListener,
    telemetry: Telemetry,
    events: Option<EventHook>,
    on_event: &dyn Fn(StandbyEvent),
) -> Result<StandbyOutcome, WireError> {
    let (mut conn, mut term_seen) = register(
        &scfg.connect,
        dist.term,
        scfg,
        &telemetry,
        scfg.register_timeout,
    )?;
    on_event(StandbyEvent::Registered { term: term_seen });
    let mut last_state: Option<Vec<u8>> = None;
    loop {
        let followed = follow(
            &mut conn,
            term_seen,
            last_state.take(),
            dist.lease_timeout,
            scfg,
            on_event,
        );
        term_seen = followed.term_seen;
        last_state = followed.last_state;
        if followed.finished {
            return Ok(StandbyOutcome::PrimaryFinished);
        }
        // Election. Stagger by priority so the fleet self-promotes in
        // order, then give way to any higher-priority peer still alive.
        conn.shutdown();
        std::thread::sleep(scfg.election_stagger * scfg.priority.saturating_sub(1));
        let mut deferred = None;
        for peer in &scfg.peers {
            if let Some((peer_conn, term)) = probe(peer, term_seen, scfg, &telemetry) {
                on_event(StandbyEvent::Deferred {
                    peer: peer.clone(),
                    term,
                });
                deferred = Some((peer_conn, term));
                break;
            }
        }
        if let Some((peer_conn, term)) = deferred {
            conn = peer_conn;
            term_seen = term_seen.max(term);
            continue;
        }
        // Won: promote at the next term and finish the run ourselves.
        let term = term_seen + 1;
        on_event(StandbyEvent::TakingOver { term });
        telemetry.metrics.counter("net.takeovers").inc();
        let state = last_state
            .as_deref()
            .map(|bytes| TrainingState::decode(bytes).expect("replicated state must decode"));
        // The replicated state's replica count is the cluster size the
        // old primary last ran with — honor it even if it drifted from
        // the configured formation size through evictions or rejoins.
        let k = state
            .as_ref()
            .map(|s| s.algo.replicas.len())
            .filter(|k| *k > 0)
            .unwrap_or(dist.workers);
        let mut cfg = dist.clone();
        cfg.term = term;
        cfg.workers = k;
        let mut coordinator =
            Coordinator::from_listener(listener, cfg, telemetry).map_err(WireError::Io)?;
        if let Some(hook) = events {
            coordinator = coordinator.with_events(hook);
        }
        let mut algo = algo_factory(k);
        let report =
            coordinator.run_from_state(net, train_set, test_set, algo.as_mut(), tcfg, state);
        return Ok(StandbyOutcome::TookOver(report));
    }
}
