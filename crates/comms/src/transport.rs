//! Message-level transport: retry policy, connections, heartbeat senders.
//!
//! A [`Conn`] wraps one TCP stream with framing, fault injection, and
//! telemetry (`net.bytes_sent` / `net.bytes_recv` counters, `net-send` /
//! `net-recv` spans). The write half lives behind a mutex in a cloneable
//! [`MsgSender`], so a worker's heartbeat thread and its main loop share
//! one socket without interleaving frames.

use crate::fault::{FaultAction, FaultInjector};
use crate::proto::Msg;
use crate::wire::{self, FrameReader, WireError};
use crossbow_telemetry::{Shard, SpanKind, Telemetry, HOST_DEVICE};
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Capped-exponential backoff for sends, connects, and work re-issues —
/// the socket-scale mirror of the GPU simulator's retry discipline.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Give up (and escalate to eviction/error) after this many retries.
    pub max_retries: u32,
    /// First-retry backoff; doubles every attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (1-based): `base * 2^(attempt-1)`,
    /// capped.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        self.backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.backoff_cap)
    }

    /// Full-jitter backoff: a uniform draw in `[0, backoff_for(attempt)]`
    /// from the seeded SplitMix64 stream behind `state`. Workers that all
    /// lost the same primary restart with decorrelated sleeps instead of
    /// hammering the standby in lockstep — and a fixed seed keeps the
    /// schedule replayable, like every other fault-path decision here.
    pub fn jittered_backoff_for(&self, attempt: u32, state: &mut u64) -> Duration {
        let cap = self.backoff_for(attempt);
        if cap.is_zero() {
            return cap;
        }
        // 53 high bits → a uniform fraction in [0, 1).
        let frac = (crate::fault::splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
        cap.mul_f64(frac)
    }
}

/// The mutex-guarded write half of a connection.
struct SendHalf {
    stream: TcpStream,
    injector: Option<FaultInjector>,
    shard: Shard,
}

/// A cloneable handle that writes whole frames under the connection's
/// write lock. Heartbeat threads hold one of these.
#[derive(Clone)]
pub struct MsgSender {
    half: Arc<Mutex<SendHalf>>,
    telemetry: Telemetry,
}

impl MsgSender {
    /// Encodes, applies the fault plan, and writes one frame.
    ///
    /// # Errors
    /// [`WireError::Disconnected`] when the peer (or an injected
    /// disconnect) killed the link; [`WireError::Io`] otherwise.
    pub fn send(&self, msg: &Msg) -> Result<(), WireError> {
        let bytes = wire::frame(&msg.encode());
        let mut half = self.half.lock().unwrap_or_else(PoisonError::into_inner);
        let action = half
            .injector
            .as_mut()
            .map_or(FaultAction::Deliver, FaultInjector::on_send);
        match action {
            FaultAction::Deliver => {}
            FaultAction::Drop => {
                // The frame vanishes on the wire: the caller believes it
                // was sent, exactly like a lost packet past the kernel.
                self.telemetry.metrics.counter("net.faults_injected").inc();
                return Ok(());
            }
            FaultAction::Delay(d) => {
                self.telemetry.metrics.counter("net.faults_injected").inc();
                std::thread::sleep(d);
            }
            FaultAction::Disconnect => {
                self.telemetry.metrics.counter("net.faults_injected").inc();
                let _ = half.stream.shutdown(Shutdown::Both);
                return Err(WireError::Disconnected);
            }
        }
        let t = half.shard.now_ns();
        half.stream.write_all(&bytes).map_err(wire::map_write_err)?;
        half.shard
            .close(SpanKind::NetSend, "net-send", t, HOST_DEVICE, 0, None);
        self.telemetry
            .metrics
            .counter("net.bytes_sent")
            .add(bytes.len() as u64);
        Ok(())
    }
}

/// One framed, telemetered TCP connection.
pub struct Conn {
    read: TcpStream,
    frames: FrameReader,
    send: Arc<Mutex<SendHalf>>,
    telemetry: Telemetry,
    shard: Shard,
    read_timeout: Option<Duration>,
}

impl Conn {
    /// Wraps `stream`. `TCP_NODELAY` is set: frames are latency-bound
    /// control traffic, not bulk throughput.
    ///
    /// # Errors
    /// Any socket-option or clone failure.
    pub fn new(stream: TcpStream, telemetry: Telemetry) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        let write = stream.try_clone()?;
        let shard = telemetry.recorder.shard();
        let send_shard = telemetry.recorder.shard();
        Ok(Conn {
            read: stream,
            frames: FrameReader::new(),
            send: Arc::new(Mutex::new(SendHalf {
                stream: write,
                injector: None,
                shard: send_shard,
            })),
            telemetry,
            shard,
            read_timeout: None,
        })
    }

    /// Attaches a fault injector to the send path (builder style).
    pub fn with_injector(self, injector: FaultInjector) -> Self {
        self.send
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .injector = Some(injector);
        self
    }

    /// A cloneable handle to the write half.
    pub fn sender(&self) -> MsgSender {
        MsgSender {
            half: Arc::clone(&self.send),
            telemetry: self.telemetry.clone(),
        }
    }

    /// Sends one message (see [`MsgSender::send`]).
    ///
    /// # Errors
    /// As [`MsgSender::send`].
    pub fn send(&self, msg: &Msg) -> Result<(), WireError> {
        self.sender().send(msg)
    }

    /// Receives one message, waiting at most `timeout`.
    ///
    /// # Errors
    /// [`WireError::Timeout`] when no complete frame arrived (resumable);
    /// [`WireError::Disconnected`] on EOF/reset; [`WireError::Corrupt`]
    /// when framing or decoding failed (the connection is unusable).
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Msg, WireError> {
        if self.read_timeout != Some(timeout) {
            self.read
                .set_read_timeout(Some(timeout))
                .map_err(WireError::Io)?;
            self.read_timeout = Some(timeout);
        }
        let t = self.shard.now_ns();
        let payload = self.frames.read_frame(&mut self.read)?;
        let msg = Msg::decode(&payload).map_err(|_| WireError::Corrupt("undecodable message"))?;
        self.shard
            .close(SpanKind::NetRecv, "net-recv", t, HOST_DEVICE, 0, None);
        self.telemetry
            .metrics
            .counter("net.bytes_recv")
            .add((wire::HEADER_LEN + payload.len()) as u64);
        Ok(msg)
    }

    /// Shuts both directions down; subsequent operations on either half
    /// fail fast.
    pub fn shutdown(&self) {
        let _ = self.read.shutdown(Shutdown::Both);
    }
}

/// Connects with capped-exponential backoff, counting each retry in
/// `net.retries`.
///
/// # Errors
/// The final connect error once `policy.max_retries` is exhausted.
pub fn connect_retry(
    addr: &str,
    policy: &RetryPolicy,
    telemetry: &Telemetry,
) -> Result<TcpStream, WireError> {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if attempt > policy.max_retries {
                    return Err(WireError::Io(e));
                }
                telemetry.metrics.counter("net.retries").inc();
                std::thread::sleep(policy.backoff_for(attempt));
            }
        }
    }
}

/// [`connect_retry`] with full-jitter sleeps drawn from the SplitMix64
/// stream behind `state` — the reconnect path workers use after a
/// failover, where synchronized backoff would stampede the new primary.
///
/// # Errors
/// The final connect error once `policy.max_retries` is exhausted.
pub fn connect_retry_jittered(
    addr: &str,
    policy: &RetryPolicy,
    state: &mut u64,
    telemetry: &Telemetry,
) -> Result<TcpStream, WireError> {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if attempt > policy.max_retries {
                    return Err(WireError::Io(e));
                }
                telemetry.metrics.counter("net.retries").inc();
                std::thread::sleep(policy.jittered_backoff_for(attempt, state));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::NetFaultPlan;
    use std::net::TcpListener;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 8,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_millis(300),
        };
        assert_eq!(p.backoff_for(1), Duration::from_millis(50));
        assert_eq!(p.backoff_for(2), Duration::from_millis(100));
        assert_eq!(p.backoff_for(3), Duration::from_millis(200));
        assert_eq!(p.backoff_for(4), Duration::from_millis(300), "capped");
        assert_eq!(p.backoff_for(10), Duration::from_millis(300));
    }

    #[test]
    fn jittered_backoff_spreads_simultaneous_restarts() {
        let p = RetryPolicy {
            max_retries: 8,
            backoff_base: Duration::from_millis(64),
            backoff_cap: Duration::from_secs(2),
        };
        let cap = p.backoff_for(4);
        // 32 workers restarting at once, each seeded by its identity.
        let sleeps: Vec<Duration> = (0..32u64)
            .map(|w| {
                let mut state = 0x5EED ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                p.jittered_backoff_for(4, &mut state)
            })
            .collect();
        assert!(sleeps.iter().all(|d| *d <= cap), "never above the cap");
        let distinct: std::collections::BTreeSet<_> = sleeps.iter().collect();
        assert!(
            distinct.len() >= 30,
            "herd must decorrelate, got {} distinct sleeps",
            distinct.len()
        );
        let (min, max) = (sleeps.iter().min().unwrap(), sleeps.iter().max().unwrap());
        assert!(
            *max >= *min + cap / 2,
            "jitter must cover a wide band, got [{min:?}, {max:?}] of cap {cap:?}"
        );
        // Same seed → same schedule: the jitter is replayable.
        let mut a = 7u64;
        let mut b = 7u64;
        for attempt in 1..=6 {
            assert_eq!(
                p.jittered_backoff_for(attempt, &mut a),
                p.jittered_backoff_for(attempt, &mut b)
            );
        }
    }

    #[test]
    fn messages_cross_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tel = Telemetry::disabled();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let tx = Conn::new(client, tel.clone()).unwrap();
        let mut rx = Conn::new(server, tel.clone()).unwrap();
        tx.send(&Msg::Ping { slot: 3 }).unwrap();
        tx.send(&Msg::Grad {
            iter: 1,
            slot: 3,
            loss: 0.5,
            grad: vec![1.0, -2.0],
        })
        .unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(2)).unwrap(),
            Msg::Ping { slot: 3 }
        );
        match rx.recv_timeout(Duration::from_secs(2)).unwrap() {
            Msg::Grad {
                iter: 1, slot: 3, ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(tel.metrics.counter("net.bytes_recv").get() > 0);
    }

    #[test]
    fn recv_times_out_then_resumes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tel = Telemetry::disabled();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let tx = Conn::new(client, tel.clone()).unwrap();
        let mut rx = Conn::new(server, tel).unwrap();
        match rx.recv_timeout(Duration::from_millis(30)) {
            Err(WireError::Timeout) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        tx.send(&Msg::Shutdown).unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(2)).unwrap(),
            Msg::Shutdown
        );
    }

    #[test]
    fn injected_drop_loses_the_frame() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tel = Telemetry::disabled();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        // Drop every frame after the first.
        let plan = NetFaultPlan::seeded(1).drop(1.0);
        let tx = Conn::new(client, tel.clone())
            .unwrap()
            .with_injector(FaultInjector::new(&plan, 0));
        let mut rx = Conn::new(server, tel.clone()).unwrap();
        tx.send(&Msg::Ping { slot: 0 }).unwrap();
        tx.send(&Msg::Ping { slot: 1 }).unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(2)).unwrap(),
            Msg::Ping { slot: 0 }
        );
        match rx.recv_timeout(Duration::from_millis(50)) {
            Err(WireError::Timeout) => {}
            other => panic!("dropped frame must not arrive, got {other:?}"),
        }
        assert_eq!(tel.metrics.counter("net.faults_injected").get(), 1);
    }

    #[test]
    fn connect_retry_counts_retries_then_gives_up() {
        // A port with no listener: every connect fails fast on loopback.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let tel = Telemetry::disabled();
        let policy = RetryPolicy {
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
        };
        let err = connect_retry(&addr.to_string(), &policy, &tel);
        assert!(err.is_err());
        assert_eq!(tel.metrics.counter("net.retries").get(), 2);
    }
}
