//! Memory planning (§4.5).
//!
//! Deep-learning models "require more memory to store the output of their
//! dataflow operators than the model itself" — ResNet-50 is 97.5 MB but
//! its 384 operator outputs consume 7.5 GB. CROSSBOW reduces this with two
//! plans:
//!
//! * an **offline plan** per learning task: walk the operator graph in
//!   execution order, keep a reference count per output buffer, and hand a
//!   buffer back to a free pool when its count drops to zero so later
//!   operators reuse it ("reduces the memory footprint of a learner by up
//!   to 50% because outputs are mostly reused during the backwards
//!   phase");
//! * an **online plan** when several learners share a GPU: in practice
//!   "not all instances of the same operator execute concurrently", so
//!   learners share per-size output-buffer pools, and the peak footprint
//!   of `m` staggered learners is far below `m×` a single learner's.

use crossbow_nn::graph::OpGraph;
use crossbow_nn::{NetPlan, Network, Scratch};
use crossbow_tensor::Workspace;
use std::collections::BTreeMap;

/// The result of planning one or more learning tasks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemoryPlan {
    /// Distinct physical buffers allocated.
    pub buffers_allocated: usize,
    /// Total bytes of all allocated buffers.
    pub bytes_allocated: usize,
    /// Peak bytes live at any point during execution.
    pub peak_bytes: usize,
    /// Bytes that would be needed with no reuse at all (one buffer per
    /// operator output).
    pub bytes_without_reuse: usize,
}

impl MemoryPlan {
    /// Fraction of the no-reuse footprint saved by the plan.
    pub fn savings(&self) -> f64 {
        if self.bytes_without_reuse == 0 {
            0.0
        } else {
            1.0 - self.bytes_allocated as f64 / self.bytes_without_reuse as f64
        }
    }
}

/// Pool of reusable buffers keyed by exact size, mirroring the paper's
/// per-operator output pools.
#[derive(Default)]
struct BufferPool {
    free: BTreeMap<usize, usize>, // size -> free count
    allocated: usize,
    bytes: usize,
    live_bytes: usize,
    peak_bytes: usize,
}

impl BufferPool {
    /// Takes a free buffer of exactly `size` bytes or allocates a new one.
    fn acquire(&mut self, size: usize) {
        match self.free.get_mut(&size) {
            Some(n) if *n > 0 => *n -= 1,
            _ => {
                self.allocated += 1;
                self.bytes += size;
            }
        }
        self.live_bytes += size;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
    }

    /// Returns a buffer of `size` bytes to the pool.
    fn release(&mut self, size: usize) {
        *self.free.entry(size).or_insert(0) += 1;
        debug_assert!(self.live_bytes >= size);
        self.live_bytes -= size;
    }
}

/// An **executable** §4.5 memory plan.
///
/// The original [`MemoryPlan`] is a *stats* view: it reports how much a
/// ref-count walk over the operator graph would save, but nothing consumes
/// it at run time. `ExecMemoryPlan` closes that loop. It combines
///
/// * the per-layer element counts from [`Network::plan`] (what one training
///   step actually checks out of a learner's arena), and
/// * the ref-count walk over the operator graph (the offline and shared
///   stats views),
///
/// and can **build** the pre-warmed per-learner [`Workspace`]/[`Scratch`]
/// the CPU execution engine hands to each learner lane, so the very first
/// iteration is served from the pool.
#[derive(Clone, Debug)]
pub struct ExecMemoryPlan {
    net: NetPlan,
    learners: usize,
    offline: MemoryPlan,
    shared: MemoryPlan,
}

impl ExecMemoryPlan {
    /// Plans `learners` co-located learners of `net` at the given batch
    /// size. The shared-pool view assumes the task scheduler's natural
    /// half-graph stagger between learners.
    pub fn new(net: &Network, batch: usize, learners: usize) -> Self {
        assert!(learners > 0, "need at least one learner");
        let graph = OpGraph::from_network(net, batch);
        let stagger = graph.ops.len() / 2;
        ExecMemoryPlan {
            net: net.plan(batch),
            learners,
            offline: offline_plan(&graph),
            shared: shared_plan(&graph, learners, stagger),
        }
    }

    /// The per-learner executable plan (element counts per layer).
    pub fn net_plan(&self) -> &NetPlan {
        &self.net
    }

    /// Number of co-located learners this plan covers.
    pub fn learners(&self) -> usize {
        self.learners
    }

    /// Estimated arena bytes one learner's training step needs.
    pub fn arena_bytes_per_learner(&self) -> usize {
        self.net.arena_bytes()
    }

    /// Stats view of the single-learner ref-count walk.
    pub fn offline_stats(&self) -> &MemoryPlan {
        &self.offline
    }

    /// Stats view of the shared pool across all co-located learners.
    pub fn shared_stats(&self) -> &MemoryPlan {
        &self.shared
    }

    /// Builds one pre-warmed workspace for a learner lane.
    pub fn build_workspace(&self) -> Workspace {
        self.net.build_workspace()
    }

    /// Builds pre-warmed scratches for every learner lane.
    pub fn build_scratches(&self, net: &Network) -> Vec<Scratch> {
        (0..self.learners)
            .map(|_| net.scratch_with_plan(&self.net))
            .collect()
    }
}

/// Plans one learning task offline (the §4.5 reference-count walk).
pub fn offline_plan(graph: &OpGraph) -> MemoryPlan {
    plan_interleaved(std::slice::from_ref(graph), 0)
}

/// Plans `m` learners of the same task sharing one pool. `stagger` is the
/// execution offset between consecutive learners, in operators: 0 means
/// perfectly in lock-step (worst sharing), a large value approaches fully
/// sequential execution (best sharing). The paper's task scheduler makes
/// learners naturally staggered because they are issued one task at a
/// time.
pub fn shared_plan(graph: &OpGraph, m: usize, stagger: usize) -> MemoryPlan {
    assert!(m > 0, "need at least one learner");
    let graphs = vec![graph.clone(); m];
    plan_interleaved(&graphs, stagger)
}

/// Core planner: executes several op sequences interleaved with the given
/// stagger against one shared buffer pool, tracking reference counts.
fn plan_interleaved(graphs: &[OpGraph], stagger: usize) -> MemoryPlan {
    let mut pool = BufferPool::default();
    // Remaining-consumer count for every (graph, op) output.
    let mut refs: Vec<Vec<usize>> = graphs
        .iter()
        .map(|g| (0..g.ops.len()).map(|i| g.consumer_count(i)).collect())
        .collect();
    let mut cursor: Vec<usize> = vec![0; graphs.len()];
    let without_reuse: usize = graphs.iter().map(|g| g.total_output_bytes()).sum();

    // Global step: learner l executes its ops starting at step l*stagger.
    let mut step = 0usize;
    loop {
        let mut any = false;
        for (l, graph) in graphs.iter().enumerate() {
            let start = l * stagger;
            if step < start || cursor[l] >= graph.ops.len() {
                continue;
            }
            let i = cursor[l];
            cursor[l] += 1;
            any = true;
            let op = &graph.ops[i];
            // Acquire this op's output buffer.
            pool.acquire(op.output_bytes);
            if refs[l][i] == 0 {
                // Nothing ever reads it: release immediately after the op.
                pool.release(op.output_bytes);
            }
            // This op has consumed its inputs: drop their refcounts.
            for &input in &op.inputs {
                debug_assert!(refs[l][input] > 0, "input consumed too often");
                refs[l][input] -= 1;
                if refs[l][input] == 0 {
                    pool.release(graph.ops[input].output_bytes);
                }
            }
        }
        if !any && cursor.iter().zip(graphs).all(|(&c, g)| c >= g.ops.len()) {
            break;
        }
        step += 1;
    }
    MemoryPlan {
        buffers_allocated: pool.allocated,
        bytes_allocated: pool.bytes,
        peak_bytes: pool.peak_bytes,
        bytes_without_reuse: without_reuse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbow_nn::zoo::{mlp, resnet_small};

    fn graph(batch: usize) -> OpGraph {
        OpGraph::from_network(&resnet_small(3, 16, 10), batch)
    }

    #[test]
    fn offline_plan_reuses_buffers() {
        let g = graph(16);
        let plan = offline_plan(&g);
        assert!(plan.buffers_allocated < g.ops.len(), "some reuse happened");
        assert!(plan.bytes_allocated < plan.bytes_without_reuse);
        assert!(plan.peak_bytes <= plan.bytes_allocated);
    }

    #[test]
    fn resnet_savings_match_papers_up_to_50_percent() {
        // §4.5: "such an offline plan reduces the memory footprint of a
        // learner by up to 50% because outputs are mostly reused during
        // the backwards phase".
        let plan = offline_plan(&graph(16));
        let s = plan.savings();
        assert!(
            (0.25..=0.60).contains(&s),
            "savings {s} out of the paper's ballpark"
        );
    }

    #[test]
    fn plan_is_batch_size_proportional() {
        let p1 = offline_plan(&graph(8));
        let p2 = offline_plan(&graph(16));
        assert_eq!(p2.bytes_allocated, 2 * p1.bytes_allocated);
        assert_eq!(p2.peak_bytes, 2 * p1.peak_bytes);
    }

    #[test]
    fn shared_pool_beats_private_pools() {
        // The online plan: m staggered learners share buffers; their peak
        // must be below m x single-learner peak.
        let g = graph(8);
        let single = offline_plan(&g);
        let m = 4;
        let stagger = g.ops.len() / 2;
        let shared = shared_plan(&g, m, stagger);
        assert!(
            shared.peak_bytes < m * single.peak_bytes,
            "shared {} vs {}x private {}",
            shared.peak_bytes,
            m,
            single.peak_bytes
        );
    }

    #[test]
    fn lockstep_learners_share_least() {
        let g = graph(8);
        let lockstep = shared_plan(&g, 3, 0);
        let staggered = shared_plan(&g, 3, g.ops.len());
        assert!(
            staggered.peak_bytes <= lockstep.peak_bytes,
            "more stagger, more sharing"
        );
        // Fully sequential learners need no more peak memory than one.
        let single = offline_plan(&g);
        assert_eq!(staggered.peak_bytes, single.peak_bytes);
    }

    #[test]
    fn mlp_graph_plans_too() {
        let g = OpGraph::from_network(&mlp(10, &[32, 16], 4), 4);
        let plan = offline_plan(&g);
        assert!(plan.bytes_allocated > 0);
        assert!(plan.savings() >= 0.0);
    }

    #[test]
    fn exec_plan_builds_prewarmed_scratches() {
        let net = resnet_small(3, 16, 10);
        let plan = ExecMemoryPlan::new(&net, 8, 3);
        assert_eq!(plan.learners(), 3);
        assert!(plan.arena_bytes_per_learner() > 0);
        // The stats views are exactly what the free planners report.
        let g = OpGraph::from_network(&net, 8);
        assert_eq!(plan.offline_stats(), &offline_plan(&g));
        let scratches = plan.build_scratches(&net);
        assert_eq!(scratches.len(), 3);
        for s in &scratches {
            assert!(
                s.workspace_stats().bytes_free > 0,
                "lane scratch is pre-warmed"
            );
        }
        let ws = plan.build_workspace();
        assert!(ws.bytes_held() > 0);
    }

    #[test]
    fn exec_plan_arena_tracks_batch_size() {
        let net = resnet_small(3, 16, 10);
        let small = ExecMemoryPlan::new(&net, 4, 1);
        let large = ExecMemoryPlan::new(&net, 8, 1);
        assert!(large.arena_bytes_per_learner() > small.arena_bytes_per_learner());
        assert_eq!(large.net_plan().batch, 8);
    }

    #[test]
    fn savings_of_empty_baseline_is_zero() {
        let p = MemoryPlan {
            buffers_allocated: 0,
            bytes_allocated: 0,
            peak_bytes: 0,
            bytes_without_reuse: 0,
        };
        assert_eq!(p.savings(), 0.0);
    }
}
