//! The four paper benchmarks (Table 1), wired to this reproduction's
//! substrates.
//!
//! Each [`Benchmark`] couples:
//!
//! * the **full-scale cost profile** from Table 1 (drives the GPU
//!   simulator — hardware efficiency at the paper's scale);
//! * a **reduced, CPU-trainable network** of the same family (drives real
//!   training — statistical efficiency);
//! * a **synthetic dataset** standing in for MNIST / CIFAR-10 /
//!   CIFAR-100 / ILSVRC (see `crossbow-data`);
//! * a **scaled target accuracy** playing the role of the paper's TTA
//!   thresholds (99% / 88% / 69% / 53%, §5.1) on the synthetic task, and
//!   the matching learning-rate schedule.

use crossbow_data::synth::{image_classification, ImageSpec};
use crossbow_data::Dataset;
use crossbow_nn::zoo;
use crossbow_nn::{ModelProfile, Network};
use crossbow_sync::LrSchedule;

/// One paper benchmark: model family + dataset + targets.
#[derive(Clone, Copy, Debug)]
pub struct Benchmark {
    /// Benchmark name (matches the profile name).
    pub name: &'static str,
    /// Full-scale cost profile (Table 1).
    pub profile: ModelProfile,
    /// Synthetic-dataset spec substituting the paper's dataset.
    pub data_spec: ImageSpec,
    /// Target accuracy on the synthetic task (the TTA threshold).
    pub scaled_target: f64,
    /// Epoch budget for the synthetic task.
    pub default_epochs: usize,
    /// Base learning rate for the synthetic task. Constant-rate training
    /// keeps the run inside the oscillating-plateau regime where the
    /// paper's statistical-efficiency effects live.
    pub base_lr: f32,
    /// Fraction of generated samples used for training (rest is test).
    pub train_fraction: f64,
    /// Label noise applied to the training split (test stays clean); see
    /// [`crossbow_data::Dataset::corrupt_labels`].
    pub label_noise: f64,
    /// Statistical batch size corresponding to the profile's
    /// `default_batch`: the synthetic datasets are smaller than the
    /// paper's, so per-learner batches scale down by
    /// `default_batch / stat_batch` (documented in EXPERIMENTS.md).
    pub stat_batch: usize,
}

impl Benchmark {
    /// LeNet on an MNIST-like task.
    pub fn lenet() -> Self {
        Benchmark {
            name: "lenet",
            profile: ModelProfile::lenet(),
            data_spec: ImageSpec::mnist_like(),
            scaled_target: 0.93,
            default_epochs: 25,
            base_lr: 0.01,
            train_fraction: 5.0 / 6.0,
            label_noise: 0.1,
            stat_batch: 4,
        }
    }

    /// ResNet-32 on a CIFAR-10-like task.
    pub fn resnet32() -> Self {
        Benchmark {
            name: "resnet-32",
            profile: ModelProfile::resnet32(),
            data_spec: ImageSpec::cifar10_like(),
            scaled_target: 0.82,
            default_epochs: 40,
            base_lr: 0.2,
            train_fraction: 5.0 / 6.0,
            label_noise: 0.3,
            stat_batch: 16,
        }
    }

    /// VGG-16 on a CIFAR-100-like task.
    pub fn vgg16() -> Self {
        Benchmark {
            name: "vgg-16",
            profile: ModelProfile::vgg16(),
            data_spec: ImageSpec::cifar100_like(),
            scaled_target: 0.70,
            default_epochs: 40,
            base_lr: 0.2,
            train_fraction: 5.0 / 6.0,
            label_noise: 0.25,
            stat_batch: 32,
        }
    }

    /// ResNet-50 on an ImageNet-like task.
    pub fn resnet50() -> Self {
        Benchmark {
            name: "resnet-50",
            profile: ModelProfile::resnet50(),
            data_spec: ImageSpec::imagenet_like(),
            scaled_target: 0.65,
            default_epochs: 40,
            base_lr: 0.2,
            train_fraction: 5.0 / 6.0,
            label_noise: 0.25,
            stat_batch: 8,
        }
    }

    /// All four benchmarks, in Table 1 order.
    pub fn all() -> [Benchmark; 4] {
        [
            Self::lenet(),
            Self::resnet32(),
            Self::vgg16(),
            Self::resnet50(),
        ]
    }

    /// Looks a benchmark up by name.
    pub fn by_name(name: &str) -> Option<Benchmark> {
        Self::all().into_iter().find(|b| b.name == name)
    }

    /// Builds the reduced, CPU-trainable network of this family.
    pub fn network(&self) -> Network {
        let c = self.data_spec.channels;
        let hw = self.data_spec.hw;
        let classes = self.data_spec.classes;
        match self.name {
            "lenet" => zoo::lenet(c, hw, classes),
            "resnet-32" => zoo::resnet_small(c, hw, classes),
            "vgg-16" => zoo::vgg_small(c, hw, classes),
            "resnet-50" => zoo::resnet(3, 8, c, hw, classes), // deeper stack
            other => unreachable!("unknown benchmark {other}"),
        }
    }

    /// Generates the synthetic train/test split for a seed, applying the
    /// benchmark's label noise to the training split only.
    pub fn dataset(&self, seed: u64) -> (Dataset, Dataset) {
        let full = image_classification(&self.data_spec, seed);
        let train_n = (full.len() as f64 * self.train_fraction) as usize;
        let (mut train, test) = full
            .split_at(train_n)
            .expect("train fraction keeps the split in range");
        if self.label_noise > 0.0 {
            let mut rng = crossbow_tensor::Rng::new(seed ^ 0x1ABE15);
            train.corrupt_labels(self.label_noise, &mut rng);
        }
        (train, test)
    }

    /// Maps a full-scale per-learner batch size to the synthetic task:
    /// the paper's `default_batch` corresponds to `stat_batch` here, and
    /// other sizes scale proportionally (minimum 1).
    pub fn scale_batch(&self, full_batch: usize) -> usize {
        (full_batch * self.stat_batch / self.profile.default_batch).max(1)
    }

    /// Learning-rate schedule for the synthetic task.
    ///
    /// The paper decays the rate late in training (epochs 80/120 for
    /// ResNet-32); our scaled runs stop well before the equivalent point,
    /// so the effective schedule within the measured window is constant —
    /// which also keeps every run inside the plateau regime the TTA
    /// comparisons probe. The decayed recipes remain available through
    /// [`LrSchedule`] and are exercised by the SMA restart tests.
    pub fn schedule(&self) -> LrSchedule {
        LrSchedule::Constant { lr: self.base_lr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_their_networks() {
        for b in Benchmark::all() {
            let net = b.network();
            assert_eq!(net.output_classes(), b.data_spec.classes, "{}", b.name);
            assert!(net.param_len() > 0);
        }
    }

    #[test]
    fn datasets_split_deterministically() {
        let b = Benchmark::lenet();
        let (tr1, te1) = b.dataset(5);
        let (tr2, te2) = b.dataset(5);
        assert_eq!(tr1.len(), tr2.len());
        assert_eq!(te1.len(), te2.len());
        assert_eq!(tr1.image(0), tr2.image(0));
        assert_eq!(te1.image(0), te2.image(0));
        assert!(tr1.len() > 4 * te1.len(), "5/6 train split");
    }

    #[test]
    fn lookup_and_order_match_table1() {
        let names: Vec<&str> = Benchmark::all().iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["lenet", "resnet-32", "vgg-16", "resnet-50"]);
        assert!(Benchmark::by_name("vgg-16").is_some());
        assert!(Benchmark::by_name("bert").is_none());
    }

    #[test]
    fn schedules_are_constant_within_the_measured_window() {
        for b in Benchmark::all() {
            let s = b.schedule();
            assert_eq!(s.lr_at(0), b.base_lr, "{}", b.name);
            assert!(!s.changes_at(b.default_epochs / 2));
        }
    }

    #[test]
    fn train_split_is_noisy_but_test_split_is_clean() {
        let b = Benchmark::resnet32();
        let (train, _test) = b.dataset(3);
        // The generator interleaves labels (i % classes); corruption must
        // have broken that pattern for a noticeable fraction.
        let broken = (0..train.len())
            .filter(|&i| train.label(i).expect("in range") != i % train.classes())
            .count();
        let frac = broken as f64 / train.len() as f64;
        assert!(
            (0.15..0.45).contains(&frac),
            "expected ~label_noise * (1 - 1/classes) broken labels, got {frac}"
        );
    }

    #[test]
    fn batch_scaling_maps_default_to_stat() {
        let b = Benchmark::resnet32();
        assert_eq!(b.scale_batch(b.profile.default_batch), b.stat_batch);
        assert_eq!(b.scale_batch(2 * b.profile.default_batch), 2 * b.stat_batch);
        assert_eq!(b.scale_batch(1), 1, "never below one");
    }

    #[test]
    fn profiles_match_names() {
        for b in Benchmark::all() {
            assert_eq!(b.profile.name, b.name);
        }
    }
}
