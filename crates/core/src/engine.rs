//! The end-to-end engine: the public façade of the reproduction.
//!
//! A [`Session`] runs one training configuration the way the paper
//! evaluates one (§5.1):
//!
//! 1. if the learner count is not pinned, the **auto-tuner** picks the
//!    number of learners per GPU by probing simulated throughput
//!    (Algorithm 2);
//! 2. the **task engine** runs on the GPU simulator to measure hardware
//!    efficiency — steady-state throughput and epoch time at the paper's
//!    full model/dataset scale;
//! 3. the **trainer** really trains the reduced model on the synthetic
//!    dataset to measure statistical efficiency — accuracy per epoch and
//!    epochs-to-accuracy under the `TTA(x)` median-of-5 rule;
//! 4. the two halves multiply into **time-to-accuracy**, the paper's
//!    headline metric.

use crate::autotuner::tune_to_convergence;
use crate::benchmark::Benchmark;
use crate::exec_sim::{
    simulate, simulate_robust_with_machine, simulate_with_machine, EngineKind, RobustSimConfig,
    SimConfig, SimReport,
};
use crossbow_checkpoint::{CheckpointError, CheckpointStore, RetentionPolicy};
use crossbow_gpu_sim::{FaultPlan, Machine, SimDuration};
use crossbow_sync::algorithm::SyncAlgorithm;
use crossbow_sync::hierarchical::HierarchicalSma;
use crossbow_sync::optimizer::SgdConfig;
use crossbow_sync::sma::{easgd, Sma, SmaConfig};
use crossbow_sync::ssgd::SSgd;
use crossbow_sync::{resume, train, CheckpointConfig, GuardConfig, TrainerConfig, TrainingCurve};
use crossbow_telemetry::Telemetry;
use crossbow_tensor::Rng;

/// Which training algorithm a session uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// Synchronous model averaging (the paper's contribution), with a
    /// synchronisation period τ (1 = every iteration, the default).
    Sma {
        /// Synchronisation period.
        tau: usize,
    },
    /// The two-level SMA of §3.3 (local reference models per GPU).
    HierarchicalSma,
    /// Parallel S-SGD — the TensorFlow-style baseline.
    SSgd,
    /// Elastic averaging SGD \[69\] — the §5.5 comparator.
    EaSgd {
        /// Synchronisation period.
        tau: usize,
    },
}

/// Fault-tolerance policy of a session: what faults to simulate on the
/// hardware half and how aggressively to self-heal on both halves.
#[derive(Clone, Debug)]
pub struct RobustnessConfig {
    /// Fault plan for the simulated hardware run. `None` derives a small
    /// seeded plan from the session seed ([`FaultPlan::from_seed`]) over
    /// the horizon of a fault-free probe run.
    pub fault_plan: Option<FaultPlan>,
    /// Divergence guard for the statistical (real training) run.
    pub guard: GuardConfig,
    /// Retry cap for failed tasks and global synchronisations.
    pub max_retries: u32,
    /// Test hook: treat the n-th training iteration's losses as NaN, so
    /// the rollback path can be exercised end to end.
    pub inject_nan_at: Option<u64>,
    /// Fault injection: simulate a host crash by abandoning the
    /// statistical run after this many applied iterations. Durable
    /// checkpoints (see [`SessionConfig::checkpoint`]) survive for a
    /// resumed session.
    pub crash_after: Option<u64>,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig {
            fault_plan: None,
            guard: GuardConfig::default(),
            max_retries: 4,
            inject_nan_at: None,
            crash_after: None,
        }
    }
}

/// Configuration of one training session.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// The benchmark (model family + dataset + profile).
    pub benchmark: Benchmark,
    /// Number of GPUs (`g`).
    pub gpus: usize,
    /// Learners per GPU (`m`); `None` lets the auto-tuner decide.
    pub learners_per_gpu: Option<usize>,
    /// Batch size per learner (`b`).
    pub batch_per_learner: usize,
    /// Training algorithm.
    pub algorithm: AlgorithmKind,
    /// Epoch budget for the statistical run (`None` = benchmark default).
    pub max_epochs: Option<usize>,
    /// TTA threshold (`None` = benchmark default).
    pub target_accuracy: Option<f64>,
    /// Master seed (dataset, init, batch order).
    pub seed: u64,
    /// Auto-tuner throughput tolerance, as a fraction of the current
    /// throughput (paper Algorithm 2's τ parameter).
    pub tuner_tolerance: f64,
    /// Cap on learners per GPU the tuner may reach.
    pub max_learners_per_gpu: usize,
    /// Fault injection + self-healing policy; `None` runs fault-free.
    pub robustness: Option<RobustnessConfig>,
    /// Durable checkpointing of the statistical run; a session restarted
    /// with the same configuration resumes from the newest valid
    /// checkpoint (and reuses the recorded learner count instead of
    /// re-running the auto-tuner). `None` = off.
    pub checkpoint: Option<CheckpointConfig>,
    /// Tracing + metrics sink. When set, the hardware-efficiency run
    /// records its simulator trace (flushed into the recorder as typed
    /// spans, devices `0..g`) and the statistical run records wall-clock
    /// host spans and checkpoint metrics (device
    /// [`crossbow_telemetry::HOST_DEVICE`]). `None` = telemetry off; the
    /// training result is identical either way.
    pub telemetry: Option<Telemetry>,
}

impl SessionConfig {
    /// A session on the given benchmark with paper-style defaults:
    /// 1 GPU, auto-tuned learners, the benchmark's default batch.
    pub fn new(benchmark: Benchmark) -> Self {
        SessionConfig {
            batch_per_learner: benchmark.profile.default_batch,
            benchmark,
            gpus: 1,
            learners_per_gpu: None,
            algorithm: AlgorithmKind::Sma { tau: 1 },
            max_epochs: None,
            target_accuracy: None,
            seed: 42,
            tuner_tolerance: 0.05,
            max_learners_per_gpu: 8,
            robustness: None,
            checkpoint: None,
            telemetry: None,
        }
    }

    /// A small LeNet session that trains in a couple of seconds — the
    /// quickstart configuration.
    pub fn lenet_quick() -> Self {
        let mut cfg = SessionConfig::new(Benchmark::lenet());
        cfg.max_epochs = Some(6);
        cfg.learners_per_gpu = Some(2);
        cfg
    }

    /// Sets the GPU count (builder style).
    pub fn with_gpus(mut self, gpus: usize) -> Self {
        self.gpus = gpus;
        self
    }

    /// Pins the learners per GPU (builder style).
    pub fn with_learners_per_gpu(mut self, m: usize) -> Self {
        self.learners_per_gpu = Some(m);
        self
    }

    /// Sets the per-learner batch size (builder style).
    pub fn with_batch(mut self, b: usize) -> Self {
        self.batch_per_learner = b;
        self
    }

    /// Sets the algorithm (builder style).
    pub fn with_algorithm(mut self, algorithm: AlgorithmKind) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the epoch budget (builder style).
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.max_epochs = Some(epochs);
        self
    }

    /// Sets the TTA target (builder style).
    pub fn with_target(mut self, target: f64) -> Self {
        self.target_accuracy = Some(target);
        self
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables fault injection + self-healing (builder style).
    pub fn with_robustness(mut self, robustness: RobustnessConfig) -> Self {
        self.robustness = Some(robustness);
        self
    }

    /// Enables durable checkpointing (builder style).
    pub fn with_checkpointing(mut self, checkpoint: CheckpointConfig) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Attaches a telemetry sink (builder style).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }
}

/// The combined result of a session.
#[derive(Clone, Debug)]
pub struct TrainingReport {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Algorithm used.
    pub algorithm: AlgorithmKind,
    /// GPUs used.
    pub gpus: usize,
    /// Learners per GPU actually used (after auto-tuning).
    pub learners_per_gpu: usize,
    /// Batch size per learner.
    pub batch_per_learner: usize,
    /// Statistical-efficiency result (real training).
    pub curve: TrainingCurve,
    /// Hardware-efficiency result (simulator).
    pub sim: SimReport,
    /// Simulated time of one full-scale epoch.
    pub epoch_time: SimDuration,
    /// Time-to-accuracy: epochs-to-target x epoch time, when the target
    /// was reached.
    pub tta: Option<SimDuration>,
}

impl TrainingReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let tta = match self.tta {
            Some(t) => format!("TTA {t}"),
            None => "target not reached".to_string(),
        };
        let overlap = self
            .sim
            .overlap
            .map(|o| format!(", sync overlap {:.0}%", o.ratio * 100.0))
            .unwrap_or_default();
        format!(
            "{} [{:?}] g={} m={} b={}: {:.1} images/s, epoch {}, ETA {:?} epochs, acc {:.3}, {}{}",
            self.benchmark,
            self.algorithm,
            self.gpus,
            self.learners_per_gpu,
            self.batch_per_learner,
            self.sim.throughput,
            self.epoch_time,
            self.curve.epochs_to_target,
            self.curve.final_accuracy,
            tta,
            overlap
        )
    }
}

/// A configured training session.
pub struct Session {
    config: SessionConfig,
}

impl Session {
    /// Creates a session.
    ///
    /// # Panics
    /// Panics on zero-sized configuration values.
    pub fn new(config: SessionConfig) -> Self {
        assert!(config.gpus >= 1, "need at least one GPU");
        assert!(config.batch_per_learner >= 1, "need a batch");
        assert!(config.max_learners_per_gpu >= 1);
        if config.algorithm == AlgorithmKind::SSgd {
            assert!(
                config.learners_per_gpu.unwrap_or(1) == 1,
                "S-SGD trains one replica per GPU"
            );
        }
        Session { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Builds the simulator configuration for a given learner count.
    fn sim_config(&self, m: usize) -> SimConfig {
        let c = &self.config;
        let (kind, tau) = match c.algorithm {
            AlgorithmKind::SSgd => (EngineKind::BaselineSSgd, Some(1)),
            AlgorithmKind::Sma { tau } | AlgorithmKind::EaSgd { tau } => {
                (EngineKind::Crossbow, Some(tau))
            }
            AlgorithmKind::HierarchicalSma => (EngineKind::Crossbow, Some(1)),
        };
        let mut sim = match kind {
            EngineKind::Crossbow => {
                SimConfig::crossbow(c.benchmark.profile, c.gpus, m, c.batch_per_learner)
            }
            EngineKind::BaselineSSgd => {
                SimConfig::baseline(c.benchmark.profile, c.gpus, c.batch_per_learner)
            }
        };
        sim.tau = tau;
        sim
    }

    /// Auto-tunes (or reads) the learners-per-GPU count, then measures
    /// hardware efficiency on the simulator.
    ///
    /// When the session has a [`RobustnessConfig`] and runs the CROSSBOW
    /// engine, the measurement run goes through the fault-tolerant driver
    /// ([`simulate_robust`](crate::exec_sim::simulate_robust)) with the
    /// configured (or seed-derived) fault
    /// plan; the auto-tuner's probe runs stay fault-free so tuning remains
    /// a property of the hardware, not of the injected faults.
    pub fn plan_hardware(&self) -> (usize, SimReport) {
        let c = &self.config;
        if c.algorithm == AlgorithmKind::SSgd {
            return (1, self.measure_hardware(1));
        }
        let m = match c.learners_per_gpu {
            Some(m) => m,
            None => {
                let probe = |m: usize| simulate(&self.sim_config(m)).throughput;
                let base = probe(1);
                let tolerance = base * c.tuner_tolerance;
                let (m, _) = tune_to_convergence(tolerance, c.max_learners_per_gpu, probe);
                m
            }
        };
        (m, self.measure_hardware(m))
    }

    /// Measures hardware efficiency at a fixed learner count.
    ///
    /// With telemetry attached the run records its trace: the report
    /// carries the sync–compute overlap and the simulator spans are
    /// flushed into the session's recorder (devices `0..g`).
    fn measure_hardware(&self, m: usize) -> SimReport {
        let c = &self.config;
        let mut sim = self.sim_config(m);
        if c.telemetry.is_some() {
            sim.record_trace = true;
        }
        let robustness = (c.algorithm != AlgorithmKind::SSgd)
            .then_some(c.robustness.as_ref())
            .flatten();
        let (report, machine) = match robustness {
            Some(r) => {
                let plan = r.fault_plan.clone().unwrap_or_else(|| {
                    // Derive a small seeded plan over the fault-free horizon.
                    let horizon = simulate(&sim).total_time;
                    FaultPlan::from_seed(
                        c.seed,
                        c.gpus,
                        SimDuration::from_secs_f64(horizon.as_secs_f64()),
                    )
                });
                let mut robust = RobustSimConfig::new(sim, plan);
                robust.max_retries = r.max_retries;
                simulate_robust_with_machine(&robust)
            }
            None => simulate_with_machine(&sim),
        };
        self.flush_sim_spans(&machine);
        report
    }

    /// Flushes the simulator trace into the telemetry recorder as typed
    /// spans, so an exported Chrome trace shows the hardware half of the
    /// session next to the wall-clock host spans of the statistical half.
    fn flush_sim_spans(&self, machine: &Machine) {
        if let Some(t) = &self.config.telemetry {
            let mut shard = t.recorder.shard();
            for span in machine.trace().to_spans() {
                shard.record(span);
            }
        }
    }

    /// The learners-per-GPU count recorded in the newest valid checkpoint
    /// of this session's store, when one exists and matches the seed.
    /// Resuming must reuse it: re-running the auto-tuner could pick a
    /// different parallelism, whose `k` the checkpoint would not fit.
    fn recorded_learners(&self) -> Option<usize> {
        let ckpt = self.config.checkpoint.as_ref()?;
        let store = CheckpointStore::open(&ckpt.dir, RetentionPolicy::default()).ok()?;
        let loaded = store.load_latest().ok().flatten()?;
        (loaded.state.seed == self.config.seed && loaded.state.learners_per_gpu > 0)
            .then_some(loaded.state.learners_per_gpu as usize)
    }

    /// Runs the statistical-efficiency half: real training of the reduced
    /// model with `k = m * gpus` learners.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] when the configured checkpoint directory
    /// cannot be created or read.
    pub fn train_statistics(&self, m: usize) -> Result<TrainingCurve, CheckpointError> {
        let c = &self.config;
        let net = c.benchmark.network();
        let (train_set, test_set) = c.benchmark.dataset(c.seed);
        let mut rng = Rng::new(c.seed ^ 0xC0FFEE);
        let init = net.init_params(&mut rng);
        let k = m * c.gpus;
        let mut algo: Box<dyn SyncAlgorithm> = match c.algorithm {
            AlgorithmKind::Sma { tau } => Box::new(Sma::new(
                init,
                k,
                SmaConfig {
                    tau,
                    ..SmaConfig::default()
                },
            )),
            AlgorithmKind::HierarchicalSma => {
                Box::new(HierarchicalSma::new(init, c.gpus, m, SmaConfig::default()))
            }
            AlgorithmKind::SSgd => Box::new(SSgd::new(init, k, SgdConfig::paper_default())),
            AlgorithmKind::EaSgd { tau } => Box::new(easgd(init, k, None, tau)),
        };
        // The simulator runs at the paper's full scale; the statistical
        // run maps the batch onto the (smaller) synthetic task.
        let stat_batch = c.benchmark.scale_batch(c.batch_per_learner);
        let trainer_config = TrainerConfig {
            batch_per_learner: stat_batch.min(train_set.len() / k.max(1)).max(1),
            max_epochs: c.max_epochs.unwrap_or(c.benchmark.default_epochs),
            target_accuracy: Some(c.target_accuracy.unwrap_or(c.benchmark.scaled_target)),
            schedule: c.benchmark.schedule(),
            weight_decay: 1e-4,
            eval_batch: 256,
            seed: c.seed,
            threads: 0,
            partition: None,
            guard: c.robustness.as_ref().map(|r| r.guard),
            inject_nan_at: c.robustness.as_ref().and_then(|r| r.inject_nan_at),
            checkpoint: c.checkpoint.clone().map(|mut ck| {
                // Stamp the parallelism so a resumed session can reuse it.
                ck.learners_per_gpu = m as u32;
                ck
            }),
            crash_after: c.robustness.as_ref().and_then(|r| r.crash_after),
            publish: None,
            state_hook: None,
            telemetry: c.telemetry.clone(),
        };
        if trainer_config.checkpoint.is_some() {
            resume(&net, &train_set, &test_set, algo.as_mut(), &trainer_config)
        } else {
            Ok(train(
                &net,
                &train_set,
                &test_set,
                algo.as_mut(),
                &trainer_config,
            ))
        }
    }

    /// Runs the full session: auto-tune, simulate, train, combine.
    ///
    /// With [`SessionConfig::checkpoint`] set, a session whose store holds
    /// a checkpoint from the same seed skips the auto-tuner and reuses the
    /// recorded learner count, then resumes training from that checkpoint.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] when the configured checkpoint directory
    /// cannot be created or read.
    pub fn run(&self) -> Result<TrainingReport, CheckpointError> {
        let (m, sim) = match self.recorded_learners() {
            Some(m) => (m, self.measure_hardware(m)),
            None => self.plan_hardware(),
        };
        let curve = self.train_statistics(m)?;
        let epoch_time = sim.epoch_time(self.config.benchmark.profile.train_samples);
        let tta = curve
            .epochs_to_target
            .map(|e| SimDuration::from_secs_f64(e as f64 * epoch_time.as_secs_f64()));
        Ok(TrainingReport {
            benchmark: self.config.benchmark.name,
            algorithm: self.config.algorithm,
            gpus: self.config.gpus,
            learners_per_gpu: m,
            batch_per_learner: self.config.batch_per_learner,
            curve,
            sim,
            epoch_time,
            tta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_quick_session_learns() {
        let report = Session::new(SessionConfig::lenet_quick())
            .run()
            .expect("run");
        assert!(report.curve.final_accuracy > 0.5, "{}", report.summary());
        assert!(report.sim.throughput > 0.0);
        assert_eq!(report.learners_per_gpu, 2);
        assert!(report.epoch_time.as_nanos() > 0);
    }

    #[test]
    fn auto_tuner_picks_more_than_one_learner_for_small_batches() {
        // ResNet-32 at b = 64 cannot saturate a Titan X with one learner;
        // the paper's tuner lands at m = 4 on one GPU (Figure 14a).
        let cfg = SessionConfig::new(Benchmark::resnet32()).with_batch(64);
        let session = Session::new(cfg);
        let (m, _) = session.plan_hardware();
        assert!(m >= 2, "tuner chose m = {m}");
        assert!(m <= 8);
    }

    #[test]
    fn ssgd_sessions_use_one_replica_per_gpu() {
        let cfg = SessionConfig::new(Benchmark::lenet())
            .with_algorithm(AlgorithmKind::SSgd)
            .with_gpus(2);
        let session = Session::new(cfg);
        let (m, _) = session.plan_hardware();
        assert_eq!(m, 1);
    }

    #[test]
    #[should_panic(expected = "one replica per GPU")]
    fn ssgd_rejects_multiple_learners() {
        let cfg = SessionConfig::new(Benchmark::lenet())
            .with_algorithm(AlgorithmKind::SSgd)
            .with_learners_per_gpu(3);
        let _ = Session::new(cfg);
    }

    #[test]
    fn tta_combines_eta_and_epoch_time() {
        let mut cfg = SessionConfig::lenet_quick();
        cfg.max_epochs = Some(12);
        cfg.target_accuracy = Some(0.6); // easily reached
        let report = Session::new(cfg).run().expect("run");
        let eta = report.curve.epochs_to_target.expect("easy target");
        let tta = report.tta.expect("tta present");
        let expect = eta as f64 * report.epoch_time.as_secs_f64();
        assert!((tta.as_secs_f64() - expect).abs() < 1e-6);
    }

    #[test]
    fn reports_are_deterministic() {
        let run = || {
            Session::new(SessionConfig::lenet_quick().with_seed(7))
                .run()
                .expect("run")
                .curve
                .epoch_accuracy
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn summary_mentions_the_benchmark() {
        let report = Session::new(SessionConfig::lenet_quick())
            .run()
            .expect("run");
        let s = report.summary();
        assert!(s.contains("lenet"), "{s}");
    }

    #[test]
    fn telemetry_session_records_spans_and_overlap() {
        use crossbow_telemetry::SpanKind;
        let telemetry = Telemetry::wall();
        let report = Session::new(SessionConfig::lenet_quick().with_telemetry(telemetry.clone()))
            .run()
            .expect("run");
        // The traced hardware run reports Figure 8's sync–compute overlap.
        let overlap = report.sim.overlap.expect("telemetry implies a trace");
        assert!(overlap.ratio > 0.0, "{overlap}");
        assert!(
            report.summary().contains("sync overlap"),
            "{}",
            report.summary()
        );
        // The recorder holds the simulator spans (learn / local-sync /
        // global-sync) and the wall-clock host spans of the trainer.
        let timeline = telemetry.recorder.timeline();
        assert!(timeline.count(SpanKind::Learn) > 0);
        assert!(timeline.count(SpanKind::LocalSync) > 0);
        assert!(timeline.count(SpanKind::GlobalSync) > 0);
        assert!(timeline.count(SpanKind::Eval) > 0);
    }

    #[test]
    fn telemetry_does_not_change_the_curve() {
        let run = |telemetry: Option<Telemetry>| {
            let mut cfg = SessionConfig::lenet_quick().with_seed(9);
            cfg.telemetry = telemetry;
            Session::new(cfg).run().expect("run").curve
        };
        assert_eq!(run(None), run(Some(Telemetry::wall())));
    }

    #[test]
    fn session_crash_and_resume_reproduces_the_uninterrupted_curve() {
        let dir =
            std::env::temp_dir().join(format!("crossbow-session-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let robustness = |crash_after| RobustnessConfig {
            crash_after,
            ..RobustnessConfig::default()
        };
        let baseline = Session::new(
            SessionConfig::lenet_quick()
                .with_seed(7)
                .with_robustness(robustness(None)),
        )
        .run()
        .expect("run");

        // Crash mid-run; durable checkpoints survive in `dir`.
        let crashed = Session::new(
            SessionConfig::lenet_quick()
                .with_seed(7)
                .with_robustness(robustness(Some(40)))
                .with_checkpointing(CheckpointConfig::new(&dir).every(10)),
        )
        .run()
        .expect("run");
        assert_eq!(crashed.curve.iterations, 40);
        assert!(crashed.curve.epoch_accuracy.len() < baseline.curve.epoch_accuracy.len());

        // A restarted session reads the learner count from the checkpoint
        // (no re-tuning, even though `learners_per_gpu` is unpinned) and
        // finishes with a curve bit-identical to the uninterrupted run.
        let mut resume_cfg = SessionConfig::lenet_quick()
            .with_seed(7)
            .with_robustness(robustness(None))
            .with_checkpointing(CheckpointConfig::new(&dir).every(10));
        resume_cfg.learners_per_gpu = None;
        let resumed = Session::new(resume_cfg).run().expect("run");
        assert_eq!(resumed.learners_per_gpu, 2);
        assert_eq!(resumed.curve, baseline.curve);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
