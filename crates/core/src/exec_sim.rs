//! The CROSSBOW task engine, driven against the GPU simulator.
//!
//! This module reproduces the execution structure of §4.2–4.3 / Figure 8
//! and measures *hardware efficiency* (throughput, per-iteration time) on
//! the simulated multi-GPU server:
//!
//! * each learner has its own **learner stream**; each GPU additionally
//!   has one **synchronisation stream**;
//! * a **learning task** is the batch's H2D copy followed by the model's
//!   `num_ops` kernels (costs from the [`ModelProfile`]);
//! * a **local synchronisation task** runs on the learner stream right
//!   after the learning task: it computes the replica's difference from
//!   the GPU-local average model and updates the replica. It must *wait*
//!   (via an event) for the previous iteration's global synchronisation to
//!   have updated that average model (Figure 8, point *d*);
//! * a **global synchronisation task** runs on the sync streams: it waits
//!   for the GPU's local syncs (events), aggregates the local differences,
//!   joins a ring **all-reduce** with the other GPUs, and applies the
//!   update to the local copy of the average model;
//! * the next learning task of a learner starts immediately after its
//!   local sync — *overlapping* with the global synchronisation of the
//!   current iteration (Figure 8, points *f*, *g*). Integration tests
//!   assert this overlap from the trace.
//!
//! The TensorFlow-style baseline ([`EngineKind::BaselineSSgd`]) instead
//! runs one learner per GPU, all-reduces *gradients* inside the iteration
//! and places a global barrier before the next one (Figure 1), with the
//! larger per-iteration host overhead of a session-style executor.

use crossbow_gpu_sim::{
    Completion, CopyKind, EventId, FaultPlan, FaultStats, KernelDesc, Machine, MachineConfig,
    SimDuration, SimTime, StreamId,
};
use crossbow_nn::ModelProfile;
use crossbow_telemetry::{OverlapStats, Timeline};

/// Which execution engine to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// CROSSBOW: multiple learners per GPU, SMA synchronisation overlapped
    /// with the next iteration's learning tasks.
    Crossbow,
    /// Parallel S-SGD with a per-iteration barrier — the TensorFlow
    /// baseline of §2.3.
    BaselineSSgd,
}

/// Per-task host scheduling overhead of the CROSSBOW task engine: worker
/// threads issue non-blocking kernels (§4.3).
pub const CROSSBOW_TASK_OVERHEAD: SimDuration = SimDuration::from_micros(10);

/// Per-iteration host overhead of the baseline's session-style executor
/// (round-robin dispatch, feed/fetch marshalling). Dominates sub-
/// millisecond models like LeNet — the effect behind Figure 10d.
pub const BASELINE_ITERATION_OVERHEAD: SimDuration = SimDuration::from_micros(300);

/// Configuration of one simulated training run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Engine to simulate.
    pub kind: EngineKind,
    /// Number of GPUs (`g`).
    pub gpus: usize,
    /// Learners per GPU (`m`); must be 1 for the baseline.
    pub learners_per_gpu: usize,
    /// Batch size per learner (`b`).
    pub batch_per_learner: usize,
    /// Full-scale model cost profile.
    pub profile: ModelProfile,
    /// Synchronise every `tau` iterations; `None` disables synchronisation
    /// entirely (the τ = ∞ point of Figure 17).
    pub tau: Option<usize>,
    /// Iterations to simulate per learner.
    pub iterations: usize,
    /// Iterations excluded from the throughput measurement.
    pub warmup: usize,
    /// Record the execution trace (needed by overlap tests).
    pub record_trace: bool,
    /// Ablation: force a global barrier between iterations (a learning
    /// task may not start until the previous iteration's global
    /// synchronisation finished on its GPU), disabling the Figure 8
    /// overlap. Only meaningful for the CROSSBOW engine.
    pub force_barrier: bool,
}

impl SimConfig {
    /// CROSSBOW with τ = 1 (the paper's default).
    pub fn crossbow(profile: ModelProfile, gpus: usize, m: usize, batch: usize) -> Self {
        SimConfig {
            kind: EngineKind::Crossbow,
            gpus,
            learners_per_gpu: m,
            batch_per_learner: batch,
            profile,
            tau: Some(1),
            iterations: 24,
            warmup: 4,
            record_trace: false,
            force_barrier: false,
        }
    }

    /// The TensorFlow-style baseline at per-GPU batch `batch`.
    pub fn baseline(profile: ModelProfile, gpus: usize, batch: usize) -> Self {
        SimConfig {
            kind: EngineKind::BaselineSSgd,
            gpus,
            learners_per_gpu: 1,
            batch_per_learner: batch,
            profile,
            tau: Some(1),
            iterations: 24,
            warmup: 4,
            record_trace: false,
            force_barrier: false,
        }
    }

    /// Enables trace recording (builder style).
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Total learners.
    pub fn total_learners(&self) -> usize {
        self.gpus * self.learners_per_gpu
    }

    /// Aggregate batch per iteration.
    pub fn aggregate_batch(&self) -> usize {
        self.total_learners() * self.batch_per_learner
    }
}

/// Fault and recovery counters of one simulated run. All zero for the
/// fault-free drivers; populated by [`simulate_robust`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Failed learning / local-sync tasks resubmitted on the same stream.
    pub task_retries: u64,
    /// Failed global synchronisations resubmitted (with backoff).
    pub sync_retries: u64,
    /// Global synchronisations abandoned after the retry cap.
    pub dropped_syncs: u64,
    /// Times a GPU's learners were removed from the all-reduce group for
    /// persistent slowness.
    pub quarantines: u64,
    /// Times a quarantined GPU was readmitted after sustained health.
    pub rejoins: u64,
    /// Host crashes observed: the driver abandoned the run mid-flight,
    /// leaving recovery to a resumed run (`RobustSimConfig::start_iter`).
    pub host_crashes: u64,
    /// What the machine actually injected (ground truth).
    pub injected: FaultStats,
}

/// Hardware-efficiency measurements of one simulated run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Steady-state training throughput (images/s).
    pub throughput: f64,
    /// Mean steady-state iteration time.
    pub iteration_time: SimDuration,
    /// Mean SM utilisation across GPUs over the whole run.
    pub utilisation: f64,
    /// Total simulated time.
    pub total_time: SimTime,
    /// Aggregate batch (images consumed per iteration across learners).
    pub aggregate_batch: usize,
    /// Fault / recovery counters (all zero for fault-free runs).
    pub faults: FaultCounters,
    /// Sync–compute overlap of the run (Figure 8): the fraction of
    /// global-synchronisation time hidden under learning tasks. Only
    /// computed when the trace is recorded ([`SimConfig::record_trace`]).
    pub overlap: Option<OverlapStats>,
}

impl SimReport {
    /// Simulated wall-clock time of one epoch over `train_samples`.
    pub fn epoch_time(&self, train_samples: usize) -> SimDuration {
        SimDuration::from_secs_f64(train_samples as f64 / self.throughput)
    }
}

/// Runs the simulation and returns the report.
pub fn simulate(config: &SimConfig) -> SimReport {
    simulate_with_machine(config).0
}

/// Runs the simulation, also returning the machine for trace inspection.
///
/// # Panics
/// Panics on invalid configurations (zero sizes, baseline with `m > 1`,
/// `warmup >= iterations`).
pub fn simulate_with_machine(config: &SimConfig) -> (SimReport, Machine) {
    assert!(config.gpus >= 1, "need at least one GPU");
    assert!(config.learners_per_gpu >= 1, "need at least one learner");
    assert!(config.batch_per_learner >= 1, "need a batch");
    assert!(
        config.iterations > config.warmup,
        "need measured iterations after warmup"
    );
    if config.kind == EngineKind::BaselineSSgd {
        assert_eq!(
            config.learners_per_gpu, 1,
            "the baseline trains one replica per GPU"
        );
    }
    if let Some(tau) = config.tau {
        assert!(tau >= 1, "tau must be at least 1");
    }
    let mut machine_config = MachineConfig::titan_x_server(config.gpus);
    machine_config.record_trace = config.record_trace;
    let mut machine = Machine::new(machine_config);
    match config.kind {
        EngineKind::Crossbow => build_crossbow(&mut machine, config),
        EngineKind::BaselineSSgd => build_baseline(&mut machine, config),
    }
    let completions = machine.run();
    assert!(machine.is_quiescent(), "work left behind");

    // Learning-task completions are tagged (iter << 32 | learner).
    let learners = config.total_learners();
    let iter_of = |tag: u64| (tag >> 32) as usize;
    let warm_end = completions
        .iter()
        .filter(|c| config.warmup == 0 || iter_of(c.tag) == config.warmup - 1)
        .map(|c| c.time)
        .max()
        .map_or(SimTime::ZERO, |t| {
            if config.warmup == 0 {
                SimTime::ZERO
            } else {
                t
            }
        });
    let end = completions
        .iter()
        .map(|c| c.time)
        .max()
        .expect("at least one completion");
    let measured_iters = config.iterations - config.warmup;
    let images = (learners * config.batch_per_learner * measured_iters) as f64;
    let span = (end - warm_end).as_secs_f64();
    assert!(span > 0.0, "zero measurement span");
    let throughput = images / span;
    let utilisation = (0..config.gpus)
        .map(|g| machine.utilisation(machine.device(g)))
        .sum::<f64>()
        / config.gpus as f64;
    let overlap = trace_overlap(&machine, config.record_trace);
    let report = SimReport {
        throughput,
        iteration_time: SimDuration::from_secs_f64(span / measured_iters as f64),
        utilisation,
        total_time: machine.now(),
        aggregate_batch: config.aggregate_batch(),
        faults: FaultCounters::default(),
        overlap,
    };
    (report, machine)
}

/// Overlap statistics from the machine's recorded trace, when it has one.
fn trace_overlap(machine: &Machine, recorded: bool) -> Option<OverlapStats> {
    recorded.then(|| Timeline::from_spans(machine.trace().to_spans()).overlap())
}

/// Builds the per-operator kernel sequence of one learning task.
///
/// Operators within a task are *heterogeneous*: a model mixes wide
/// convolutions with narrow element-wise layers, so per-op SM demand
/// cycles around the profile's batch-derived demand. The narrow kernels
/// leave SMs idle under a single learner — the very gap further learners
/// fill (§3.3) — while the wide ones keep the average cost calibrated.
fn learn_kernels(config: &SimConfig) -> Vec<KernelDesc> {
    let p = &config.profile;
    let flops_per_op = p.task_flops(config.batch_per_learner) / p.num_ops as u64;
    let base = p.sm_demand(config.batch_per_learner);
    const DEMAND_CYCLE: [f64; 4] = [1.5, 1.25, 1.0, 0.625];
    (0..p.num_ops)
        .map(|i| {
            let demand = (f64::from(base) * DEMAND_CYCLE[i % DEMAND_CYCLE.len()]).ceil() as u32;
            KernelDesc::compute("learn", flops_per_op, demand.max(1))
        })
        .collect()
}

fn tag(iter: usize, learner: usize) -> u64 {
    ((iter as u64) << 32) | learner as u64
}

/// Builds the CROSSBOW dataflow of Figure 8.
fn build_crossbow(machine: &mut Machine, config: &SimConfig) {
    let p = &config.profile;
    let m = config.learners_per_gpu;
    let kernels = learn_kernels(config);
    let input_bytes = (config.batch_per_learner as u64) * p.bytes_per_sample;
    let model_bytes = p.model_bytes();

    // Streams: learner streams grouped by GPU, plus one sync stream/GPU.
    let mut learner_streams: Vec<Vec<StreamId>> = Vec::with_capacity(config.gpus);
    let mut sync_streams: Vec<StreamId> = Vec::with_capacity(config.gpus);
    for g in 0..config.gpus {
        let dev = machine.device(g);
        learner_streams.push((0..m).map(|_| machine.create_stream(dev)).collect());
        sync_streams.push(machine.create_stream(dev));
    }

    let local_sync_kernel = KernelDesc::memory("local-sync", 3 * model_bytes, 2);
    let update_kernel = KernelDesc::memory("update", 2 * model_bytes, 2);
    let reduce_kernel = KernelDesc::memory("reduce-local", (m as u64) * model_bytes, 2);
    let apply_kernel = KernelDesc::memory("apply-average", 2 * model_bytes, 2);

    let mut last_avg: Vec<Option<EventId>> = vec![None; config.gpus];
    for iter in 0..config.iterations {
        let sync = config.tau.is_some_and(|t| iter % t == 0);
        let mut local_done: Vec<Vec<EventId>> = vec![Vec::with_capacity(m); config.gpus];
        for g in 0..config.gpus {
            for (l, &stream) in learner_streams[g].iter().enumerate() {
                let learner = g * m + l;
                if config.force_barrier {
                    // Ablation: no overlap — wait for the previous global
                    // sync before even starting the learning task.
                    if let Some(avg) = last_avg[g] {
                        machine.wait_event(stream, avg);
                    }
                }
                machine.delay(stream, CROSSBOW_TASK_OVERHEAD, "sched");
                machine.submit_copy(stream, CopyKind::HostToDevice, input_bytes, "input");
                for &kernel in &kernels {
                    machine.submit_kernel(stream, kernel);
                }
                if sync {
                    // The local average model must be consistent: wait for
                    // the previous global synchronisation on this GPU.
                    if let Some(avg) = last_avg[g] {
                        machine.wait_event(stream, avg);
                    }
                    machine.submit_kernel(stream, local_sync_kernel);
                    let ev = machine.create_event();
                    machine.record_event(stream, ev);
                    local_done[g].push(ev);
                } else {
                    machine.submit_kernel(stream, update_kernel);
                }
                machine.callback(stream, tag(iter, learner));
            }
        }
        if sync {
            for g in 0..config.gpus {
                let ss = sync_streams[g];
                for &ev in &local_done[g] {
                    machine.wait_event(ss, ev);
                }
                machine.submit_kernel(ss, reduce_kernel);
            }
            machine.all_reduce(&sync_streams, model_bytes, "allreduce");
            for g in 0..config.gpus {
                let ss = sync_streams[g];
                machine.submit_kernel(ss, apply_kernel);
                let ev = machine.create_event();
                machine.record_event(ss, ev);
                last_avg[g] = Some(ev);
            }
        }
    }
}

/// Builds the TensorFlow-style S-SGD dataflow of Figure 1.
fn build_baseline(machine: &mut Machine, config: &SimConfig) {
    let p = &config.profile;
    let kernels = learn_kernels(config);
    let input_bytes = (config.batch_per_learner as u64) * p.bytes_per_sample;
    let model_bytes = p.model_bytes();
    let streams: Vec<StreamId> = (0..config.gpus)
        .map(|g| machine.create_stream(machine.device(g)))
        .collect();
    let update_kernel = KernelDesc::memory("update", 2 * model_bytes, 2);
    for iter in 0..config.iterations {
        for (g, &stream) in streams.iter().enumerate() {
            machine.delay(stream, BASELINE_ITERATION_OVERHEAD, "session");
            machine.submit_copy(stream, CopyKind::HostToDevice, input_bytes, "input");
            for &kernel in &kernels {
                machine.submit_kernel(stream, kernel);
            }
            let _ = g;
        }
        // Gradient aggregation doubles as the barrier: every stream joins
        // before any proceeds (Figure 1's "aggregate gradients" step).
        machine.all_reduce(&streams, model_bytes, "grad-allreduce");
        for (g, &stream) in streams.iter().enumerate() {
            machine.submit_kernel(stream, update_kernel);
            machine.callback(stream, tag(iter, g));
        }
    }
}

/// Configuration of a fault-tolerant (robust) simulated run.
///
/// The robust driver submits work one iteration at a time and *reacts* to
/// completions instead of pre-building the whole dataflow: failed tasks
/// are retried with capped exponential backoff, a persistently slow GPU
/// has its learners quarantined out of the all-reduce group (the SMA
/// group `k` shrinks), and a quarantined GPU rejoins once its measured
/// iteration span is healthy again. The price of reactivity is that the
/// global synchronisation no longer overlaps the next iteration's
/// learning tasks — the host must observe each sync outcome before it can
/// decide what the next iteration looks like.
#[derive(Clone, Debug)]
pub struct RobustSimConfig {
    /// The underlying run (must use [`EngineKind::Crossbow`]).
    pub sim: SimConfig,
    /// Faults to inject.
    pub faults: FaultPlan,
    /// Retry cap per task and per global synchronisation.
    pub max_retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: SimDuration,
    /// Upper bound on a single backoff delay.
    pub backoff_cap: SimDuration,
    /// A GPU is "slow" when its iteration span exceeds the median span
    /// across GPUs by this factor.
    pub slow_factor: f64,
    /// Consecutive slow iterations before quarantine.
    pub quarantine_after: u32,
    /// Consecutive healthy iterations before a quarantined GPU rejoins.
    pub rejoin_after: u32,
    /// First iteration to execute (0 for a fresh run). A run resumed from
    /// a checkpoint sets this to the checkpoint's iteration so the
    /// simulation replays only the remaining work.
    pub start_iter: usize,
}

impl RobustSimConfig {
    /// Robust run with default recovery policy.
    pub fn new(sim: SimConfig, faults: FaultPlan) -> Self {
        RobustSimConfig {
            sim,
            faults,
            max_retries: 4,
            backoff_base: SimDuration::from_micros(50),
            backoff_cap: SimDuration::from_millis(5),
            slow_factor: 1.5,
            quarantine_after: 2,
            rejoin_after: 2,
            start_iter: 0,
        }
    }

    /// Resumes the simulated run at `iter` (builder style).
    pub fn with_start_iter(mut self, iter: usize) -> Self {
        self.start_iter = iter;
        self
    }
}

/// Backoff before retry `attempt` (1-based): `base * 2^(attempt-1)`,
/// capped.
fn backoff_for(config: &RobustSimConfig, attempt: u32) -> SimDuration {
    let exp = attempt.saturating_sub(1).min(20);
    let nanos = config
        .backoff_base
        .as_nanos()
        .saturating_mul(1u64 << exp)
        .min(config.backoff_cap.as_nanos());
    SimDuration::from_nanos(nanos)
}

/// High bit distinguishing global-sync callbacks from learner callbacks.
const SYNC_TAG: u64 = 1 << 63;

/// One learning task + local sync, submitted (or resubmitted) on a
/// learner stream. Returns the event recording the local sync, if any.
#[allow(clippy::too_many_arguments)]
fn submit_learn_task(
    machine: &mut Machine,
    stream: StreamId,
    kernels: &[KernelDesc],
    input_bytes: u64,
    sync: bool,
    wait_on: Option<EventId>,
    local_sync_kernel: KernelDesc,
    update_kernel: KernelDesc,
    callback_tag: u64,
) -> Option<EventId> {
    machine.delay(stream, CROSSBOW_TASK_OVERHEAD, "sched");
    machine.submit_copy(stream, CopyKind::HostToDevice, input_bytes, "input");
    for &kernel in kernels {
        machine.submit_kernel(stream, kernel);
    }
    let ev = if sync {
        if let Some(avg) = wait_on {
            machine.wait_event(stream, avg);
        }
        machine.submit_kernel(stream, local_sync_kernel);
        let ev = machine.create_event();
        machine.record_event(stream, ev);
        Some(ev)
    } else {
        machine.submit_kernel(stream, update_kernel);
        None
    };
    machine.callback(stream, callback_tag);
    ev
}

/// Runs the fault-tolerant simulation and returns the report.
pub fn simulate_robust(config: &RobustSimConfig) -> SimReport {
    simulate_robust_with_machine(config).0
}

/// Runs the fault-tolerant simulation, also returning the machine.
///
/// # Panics
/// Panics on invalid configurations (see [`simulate_with_machine`]) or a
/// non-CROSSBOW engine, and if the machine deadlocks (a callback that
/// never arrives).
pub fn simulate_robust_with_machine(config: &RobustSimConfig) -> (SimReport, Machine) {
    let sim = &config.sim;
    assert_eq!(
        sim.kind,
        EngineKind::Crossbow,
        "the robust driver simulates the CROSSBOW engine"
    );
    assert!(sim.gpus >= 1, "need at least one GPU");
    assert!(sim.learners_per_gpu >= 1, "need at least one learner");
    assert!(sim.batch_per_learner >= 1, "need a batch");
    assert!(
        sim.iterations > sim.warmup,
        "need measured iterations after warmup"
    );
    assert!(config.slow_factor > 1.0, "slow factor must exceed 1");

    let mut machine_config =
        MachineConfig::titan_x_server(sim.gpus).with_faults(config.faults.clone());
    machine_config.record_trace = sim.record_trace;
    let mut machine = Machine::new(machine_config);

    let p = &sim.profile;
    let m = sim.learners_per_gpu;
    let gpus = sim.gpus;
    let kernels = learn_kernels(sim);
    let input_bytes = (sim.batch_per_learner as u64) * p.bytes_per_sample;
    let model_bytes = p.model_bytes();

    let mut learner_streams: Vec<Vec<StreamId>> = Vec::with_capacity(gpus);
    let mut sync_streams: Vec<StreamId> = Vec::with_capacity(gpus);
    for g in 0..gpus {
        let dev = machine.device(g);
        learner_streams.push((0..m).map(|_| machine.create_stream(dev)).collect());
        sync_streams.push(machine.create_stream(dev));
    }

    let local_sync_kernel = KernelDesc::memory("local-sync", 3 * model_bytes, 2);
    let update_kernel = KernelDesc::memory("update", 2 * model_bytes, 2);
    let reduce_kernel = KernelDesc::memory("reduce-local", (m as u64) * model_bytes, 2);
    let apply_kernel = KernelDesc::memory("apply-average", 2 * model_bytes, 2);

    let mut counters = FaultCounters::default();
    let mut active = vec![true; gpus];
    let mut slow_streak = vec![0u32; gpus];
    let mut healthy_streak = vec![0u32; gpus];
    let mut last_avg: Vec<Option<EventId>> = vec![None; gpus];
    let mut learn_done: Vec<Completion> = Vec::new();

    for iter in config.start_iter..sim.iterations {
        // A scheduled host crash kills the whole training process: no
        // orderly teardown, no further iterations. Only the durable
        // checkpoint store survives; a fresh run with `start_iter` set to
        // the last checkpoint replays the remaining work.
        if let Some(t) = config.faults.host_crash_at() {
            if machine.now() >= t {
                counters.host_crashes += 1;
                break;
            }
        }
        let sync = sim.tau.is_some_and(|t| iter % t == 0);
        let iter_start = machine.now();

        // Phase 1: learning tasks on EVERY GPU — quarantined GPUs keep
        // training against their (stale) local average model, which is
        // both SMA-legal and what lets us observe their recovery.
        let mut learn_ev: Vec<Option<EventId>> = vec![None; gpus * m];
        for g in 0..gpus {
            for (l, &stream) in learner_streams[g].iter().enumerate() {
                let learner = g * m + l;
                learn_ev[learner] = submit_learn_task(
                    &mut machine,
                    stream,
                    &kernels,
                    input_bytes,
                    sync,
                    last_avg[g],
                    local_sync_kernel,
                    update_kernel,
                    tag(iter, learner),
                );
            }
        }

        // Await every learner callback; retry failed tasks on the same
        // stream (the sticky error is cleared once observed).
        let mut outstanding = gpus * m;
        let mut retries_left = vec![config.max_retries; gpus * m];
        let mut gpu_done = vec![iter_start; gpus];
        while outstanding > 0 {
            let c = machine
                .run_until_callback()
                .expect("deadlock: learner callbacks missing");
            debug_assert_eq!(c.tag & SYNC_TAG, 0, "unexpected sync callback");
            let learner = (c.tag & 0xFFFF_FFFF) as usize;
            let g = learner / m;
            if c.outcome.is_success() || retries_left[learner] == 0 {
                // Done (or given up: the replica skips this iteration).
                outstanding -= 1;
                if c.time > gpu_done[g] {
                    gpu_done[g] = c.time;
                }
                if c.outcome.is_success() {
                    learn_done.push(c);
                }
            } else {
                retries_left[learner] -= 1;
                counters.task_retries += 1;
                let attempt = config.max_retries - retries_left[learner];
                let stream = learner_streams[g][learner % m];
                machine.delay(stream, backoff_for(config, attempt), "retry-backoff");
                learn_ev[learner] = submit_learn_task(
                    &mut machine,
                    stream,
                    &kernels,
                    input_bytes,
                    sync,
                    last_avg[g],
                    local_sync_kernel,
                    update_kernel,
                    c.tag,
                );
            }
        }

        // Phase 2: straggler bookkeeping from the observed per-GPU spans.
        let spans: Vec<f64> = (0..gpus)
            .map(|g| (gpu_done[g] - iter_start).as_secs_f64())
            .collect();
        let mut sorted = spans.clone();
        sorted.sort_by(f64::total_cmp);
        // Lower median: with an even GPU count the baseline must come
        // from the healthy half, or a straggler inflates its own yardstick.
        let median = sorted[(gpus - 1) / 2];
        for g in 0..gpus {
            let slow = median > 0.0 && spans[g] > config.slow_factor * median;
            if slow {
                slow_streak[g] += 1;
                healthy_streak[g] = 0;
            } else {
                healthy_streak[g] += 1;
                slow_streak[g] = 0;
            }
            let active_count = active.iter().filter(|&&a| a).count();
            if active[g] && slow_streak[g] >= config.quarantine_after && active_count > 1 {
                active[g] = false;
                counters.quarantines += 1;
            } else if !active[g] && healthy_streak[g] >= config.rejoin_after {
                active[g] = true;
                counters.rejoins += 1;
            }
        }

        // Phase 3: global synchronisation across the *active* group only,
        // retried wholesale with backoff when the collective fails.
        if sync {
            let group: Vec<usize> = (0..gpus).filter(|&g| active[g]).collect();
            for &g in &group {
                let ss = sync_streams[g];
                for &ev in learn_ev[g * m..(g + 1) * m].iter().flatten() {
                    machine.wait_event(ss, ev);
                }
                machine.submit_kernel(ss, reduce_kernel);
            }
            let group_streams: Vec<StreamId> = group.iter().map(|&g| sync_streams[g]).collect();
            let mut attempt = 0u32;
            loop {
                machine.all_reduce(&group_streams, model_bytes, "allreduce");
                let mut avg_ev: Vec<(usize, EventId)> = Vec::with_capacity(group.len());
                for &g in &group {
                    let ss = sync_streams[g];
                    machine.submit_kernel(ss, apply_kernel);
                    let ev = machine.create_event();
                    machine.record_event(ss, ev);
                    avg_ev.push((g, ev));
                    machine.callback(ss, SYNC_TAG | tag(iter, g));
                }
                let mut failed = false;
                for _ in 0..group.len() {
                    let c = machine
                        .run_until_callback()
                        .expect("deadlock: global sync callbacks missing");
                    debug_assert_ne!(c.tag & SYNC_TAG, 0, "unexpected learner callback");
                    if !c.outcome.is_success() {
                        failed = true;
                    }
                }
                if !failed {
                    for (g, ev) in avg_ev {
                        last_avg[g] = Some(ev);
                    }
                    break;
                }
                if attempt >= config.max_retries {
                    // Give up: replicas continue against the previous
                    // average model (SMA tolerates a skipped sync).
                    counters.dropped_syncs += 1;
                    break;
                }
                attempt += 1;
                counters.sync_retries += 1;
                for &s in &group_streams {
                    machine.delay(s, backoff_for(config, attempt), "sync-backoff");
                }
            }
        }
    }

    while machine.step() {}
    assert!(machine.is_quiescent(), "work left behind");
    counters.injected = machine.fault_stats();

    // Throughput from the *successful* learning-task completions. A run
    // cut short by a host crash may have few (or zero) of them; it still
    // deserves a report — with zero throughput — rather than a panic, so
    // a resuming driver can inspect the counters.
    let iter_of = |tag: u64| (tag >> 32) as usize;
    let warm_end = if sim.warmup == 0 {
        SimTime::ZERO
    } else {
        learn_done
            .iter()
            .filter(|c| iter_of(c.tag) == sim.warmup - 1)
            .map(|c| c.time)
            .max()
            .unwrap_or(SimTime::ZERO)
    };
    let end = learn_done.iter().map(|c| c.time).max();
    let measured = learn_done
        .iter()
        .filter(|c| iter_of(c.tag) >= sim.warmup)
        .count();
    let completed_iters = learn_done
        .iter()
        .map(|c| iter_of(c.tag) + 1)
        .max()
        .unwrap_or(0);
    let measured_iters = completed_iters.saturating_sub(sim.warmup);
    let span = end.map_or(0.0, |e| (e - warm_end).as_secs_f64());
    let (throughput, iteration_time) = if span > 0.0 && measured_iters > 0 {
        let images = (measured * sim.batch_per_learner) as f64;
        (
            images / span,
            SimDuration::from_secs_f64(span / measured_iters as f64),
        )
    } else {
        (0.0, SimDuration::ZERO)
    };
    let utilisation = (0..gpus)
        .map(|g| machine.utilisation(machine.device(g)))
        .sum::<f64>()
        / gpus as f64;
    let overlap = trace_overlap(&machine, sim.record_trace);
    let report = SimReport {
        throughput,
        iteration_time,
        utilisation,
        total_time: machine.now(),
        aggregate_batch: sim.aggregate_batch(),
        faults: counters,
        overlap,
    };
    (report, machine)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resnet32() -> ModelProfile {
        ModelProfile::resnet32()
    }

    #[test]
    fn crossbow_single_learner_throughput_is_paper_scale() {
        // Paper Figure 12a: ResNet-32, b = 64, 1 GPU, m = 1 trains at
        // roughly 2-3k images/s.
        let report = simulate(&SimConfig::crossbow(resnet32(), 1, 1, 64));
        assert!(
            (1_500.0..5_000.0).contains(&report.throughput),
            "throughput {} images/s",
            report.throughput
        );
    }

    #[test]
    fn multiple_learners_raise_throughput_then_saturate() {
        // Figure 12a: m = 4 beats m = 1 on one GPU; gains taper.
        let t = |m| simulate(&SimConfig::crossbow(resnet32(), 1, m, 64)).throughput;
        let (t1, t2, t4) = (t(1), t(2), t(4));
        assert!(t2 > t1 * 1.1, "m=2 {t2} should beat m=1 {t1}");
        assert!(t4 > t2, "m=4 {t4} should beat m=2 {t2}");
        let gain12 = t2 / t1;
        let gain24 = t4 / t2;
        assert!(gain24 < gain12, "gains must taper: {gain12} then {gain24}");
    }

    #[test]
    fn baseline_scales_with_gpus_at_constant_per_gpu_batch() {
        // Figure 2's linear regime: constant per-GPU batch.
        let t = |g| simulate(&SimConfig::baseline(resnet32(), g, 128)).throughput;
        let (t1, t8) = (t(1), t(8));
        let speedup = t8 / t1;
        assert!(
            (5.0..8.5).contains(&speedup),
            "8-GPU speed-up {speedup} should be near-linear"
        );
    }

    #[test]
    fn baseline_scales_poorly_with_shrinking_per_gpu_batch() {
        // Figure 2's sub-linear regime: constant aggregate batch 64.
        let t = |g: usize| simulate(&SimConfig::baseline(resnet32(), g, 64 / g)).throughput;
        let speedup = t(8) / t(1);
        assert!(
            speedup < 5.0,
            "aggregate-64 speed-up {speedup} must be sub-linear"
        );
    }

    #[test]
    fn sync_overhead_is_modest() {
        // Figure 17: throughput without synchronisation is only ~20-30%
        // higher than with tau = 1.
        let with_sync = simulate(&SimConfig::crossbow(resnet32(), 8, 1, 64)).throughput;
        let mut cfg = SimConfig::crossbow(resnet32(), 8, 1, 64);
        cfg.tau = None;
        let without = simulate(&cfg).throughput;
        let gain = without / with_sync;
        assert!(
            (1.0..1.6).contains(&gain),
            "no-sync gain {gain} should be modest"
        );
    }

    #[test]
    fn global_sync_overlaps_next_learning_tasks() {
        // Figure 8, point f: iteration N's all-reduce runs concurrently
        // with iteration N+1's learning kernels.
        let cfg = SimConfig::crossbow(resnet32(), 2, 2, 64).with_trace();
        let (_, machine) = simulate_with_machine(&cfg);
        assert!(
            machine.trace().labels_overlap("allreduce", "learn"),
            "global sync must overlap learning"
        );
    }

    #[test]
    fn traced_crossbow_run_reports_positive_overlap() {
        // The concurrent engine hides global synchronisation under the
        // next iteration's learning tasks, so a traced run must report a
        // strictly positive sync–compute overlap ratio.
        let cfg = SimConfig::crossbow(resnet32(), 2, 2, 64).with_trace();
        let report = simulate(&cfg);
        let overlap = report.overlap.expect("traced run reports overlap");
        assert!(overlap.ratio > 0.0, "{overlap}");
        assert!(overlap.sync_ns > 0);
        // Untraced runs skip the analysis entirely.
        let untraced = simulate(&SimConfig::crossbow(resnet32(), 2, 2, 64));
        assert!(untraced.overlap.is_none());
    }

    #[test]
    fn baseline_barrier_prevents_overlap() {
        let cfg = SimConfig::baseline(resnet32(), 2, 64).with_trace();
        let (_, machine) = simulate_with_machine(&cfg);
        assert!(
            !machine.trace().labels_overlap("grad-allreduce", "learn"),
            "the baseline's barrier forbids overlap"
        );
    }

    #[test]
    fn crossbow_beats_baseline_on_small_models() {
        // Figure 10d: LeNet tasks are ~1 ms, so the baseline's session
        // overhead dominates; CROSSBOW's task engine wins even at m = 1.
        let lenet = ModelProfile::lenet();
        let cb = simulate(&SimConfig::crossbow(lenet, 1, 1, 4)).throughput;
        let tf = simulate(&SimConfig::baseline(lenet, 1, 4)).throughput;
        assert!(
            cb > tf * 1.2,
            "CROSSBOW {cb} should clearly beat the baseline {tf} on LeNet"
        );
    }

    #[test]
    fn resnet50_learning_task_takes_paper_time() {
        // §5.2 quotes ~220 ms per ResNet-50 learning task (TF, b = 32).
        let report = simulate(&SimConfig::baseline(ModelProfile::resnet50(), 8, 32));
        let iter_ms = report.iteration_time.as_secs_f64() * 1e3;
        assert!(
            (150.0..400.0).contains(&iter_ms),
            "iteration took {iter_ms} ms"
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let cfg = SimConfig::crossbow(resnet32(), 4, 2, 64);
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.total_time, b.total_time);
    }

    #[test]
    fn epoch_time_follows_throughput() {
        let report = simulate(&SimConfig::crossbow(resnet32(), 8, 2, 64));
        let epoch = report.epoch_time(50_000).as_secs_f64();
        assert!((epoch - 50_000.0 / report.throughput).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one replica per GPU")]
    fn baseline_rejects_multiple_learners() {
        let mut cfg = SimConfig::baseline(resnet32(), 2, 64);
        cfg.learners_per_gpu = 2;
        let _ = simulate(&cfg);
    }

    #[test]
    fn utilisation_increases_with_learners() {
        let u = |m| simulate(&SimConfig::crossbow(resnet32(), 1, m, 16)).utilisation;
        assert!(u(4) > u(1), "more learners, busier SMs");
    }

    #[test]
    fn robust_driver_without_faults_reports_zero_counters() {
        let cfg =
            RobustSimConfig::new(SimConfig::crossbow(resnet32(), 2, 2, 64), FaultPlan::none());
        let report = simulate_robust(&cfg);
        assert_eq!(report.faults, FaultCounters::default());
        assert!(report.throughput > 0.0);
    }

    #[test]
    fn robust_throughput_is_close_to_the_plain_driver() {
        // Same dataflow, reactive submission: the robust driver trades the
        // sync/learn overlap for reactivity but must stay in the same
        // ballpark on a fault-free run.
        let sim = SimConfig::crossbow(resnet32(), 2, 2, 64);
        let plain = simulate(&sim).throughput;
        let robust = simulate_robust(&RobustSimConfig::new(sim, FaultPlan::none())).throughput;
        let ratio = robust / plain;
        assert!(
            (0.5..1.2).contains(&ratio),
            "robust {robust} vs plain {plain} (ratio {ratio})"
        );
    }

    #[test]
    fn failed_collective_is_retried_to_success() {
        let cfg = RobustSimConfig::new(
            SimConfig::crossbow(resnet32(), 2, 1, 64),
            FaultPlan::none().transient_collective(0, 1),
        );
        let report = simulate_robust(&cfg);
        assert!(report.faults.sync_retries >= 1, "{:?}", report.faults);
        assert_eq!(report.faults.dropped_syncs, 0);
        assert_eq!(report.faults.injected.collective_faults, 1);
    }

    #[test]
    fn failed_kernel_task_is_retried_on_the_same_stream() {
        let cfg = RobustSimConfig::new(
            SimConfig::crossbow(resnet32(), 1, 2, 64),
            FaultPlan::none().transient_kernel(0, 40, 1),
        );
        let report = simulate_robust(&cfg);
        assert!(report.faults.task_retries >= 1, "{:?}", report.faults);
        assert_eq!(report.faults.injected.kernel_faults, 1);
    }

    #[test]
    fn straggler_is_quarantined_and_rejoins() {
        // GPU 1 runs 4x slow for a mid-run window: the driver must shrink
        // the all-reduce group while it lags and restore it after.
        let mut sim = SimConfig::crossbow(resnet32(), 2, 1, 64);
        sim.iterations = 30;
        let probe = simulate(&sim).total_time;
        let mid = SimTime::ZERO + SimDuration::from_nanos(probe.as_nanos() / 4);
        let until = SimTime::ZERO + SimDuration::from_nanos(probe.as_nanos() / 2);
        let cfg = RobustSimConfig::new(sim, FaultPlan::none().straggler(1, mid, until, 4.0));
        let report = simulate_robust(&cfg);
        assert!(report.faults.quarantines >= 1, "{:?}", report.faults);
        assert!(report.faults.rejoins >= 1, "{:?}", report.faults);
        assert!(report.faults.injected.straggler_kernels > 0);
    }

    #[test]
    fn host_crash_aborts_the_run_and_resume_finishes_it() {
        let sim = SimConfig::crossbow(resnet32(), 2, 1, 64);
        let probe = simulate(&sim).total_time;
        let mid = SimTime::ZERO + SimDuration::from_nanos(probe.as_nanos() / 2);
        let crashed = simulate_robust(&RobustSimConfig::new(
            sim.clone(),
            FaultPlan::none().host_crash(mid),
        ));
        assert_eq!(crashed.faults.host_crashes, 1);
        // A fresh process resumes the remaining iterations.
        let resumed =
            simulate_robust(&RobustSimConfig::new(sim, FaultPlan::none()).with_start_iter(12));
        assert!(resumed.throughput > 0.0);
        assert_eq!(resumed.faults.host_crashes, 0);
    }

    #[test]
    fn immediate_host_crash_yields_a_zero_throughput_report() {
        let cfg = RobustSimConfig::new(
            SimConfig::crossbow(resnet32(), 1, 1, 64),
            FaultPlan::none().host_crash(SimTime::ZERO),
        );
        let report = simulate_robust(&cfg);
        assert_eq!(report.faults.host_crashes, 1);
        assert_eq!(report.throughput, 0.0, "no work, no throughput — no panic");
    }

    #[test]
    fn robust_reports_are_deterministic() {
        let sim = SimConfig::crossbow(resnet32(), 4, 2, 64);
        let horizon = SimDuration::from_secs_f64(simulate(&sim).total_time.as_secs_f64());
        let plan = FaultPlan::from_seed(7, 4, horizon);
        let cfg = RobustSimConfig::new(sim, plan);
        let a = simulate_robust(&cfg);
        let b = simulate_robust(&cfg);
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.faults, b.faults);
    }
}
