//! The `crossbow` command-line interface.
//!
//! ```text
//! crossbow train    --model resnet-32 --gpus 8 --learners 2 --batch 64
//! crossbow simulate --model resnet-50 --gpus 8 --learners 2 --batch 16
//! crossbow autotune --model vgg-16 --gpus 1
//! crossbow models
//! ```
//!
//! `train` runs the full session (simulated hardware + real training on
//! the synthetic benchmark); `simulate` only measures hardware
//! efficiency; `autotune` shows Algorithm 2's decisions; `serve` trains
//! a small model while serving it under load with micro-batching and
//! hot-swapped snapshots; `models` lists the benchmarks.

use crossbow::autotuner::tune_to_convergence;
use crossbow::benchmark::Benchmark;
use crossbow::comms::{
    demo_algo, demo_task, run_chaos, run_standby, run_worker_resilient_with_data,
    run_worker_with_data, ChaosOptions, ChaosScenario, ClusterEvent, Coordinator, DistConfig,
    DistReport, NetFaultPlan, SimPhase, SimPhaseReport, StandbyConfig, StandbyEvent,
    StandbyOutcome, Topology, WorkerConfig, WorkerEvent,
};
use crossbow::engine::{AlgorithmKind, Session, SessionConfig};
use crossbow::exec_sim::{
    simulate, simulate_robust, simulate_with_machine, RobustSimConfig, SimConfig,
};
use crossbow::fleet::{
    run_fleet_load, Arrival, AutoscalerConfig, CandidateMode, Fleet, FleetConfig, FleetLoadReport,
    SloClass, StreamSpec,
};
use crossbow::gpu_sim::{FaultPlan, SimDuration};
use crossbow::nn::ModelProfile;
use crossbow::serve::{
    train_and_serve, BatchConfig, LoadConfig, LoadMode, ServeConfig, TrainAndServeConfig,
};
use crossbow::sync::sma::{Sma, SmaConfig};
use crossbow::sync::trainer::PublishHook;
use crossbow::sync::TrainerConfig;
use crossbow::telemetry::{chrome, Telemetry, Timeline, HOST_DEVICE};
use crossbow::CheckpointConfig;
use crossbow_nn::zoo::mlp;
use crossbow_tensor::{Precision, Rng};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "train" => cmd_train(rest),
        "data" => cmd_data(rest),
        "dist-train" => cmd_dist_train(rest),
        "chaos" => cmd_chaos(rest),
        "simulate" => cmd_simulate(rest),
        "autotune" => cmd_autotune(rest),
        "serve" => cmd_serve(rest),
        "fleet" => cmd_fleet(rest),
        "models" => cmd_models(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
crossbow — CROSSBOW (VLDB 2019) reproduction

USAGE:
    crossbow train    [--model NAME] [--gpus N] [--learners M|auto]
                      [--batch B] [--algorithm sma|ssgd|easgd|hier]
                      [--tau T] [--epochs E] [--target ACC] [--seed S]
                      [--trace FILE]
    crossbow data pack    --dir DIR [--classes C] [--dim D] [--samples N]
                      [--noise F] [--seed S] [--samples-per-shard N]
                      [--page-samples N]
    crossbow data inspect --dir DIR
    crossbow data verify  --dir DIR
    crossbow dist-train --role coordinator [--workers N] [--topology ps|ring]
                      [--algo sma|ssgd] [--epochs E] [--batch B] [--seed S]
                      [--init-seed S] [--bind ADDR] [--checkpoint-dir DIR]
                      [--progress-every I] [--fault-seed S] [--drop P]
                      [--delay-prob P] [--delay-us U] [--disconnect-after N]
                      [--only-conn ID] [--partition-start F] [--partition-len F]
                      [--heartbeat-timeout-ms T] [--heartbeat-interval-ms T]
                      [--work-resend-ms T] [--join-timeout-ms T]
                      [--hello-timeout-ms T] [--lease-interval-ms T]
                      [--lease-timeout-ms T] [--state-every I] [--term N]
                      [--data-dir DIR]
    crossbow dist-train --role standby --connect ADDR [--bind ADDR]
                      [--priority P] [--peers A,B,...] [--workers N]
                      [--topology ps|ring] [--algo sma|ssgd] [--epochs E]
                      [--batch B] [--seed S] [--init-seed S]
                      [--progress-every I] [+ the coordinator timing flags]
    crossbow dist-train --role worker --connect ADDR[,FALLBACK...]
                      [--rejoin 0|1] [--failover-retries N] [--jitter-seed S]
                      [--data-dir DIR]
    crossbow chaos    --scenario kill-primary|partition-heal|cascade
                      [--seed S] [--topology ps|ring] | --list 1
    crossbow simulate [--model NAME] [--gpus N] [--learners M] [--batch B]
                      [--tau T|inf] [--trace FILE]
    crossbow autotune [--model NAME] [--gpus N] [--batch B]
    crossbow serve    [--workers N] [--max-batch B] [--max-delay-us U]
                      [--mode closed|open] [--clients C] [--requests R]
                      [--rate RPS] [--epochs E] [--publish-every I]
                      [--precision f32|bf16|int8] [--seed S] [--trace FILE]
    crossbow fleet    [--models N] [--workers N] [--max-batch B]
                      [--requests R] [--rate RPS] [--canary-pct P]
                      [--precision f32|bf16|int8] [--autoscale 0|1]
                      [--seed S] [--trace FILE]
    crossbow models

MODELS: lenet, resnet-32, vgg-16, resnet-50 (default: resnet-32)

--trace writes a Chrome Trace Event JSON file; open it in
chrome://tracing or https://ui.perfetto.dev to inspect the timeline.";

/// Writes Chrome Trace Event JSON to `path` and reports where it went.
fn write_trace(path: &str, json: &str, spans: usize) -> Result<(), String> {
    std::fs::write(path, json).map_err(|e| format!("cannot write trace `{path}`: {e}"))?;
    println!("trace: {spans} spans -> {path} (open in chrome://tracing)");
    Ok(())
}

/// Minimal `--key value` parser.
struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Flags<'a> {
    fn parse(args: &'a [String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got `{key}`"))?;
            let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            pairs.push((key, value.as_str()));
        }
        Ok(Flags { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got `{v}`")),
        }
    }

    fn benchmark(&self) -> Result<Benchmark, String> {
        let name = self.get("model").unwrap_or("resnet-32");
        Benchmark::by_name(name)
            .ok_or_else(|| format!("unknown model `{name}` (try `crossbow models`)"))
    }

    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), String> {
        for (key, _) in &self.pairs {
            if !allowed.contains(key) {
                return Err(format!("unknown flag --{key}"));
            }
        }
        Ok(())
    }
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.reject_unknown(&[
        "model",
        "gpus",
        "learners",
        "batch",
        "algorithm",
        "tau",
        "epochs",
        "target",
        "seed",
        "trace",
    ])?;
    let benchmark = flags.benchmark()?;
    let gpus = flags.parse_num("gpus", 1usize)?;
    let batch = flags.parse_num("batch", benchmark.profile.default_batch)?;
    let tau = flags.parse_num("tau", 1usize)?;
    let algorithm = match flags.get("algorithm").unwrap_or("sma") {
        "sma" => AlgorithmKind::Sma { tau },
        "ssgd" => AlgorithmKind::SSgd,
        "easgd" => AlgorithmKind::EaSgd { tau },
        "hier" => AlgorithmKind::HierarchicalSma,
        other => return Err(format!("unknown algorithm `{other}`")),
    };
    let mut config = SessionConfig::new(benchmark)
        .with_gpus(gpus)
        .with_batch(batch)
        .with_algorithm(algorithm)
        .with_seed(flags.parse_num("seed", 42u64)?);
    match flags.get("learners") {
        None | Some("auto") => {}
        Some(m) => {
            config = config.with_learners_per_gpu(
                m.parse()
                    .map_err(|_| "--learners expects a number or `auto`")?,
            )
        }
    }
    if let Some(e) = flags.get("epochs") {
        config = config.with_epochs(e.parse().map_err(|_| "--epochs expects a number")?);
    }
    if let Some(t) = flags.get("target") {
        config = config.with_target(t.parse().map_err(|_| "--target expects a number")?);
    }
    let telemetry = flags.get("trace").map(|_| Telemetry::wall());
    if let Some(t) = &telemetry {
        config = config.with_telemetry(t.clone());
    }
    let report = Session::new(config)
        .run()
        .map_err(|e| format!("checkpoint store: {e}"))?;
    println!("{}", report.summary());
    println!();
    println!("accuracy per epoch:");
    for (e, acc) in report.curve.epoch_accuracy.iter().enumerate() {
        println!("  epoch {:>3}: {:.4}", e + 1, acc);
    }
    if let (Some(path), Some(t)) = (flags.get("trace"), &telemetry) {
        let timeline = t.recorder.timeline();
        // Simulated-GPU spans sit on device pids 0..g; host-side spans
        // (training epochs, evaluation, checkpoints) on the HOST pid.
        let mut names: Vec<(u32, String)> =
            (0..gpus as u32).map(|d| (d, format!("gpu {d}"))).collect();
        names.push((HOST_DEVICE, "host".to_string()));
        let names: Vec<(u32, &str)> = names.iter().map(|(d, n)| (*d, n.as_str())).collect();
        println!();
        if let Some(overlap) = report.sim.overlap {
            println!("sync-compute overlap: {overlap}");
        }
        write_trace(
            path,
            &chrome::to_chrome_json(timeline.spans(), &names),
            timeline.len(),
        )?;
    }
    Ok(())
}

/// `crossbow data pack|inspect|verify`: the on-disk data plane. `pack`
/// freezes a synthetic Gaussian-mixture dataset into checksummed,
/// mmap-ready shards; `inspect` prints the shard map; `verify`
/// re-validates every shard (header, index, every page checksum) and
/// fails when any is corrupt.
fn cmd_data(args: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err(format!(
            "data needs a subcommand: pack|inspect|verify\n{USAGE}"
        ));
    };
    let flags = Flags::parse(rest)?;
    match sub.as_str() {
        "pack" => data_pack(&flags),
        "inspect" => data_inspect(&flags),
        "verify" => data_verify(&flags),
        other => Err(format!(
            "unknown data subcommand `{other}` (pack|inspect|verify)"
        )),
    }
}

fn data_dir_flag<'a>(flags: &'a Flags<'_>) -> Result<&'a str, String> {
    flags
        .get("dir")
        .ok_or_else(|| "--dir DIR is required".into())
}

fn data_pack(flags: &Flags<'_>) -> Result<(), String> {
    flags.reject_unknown(&[
        "dir",
        "classes",
        "dim",
        "samples",
        "noise",
        "seed",
        "samples-per-shard",
        "page-samples",
    ])?;
    let dir = data_dir_flag(flags)?;
    let classes = flags.parse_num("classes", 4usize)?;
    let dim = flags.parse_num("dim", 6usize)?;
    let samples = flags.parse_num("samples", 2048usize)?;
    let noise = flags.parse_num("noise", 0.35f32)?;
    let seed = flags.parse_num("seed", 7u64)?;
    let cfg = crossbow::shard::PackConfig {
        samples_per_shard: flags.parse_num("samples-per-shard", 512usize)?,
        page_samples: flags.parse_num("page-samples", 64usize)?,
        ..crossbow::shard::PackConfig::default()
    };
    let set = crossbow::data::synth::gaussian_mixture(classes, dim, samples, noise, seed);
    let started = std::time::Instant::now();
    let report =
        crossbow::shard::pack_source(dir.as_ref(), &set, cfg).map_err(|e| format!("pack: {e}"))?;
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    println!(
        "PACKED dir={dir} shards={} samples={} bytes={} mb_per_s={:.1}",
        report.shards,
        report.samples,
        report.bytes,
        report.bytes as f64 / (1024.0 * 1024.0) / secs,
    );
    Ok(())
}

/// One shard file's validation outcome, by file name.
type ShardScan = (
    String,
    Result<crossbow::shard::ShardReader, crossbow::shard::ShardError>,
);

/// Scans `dir` for sealed shard files in name order, validating each.
fn scan_shards(dir: &str) -> Result<Vec<ShardScan>, String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read `{dir}`: {e}"))?
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| {
            name.starts_with("shard-") && name.ends_with(&format!(".{}", crossbow::shard::FILE_EXT))
        })
        .collect();
    names.sort();
    Ok(names
        .into_iter()
        .map(|name| {
            let opened = crossbow::shard::ShardReader::open(&std::path::Path::new(dir).join(&name));
            (name, opened)
        })
        .collect())
}

fn data_inspect(flags: &Flags<'_>) -> Result<(), String> {
    flags.reject_unknown(&["dir"])?;
    let dir = data_dir_flag(flags)?;
    let set = crossbow::shard::ShardedDataset::open(dir.as_ref())
        .map_err(|e| format!("open `{dir}`: {e}"))?;
    use crossbow::data::SampleSource;
    println!(
        "dataset: {} samples, {} classes, sample shape {:?}",
        set.len(),
        set.classes(),
        set.sample_shape().dims(),
    );
    println!(
        "shards : {} valid ({} bytes on disk, mmap={})",
        set.shard_count(),
        set.total_file_bytes(),
        set.fully_mmapped(),
    );
    for (name, opened) in scan_shards(dir)? {
        match opened {
            Ok(reader) => println!(
                "  {name}: {} samples, {} bytes, page size {}",
                reader.samples(),
                reader.file_bytes(),
                reader.page_samples(),
            ),
            Err(err) => println!("  {name}: CORRUPT ({err})"),
        }
    }
    for (path, err) in set.skipped() {
        println!("skipped: {} ({err})", path.display());
    }
    Ok(())
}

fn data_verify(flags: &Flags<'_>) -> Result<(), String> {
    flags.reject_unknown(&["dir"])?;
    let dir = data_dir_flag(flags)?;
    let mut valid = 0usize;
    let mut corrupt = Vec::new();
    for (name, opened) in scan_shards(dir)? {
        match opened {
            Ok(reader) => {
                println!("OK {name} samples={}", reader.samples());
                valid += 1;
            }
            Err(err) => {
                println!("BAD {name} error={err}");
                corrupt.push(name);
            }
        }
    }
    println!("VERIFIED valid={valid} corrupt={}", corrupt.len());
    if corrupt.is_empty() && valid > 0 {
        Ok(())
    } else if valid == 0 {
        Err(format!("no valid shards under `{dir}`"))
    } else {
        Err(format!("corrupt shards: {}", corrupt.join(", ")))
    }
}

/// `dist-train`: fault-tolerant multi-process training on the comms demo
/// task. One process runs `--role coordinator`; the others `--role
/// worker --connect ADDR`. Machine-readable markers go to stdout
/// (`LISTENING`, `JOINED`, `EVICTED`, `RESENT`, `PROGRESS`, `REPORT`) so
/// harnesses — and the crash-recovery integration test — can script it.
/// With `--data-dir` the coordinator trains from a packed shard
/// directory and ships sample *indices*; workers then need the same
/// `--data-dir` to gather batches from their own mmap of the shards.
fn cmd_dist_train(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    match flags.get("role").unwrap_or("coordinator") {
        "coordinator" => dist_coordinator(&flags),
        "standby" => dist_standby(&flags),
        "worker" => dist_worker(&flags),
        other => Err(format!(
            "unknown role `{other}` (coordinator|standby|worker)"
        )),
    }
}

/// The coordinator timing knobs shared by the coordinator and standby
/// roles; all validated together by `DistConfig::validate` at bind time.
const DIST_TIMING_FLAGS: &[&str] = &[
    "heartbeat-timeout-ms",
    "heartbeat-interval-ms",
    "work-resend-ms",
    "join-timeout-ms",
    "hello-timeout-ms",
    "lease-interval-ms",
    "lease-timeout-ms",
    "state-every",
    "term",
];

fn apply_timing_flags(flags: &Flags<'_>, dist: &mut DistConfig) -> Result<(), String> {
    let ms = |flags: &Flags<'_>, key: &str, default: Duration| -> Result<Duration, String> {
        Ok(Duration::from_millis(
            flags.parse_num(key, default.as_millis() as u64)?,
        ))
    };
    dist.heartbeat_timeout = ms(flags, "heartbeat-timeout-ms", dist.heartbeat_timeout)?;
    dist.heartbeat_interval = ms(flags, "heartbeat-interval-ms", dist.heartbeat_interval)?;
    dist.work_resend = ms(flags, "work-resend-ms", dist.work_resend)?;
    dist.join_timeout = ms(flags, "join-timeout-ms", dist.join_timeout)?;
    dist.hello_timeout = ms(flags, "hello-timeout-ms", dist.hello_timeout)?;
    dist.lease_interval = ms(flags, "lease-interval-ms", dist.lease_interval)?;
    dist.lease_timeout = ms(flags, "lease-timeout-ms", dist.lease_timeout)?;
    dist.state_every = flags.parse_num("state-every", dist.state_every)?;
    dist.term = flags.parse_num("term", dist.term)?;
    Ok(())
}

fn parse_topology(flags: &Flags<'_>) -> Result<Topology, String> {
    match flags.get("topology").unwrap_or("ps") {
        "ps" => Ok(Topology::Ps),
        "ring" => Ok(Topology::Ring),
        other => Err(format!("unknown topology `{other}` (ps|ring)")),
    }
}

fn cluster_event_hook() -> Arc<dyn Fn(ClusterEvent) + Send + Sync> {
    Arc::new(|event| match event {
        ClusterEvent::Joined { slot, rejoin } => {
            println!("JOINED slot={slot} rejoin={rejoin}")
        }
        ClusterEvent::Evicted { slot, reason } => {
            println!("EVICTED slot={slot} reason={reason}")
        }
        ClusterEvent::Resent { iter, attempt } => {
            println!("RESENT iter={iter} attempt={attempt}")
        }
        ClusterEvent::StandbyJoined { priority } => {
            println!("STANDBY-JOINED priority={priority}")
        }
    })
}

fn print_report(report: &DistReport) {
    println!(
        "REPORT evictions={} rejoins={} retries={} faults_injected={} bytes_sent={} \
         bytes_recv={} workers={} term={} checksum={:016x} final_acc={:.4} epochs={} iterations={}",
        report.counters.evictions,
        report.counters.rejoins,
        report.counters.retries,
        report.faults_injected,
        report.bytes_sent,
        report.bytes_recv,
        report.workers,
        report.term,
        report.model_checksum,
        report.curve.final_accuracy,
        report.curve.epoch_accuracy.len(),
        report.curve.iterations,
    );
}

fn dist_coordinator(flags: &Flags<'_>) -> Result<(), String> {
    let mut allowed = vec![
        "role",
        "workers",
        "topology",
        "algo",
        "epochs",
        "batch",
        "seed",
        "init-seed",
        "bind",
        "checkpoint-dir",
        "progress-every",
        "fault-seed",
        "drop",
        "delay-prob",
        "delay-us",
        "disconnect-after",
        "only-conn",
        "partition-start",
        "partition-len",
        "data-dir",
    ];
    allowed.extend_from_slice(DIST_TIMING_FLAGS);
    flags.reject_unknown(&allowed)?;
    let workers = flags.parse_num("workers", 2usize)?;
    let topology = parse_topology(flags)?;
    let mut dist = DistConfig::new(topology, workers);
    // A shard directory switches the run to the real data plane: the
    // coordinator trains from disk and ships indices, not payloads.
    let shard_train = match flags.get("data-dir") {
        Some(dir) => {
            dist = dist.with_index_work();
            let set = crossbow::shard::ShardedDataset::open(dir.as_ref())
                .map_err(|e| format!("open shard dir `{dir}`: {e}"))?;
            println!(
                "DATA dir={dir} shards={} samples={} bytes={} mmap={}",
                set.shard_count(),
                crossbow::data::SampleSource::len(&set),
                set.total_file_bytes(),
                set.fully_mmapped(),
            );
            Some(set)
        }
        None => None,
    };
    apply_timing_flags(flags, &mut dist)?;
    if flags.get("fault-seed").is_some() || flags.get("partition-start").is_some() {
        let seed: u64 = flags.parse_num("fault-seed", 0u64)?;
        let mut plan = NetFaultPlan::seeded(seed)
            .drop(flags.parse_num("drop", 0.0f64)?)
            .delay(
                flags.parse_num("delay-prob", 0.0f64)?,
                Duration::from_micros(flags.parse_num("delay-us", 1000u64)?),
            );
        if let Some(n) = flags.get("disconnect-after") {
            plan = plan.disconnect_after(
                n.parse()
                    .map_err(|_| "--disconnect-after expects a number")?,
            );
        }
        if let Some(start) = flags.get("partition-start") {
            let start: u64 = start
                .parse()
                .map_err(|_| "--partition-start expects a frame index")?;
            let len: u64 = flags.parse_num("partition-len", 4u64)?;
            plan = plan.partition(start, start + len);
        }
        if let Some(id) = flags.get("only-conn") {
            plan = plan.only_conn(id.parse().map_err(|_| "--only-conn expects a number")?);
        }
        dist = dist.with_fault(plan);
    }
    let telemetry = Telemetry::disabled();
    let coordinator =
        Coordinator::bind(flags.get("bind").unwrap_or("127.0.0.1:0"), dist, telemetry)
            .map_err(|e| format!("bind failed: {e}"))?
            .with_events(cluster_event_hook());
    println!(
        "LISTENING {}",
        coordinator.local_addr().map_err(|e| e.to_string())?
    );

    let (net, train_set, test_set) = demo_task();
    let mut algo = demo_algo(
        &net,
        workers,
        flags.get("algo").unwrap_or("sma"),
        flags.parse_num("init-seed", 3u64)?,
    );
    let mut trainer = TrainerConfig::new(
        flags.parse_num("batch", 8usize)?,
        flags.parse_num("epochs", 4usize)?,
    )
    .with_seed(flags.parse_num("seed", 11u64)?)
    .with_publish(PublishHook::new(
        flags.parse_num("progress-every", 5u64)?,
        |iter, _| println!("PROGRESS iter={iter}"),
    ));
    let checkpoint_dir = flags.get("checkpoint-dir");
    if let Some(dir) = checkpoint_dir {
        trainer = trainer.with_checkpointing(CheckpointConfig::new(dir));
    }
    // Disk-backed runs partition the shard set across the worker slots.
    let train_from_disk: Option<&dyn crossbow::data::SampleSource> = match &shard_train {
        Some(set) => {
            let n = crossbow::data::SampleSource::len(set);
            trainer = trainer.with_partition(crossbow::data::PartitionPlan::even(n, workers));
            Some(set)
        }
        None => None,
    };
    let train_source: &dyn crossbow::data::SampleSource = train_from_disk.unwrap_or(&train_set);
    let report = if checkpoint_dir.is_some() {
        coordinator
            .resume(&net, train_source, &test_set, algo.as_mut(), &trainer)
            .map_err(|e| format!("checkpoint store: {e}"))?
    } else {
        coordinator.run(&net, train_source, &test_set, algo.as_mut(), &trainer)
    };
    print_report(&report);
    Ok(())
}

/// `--role standby`: bind an advertised listener, register with the
/// primary for state replication, and — if its leases stop — take over
/// and finish the run, printing the same `REPORT` line a coordinator
/// would.
fn dist_standby(flags: &Flags<'_>) -> Result<(), String> {
    let mut allowed = vec![
        "role",
        "connect",
        "bind",
        "priority",
        "peers",
        "workers",
        "topology",
        "algo",
        "epochs",
        "batch",
        "seed",
        "init-seed",
        "progress-every",
    ];
    allowed.extend_from_slice(DIST_TIMING_FLAGS);
    flags.reject_unknown(&allowed)?;
    let connect = flags
        .get("connect")
        .ok_or("--role standby needs --connect ADDR")?;
    let listener = std::net::TcpListener::bind(flags.get("bind").unwrap_or("127.0.0.1:0"))
        .map_err(|e| format!("bind failed: {e}"))?;
    println!(
        "STANDBY LISTENING {}",
        listener.local_addr().map_err(|e| e.to_string())?
    );
    let workers = flags.parse_num("workers", 2usize)?;
    let mut dist = DistConfig::new(parse_topology(flags)?, workers);
    apply_timing_flags(flags, &mut dist)?;
    dist.validate()?;
    let mut scfg = StandbyConfig::new(connect);
    scfg.priority = flags.parse_num("priority", 1u32)?;
    if let Some(peers) = flags.get("peers") {
        scfg.peers = peers.split(',').map(str::to_string).collect();
    }
    let trainer = TrainerConfig::new(
        flags.parse_num("batch", 8usize)?,
        flags.parse_num("epochs", 4usize)?,
    )
    .with_seed(flags.parse_num("seed", 11u64)?)
    .with_publish(PublishHook::new(
        flags.parse_num("progress-every", 5u64)?,
        |iter, _| println!("PROGRESS iter={iter}"),
    ));
    let (net, train_set, test_set) = demo_task();
    let algo_name = flags.get("algo").unwrap_or("sma").to_string();
    let init_seed = flags.parse_num("init-seed", 3u64)?;
    let outcome = run_standby(
        &net,
        &train_set,
        &test_set,
        &|k| demo_algo(&net, k, &algo_name, init_seed),
        &trainer,
        &dist,
        &scfg,
        listener,
        Telemetry::disabled(),
        Some(cluster_event_hook()),
        &|event| match event {
            StandbyEvent::Registered { term } => println!("STANDBY REGISTERED term={term}"),
            StandbyEvent::State { term, seq, .. } if seq % 100 == 1 => {
                println!("STANDBY STATE term={term} seq={seq}")
            }
            StandbyEvent::State { .. } => {}
            StandbyEvent::Deferred { peer, term } => {
                println!("STANDBY DEFERRED peer={peer} term={term}")
            }
            StandbyEvent::TakingOver { term } => println!("STANDBY TAKEOVER term={term}"),
        },
    )
    .map_err(|e| format!("standby failed: {e}"))?;
    match outcome {
        StandbyOutcome::PrimaryFinished => println!("STANDBY DONE primary-finished"),
        StandbyOutcome::TookOver(report) => print_report(&report),
    }
    Ok(())
}

fn dist_worker(flags: &Flags<'_>) -> Result<(), String> {
    flags.reject_unknown(&[
        "role",
        "connect",
        "rejoin",
        "failover-retries",
        "jitter-seed",
        "data-dir",
    ])?;
    let connect = flags
        .get("connect")
        .ok_or("--role worker needs --connect ADDR[,FALLBACK...]")?;
    let mut addrs = connect.split(',').map(str::to_string);
    let mut cfg = WorkerConfig::new(addrs.next().expect("split yields at least one"));
    cfg.fallbacks = addrs.collect();
    cfg.rejoin = matches!(flags.get("rejoin"), Some("1") | Some("true"));
    cfg.failover_retries = flags.parse_num("failover-retries", 0u32)?;
    cfg.jitter_seed = flags.parse_num("jitter-seed", 0u64)?;
    let data: Option<Arc<dyn crossbow::data::SampleSource>> = match flags.get("data-dir") {
        Some(dir) => {
            let set = crossbow::shard::ShardedDataset::open(dir.as_ref())
                .map_err(|e| format!("open shard dir `{dir}`: {e}"))?;
            println!(
                "WORKER DATA dir={dir} shards={} samples={} mmap={}",
                set.shard_count(),
                crossbow::data::SampleSource::len(&set),
                set.fully_mmapped(),
            );
            Some(Arc::new(set))
        }
        None => None,
    };
    let resilient = cfg.failover_retries > 0 || !cfg.fallbacks.is_empty();
    let (net, _, _) = demo_task();
    let telemetry = Telemetry::disabled();
    let on_event = |event: WorkerEvent| match event {
        WorkerEvent::Joined {
            slot,
            iterations,
            rejoin,
        } => println!("WORKER JOINED slot={slot} iter={iterations} rejoin={rejoin}"),
    };
    let outcome = if resilient {
        run_worker_resilient_with_data(&net, data, &cfg, &telemetry, &on_event)
    } else {
        run_worker_with_data(&net, data, &cfg, &telemetry, &on_event)
    }
    .map_err(|e| format!("worker failed: {e}"))?;
    println!(
        "WORKER DONE slot={} rounds={} joined_at={} sessions={}",
        outcome.slot, outcome.rounds, outcome.joined_at_iteration, outcome.sessions
    );
    Ok(())
}

/// `crossbow chaos`: run one named, seeded chaos scenario and print its
/// `CHAOS-REPORT` marker. Exits non-zero when an invariant fails.
fn cmd_chaos(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.reject_unknown(&["scenario", "seed", "topology", "list"])?;
    if flags.get("list").is_some() {
        println!("chaos scenarios:");
        for s in ChaosScenario::all() {
            println!("  {}", s.name());
        }
        return Ok(());
    }
    let name = flags
        .get("scenario")
        .ok_or("chaos needs --scenario NAME (try --list 1)")?;
    let scenario = ChaosScenario::parse(name)
        .ok_or_else(|| format!("unknown scenario `{name}` (try --list 1)"))?;
    let opts = ChaosOptions {
        scenario,
        seed: flags.parse_num("seed", 7u64)?,
        topology: parse_topology(&flags)?,
        binary: std::env::current_exe().ok(),
        sim: Some(sim_phase()),
    };
    let telemetry = Telemetry::disabled();
    let report = run_chaos(&opts, &telemetry, &|line| println!("{line}"));
    println!("{}", report.marker());
    println!(
        "chaos counters: scenarios={} kills={} failed={}",
        telemetry.metrics.counter("chaos.scenarios").get(),
        telemetry.metrics.counter("chaos.kills").get(),
        telemetry.metrics.counter("chaos.failed").get(),
    );
    if report.pass {
        Ok(())
    } else {
        Err(format!("chaos invariant violated: {}", report.marker()))
    }
}

/// The cascade scenario's GPU-simulation phase: a seeded straggler +
/// transient-collective plan on a 4-GPU ResNet-32 run under the robust
/// driver, summarised into a deterministic fingerprint.
fn sim_phase() -> SimPhase {
    Box::new(|seed| {
        let mut sim = SimConfig::crossbow(ModelProfile::resnet32(), 4, 1, 64);
        sim.iterations = 32;
        let horizon = simulate(&sim).total_time;
        let plan = FaultPlan::from_seed(seed, 4, SimDuration::from_nanos(horizon.as_nanos()));
        let report = simulate_robust(&RobustSimConfig::new(sim, plan));
        let c = &report.faults;
        let mut checksum = 0xcbf2_9ce4_8422_2325u64;
        for v in [
            report.total_time.as_nanos(),
            c.task_retries,
            c.sync_retries,
            c.dropped_syncs,
            c.quarantines,
            c.rejoins,
            c.injected.total(),
        ] {
            checksum ^= v;
            checksum = checksum.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SimPhaseReport {
            checksum,
            recovered: c.dropped_syncs == 0 && c.injected.total() > 0,
            faults: c.injected.total(),
        }
    })
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.reject_unknown(&["model", "gpus", "learners", "batch", "tau", "trace"])?;
    let benchmark = flags.benchmark()?;
    let gpus = flags.parse_num("gpus", 1usize)?;
    let m = flags.parse_num("learners", 1usize)?;
    let batch = flags.parse_num("batch", benchmark.profile.default_batch)?;
    let mut config = SimConfig::crossbow(benchmark.profile, gpus, m, batch);
    config.tau = match flags.get("tau") {
        None => Some(1),
        Some("inf") => None,
        Some(v) => Some(v.parse().map_err(|_| "--tau expects a number or `inf`")?),
    };
    let trace_path = flags.get("trace");
    config.record_trace = trace_path.is_some();
    let (report, machine) = simulate_with_machine(&config);
    println!(
        "{} on {gpus} GPU(s), m={m}, b={batch}:",
        benchmark.profile.name
    );
    println!("  throughput      : {:.0} images/s", report.throughput);
    println!("  iteration time  : {}", report.iteration_time);
    println!("  SM utilisation  : {:.0}%", report.utilisation * 100.0);
    println!(
        "  epoch time      : {}",
        report.epoch_time(benchmark.profile.train_samples)
    );
    if let Some(path) = trace_path {
        let timeline = Timeline::from_spans(machine.trace().to_spans());
        println!("  sync overlap    : {}", timeline.overlap());
        write_trace(path, &machine.trace().to_chrome_json(), timeline.len())?;
    }
    Ok(())
}

fn cmd_autotune(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.reject_unknown(&["model", "gpus", "batch"])?;
    let benchmark = flags.benchmark()?;
    let gpus = flags.parse_num("gpus", 1usize)?;
    let batch = flags.parse_num("batch", benchmark.profile.default_batch)?;
    let probe =
        |m: usize| simulate(&SimConfig::crossbow(benchmark.profile, gpus, m, batch)).throughput;
    let base = probe(1);
    let (chosen, observations) = tune_to_convergence(base * 0.05, 8, probe);
    println!("{} on {gpus} GPU(s), b={batch}:", benchmark.profile.name);
    for (m, t) in &observations {
        println!(
            "  m={m}: {t:.0} images/s{}",
            if *m == chosen { "   <- chosen" } else { "" }
        );
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.reject_unknown(&[
        "workers",
        "max-batch",
        "max-delay-us",
        "mode",
        "clients",
        "requests",
        "rate",
        "epochs",
        "publish-every",
        "seed",
        "trace",
        "precision",
    ])?;
    let seed = flags.parse_num("seed", 42u64)?;
    let precision: Precision = flags.get("precision").unwrap_or("f32").parse()?;
    let mode = match flags.get("mode").unwrap_or("closed") {
        "closed" => LoadMode::Closed {
            clients: flags.parse_num("clients", 4usize)?,
            requests_per_client: flags.parse_num("requests", 200usize)?,
        },
        "open" => LoadMode::Open {
            rps: flags.parse_num("rate", 2000.0f64)?,
            requests: flags.parse_num("requests", 500usize)?,
        },
        other => return Err(format!("unknown mode `{other}` (closed|open)")),
    };
    let telemetry = flags.get("trace").map(|_| Telemetry::wall());
    let mut serve_config = ServeConfig::new(flags.parse_num("workers", 2usize)?);
    serve_config.batch = BatchConfig {
        max_batch: flags.parse_num("max-batch", 16usize)?,
        max_delay: Duration::from_micros(flags.parse_num("max-delay-us", 2000u64)?),
        ..BatchConfig::default()
    };
    serve_config.telemetry = telemetry.clone();

    // A Gaussian-mixture task small enough that training and serving both
    // run in seconds on one core.
    let net = Arc::new(mlp(6, &[16], 4));
    let (train_set, test_set) = crossbow::data::synth::gaussian_mixture(4, 6, 2560, 0.25, seed)
        .split_at(2048)
        .expect("demo split is in range");
    let mut rng = Rng::new(seed);
    let initial = net.init_params(&mut rng);
    let mut algo = Sma::new(initial, 4, SmaConfig::default());

    let mut trainer = TrainerConfig::new(16, flags.parse_num("epochs", 4usize)?).with_seed(seed);
    if let Some(t) = &telemetry {
        trainer = trainer.with_telemetry(t.clone());
    }
    let config = TrainAndServeConfig {
        trainer,
        publish_every: flags.parse_num("publish-every", 20u64)?,
        serve: serve_config,
        load: LoadConfig {
            mode,
            seed,
            panic_client: None,
        },
        precision,
    };
    let report = train_and_serve(&net, &train_set, &test_set, &mut algo, &config);

    println!("train-and-serve (mlp on a 4-class Gaussian mixture)");
    println!("---------------------------------------------------");
    println!(
        "trained            : {} iterations, final accuracy {:.3}",
        report.curve.iterations, report.curve.final_accuracy
    );
    println!(
        "load               : {} submitted, {} ok, {} rejected, {} failed",
        report.load.submitted, report.load.ok, report.load.rejected, report.load.failed
    );
    println!(
        "snapshot versions  : {}..{} (monotonic per client: {})",
        report.load.min_version, report.load.max_version, report.load.versions_monotonic
    );
    println!("server             : {}", report.serve.summary());
    println!(
        "final precision    : {}{}",
        report.serve.precision,
        match report.serve.accuracy_delta {
            Some(d) => format!(" (accuracy delta vs f32: {d:+.4})"),
            None => String::new(),
        }
    );
    println!(
        "latency            : p50 {:?}  p95 {:?}  p99 {:?}",
        report.serve.request_latency.p50,
        report.serve.request_latency.p95,
        report.serve.request_latency.p99
    );
    if let (Some(path), Some(t)) = (flags.get("trace"), &telemetry) {
        let timeline = t.recorder.timeline();
        let json = chrome::to_chrome_json(timeline.spans(), &[(HOST_DEVICE, "host")]);
        write_trace(path, &json, timeline.len())?;
    }
    Ok(())
}

/// Prints the per-(model, class) goodput table for one load round.
fn print_fleet_round(label: &str, names: &[String], report: &FleetLoadReport) {
    println!("{label}:");
    for name in names {
        let classes = [SloClass::Interactive, SloClass::Standard, SloClass::Batch];
        let cells: Vec<String> = classes
            .iter()
            .map(|&c| format!("{c} {}", report.goodput(name, c)))
            .collect();
        println!("  {name}: goodput {}", cells.join(", "));
    }
    for s in &report.streams {
        if s.shed + s.rejected + s.failed > 0 {
            println!(
                "  {}/{}: {} shed, {} rejected, {} failed",
                s.model, s.class, s.shed, s.rejected, s.failed
            );
        }
    }
}

fn cmd_fleet(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.reject_unknown(&[
        "models",
        "workers",
        "max-batch",
        "requests",
        "rate",
        "canary-pct",
        "autoscale",
        "seed",
        "trace",
        "precision",
    ])?;
    let seed = flags.parse_num("seed", 42u64)?;
    let n_models = flags.parse_num("models", 3usize)?.max(1);
    let requests = flags.parse_num("requests", 120usize)?.max(8);
    let rate = flags.parse_num("rate", 1200.0f64)?;
    let canary_pct: u8 = flags.parse_num("canary-pct", 30u8)?.min(100);
    let precision: Precision = flags.get("precision").unwrap_or("f32").parse()?;
    let autoscale = flags.parse_num("autoscale", 1u8)? != 0;
    let telemetry = flags.get("trace").map(|_| Telemetry::wall());

    let config = FleetConfig {
        batch: BatchConfig {
            max_batch: flags.parse_num("max-batch", 4usize)?,
            max_delay: Duration::from_micros(500),
            queue_depth: 32,
        },
        initial_workers: flags.parse_num("workers", 1usize)?,
        work_stealing: true,
        // The forward pass is microseconds on these tiny models; a fixed
        // synthetic service time makes overload and scaling observable.
        synthetic_delay: Some(Duration::from_millis(5)),
        autoscaler: autoscale.then(|| AutoscalerConfig {
            slo_p99: Duration::from_millis(25),
            queue_high_water: 8,
            shrink_margin: 0.5,
            min_workers: 1,
            max_workers: 4,
            cooldown_ticks: 0,
            interval: None,
        }),
        telemetry: telemetry.clone(),
    };

    let net = Arc::new(mlp(6, &[16], 4));
    let names: Vec<String> = (0..n_models).map(|i| format!("model-{i}")).collect();
    let mut builder = Fleet::builder(config);
    for name in &names {
        builder = builder.model(name, Arc::clone(&net));
    }
    let fleet = builder.start();
    let mut rng = Rng::new(seed);
    for name in &names {
        let registry = fleet.registry(name).expect("just registered");
        registry
            .publish(net.init_params(&mut rng), 1)
            .map_err(|e| format!("publish {name}: {e}"))?;
    }
    let inputs: Vec<Vec<f32>> = (0..64)
        .map(|_| (0..6).map(|_| rng.uniform(-1.0, 1.0)).collect())
        .collect();
    let client = fleet.client();

    // Phase 1 — overload: every model floods with open-loop Batch
    // traffic past pool capacity while closed Interactive/Standard
    // streams keep submitting; queues fill, Batch work is shed first.
    let mut specs = Vec::new();
    for name in &names {
        specs.push(StreamSpec {
            model: name.clone(),
            class: SloClass::Batch,
            arrival: Arrival::Open { rps: rate },
            requests,
            deadline: Duration::from_millis(50),
        });
        specs.push(StreamSpec {
            model: name.clone(),
            class: SloClass::Interactive,
            arrival: Arrival::Closed,
            requests: requests / 4,
            deadline: Duration::from_millis(100),
        });
        specs.push(StreamSpec {
            model: name.clone(),
            class: SloClass::Standard,
            arrival: Arrival::Closed,
            requests: requests / 4,
            deadline: Duration::from_millis(200),
        });
    }
    let overload = run_fleet_load(&client, &inputs, &specs, seed);
    fleet.tick();
    print_fleet_round("phase 1 (overload)", &names, &overload);

    // Phase 2 — canary: stage a candidate on model-0 as a canary and
    // (with >1 model) shadow-mirror model-1, then drive moderate closed
    // load; canary replies carry the id-fraction split. At f32 the
    // candidate is a fresh parameter set; at bf16/int8 it is the
    // *current primary quantized* — the staged-rollout path for a
    // reduced-precision build, with its accuracy delta measured on a
    // labelled mixture set before any traffic touches it.
    let canary_model = names[0].clone();
    let mut staged_delta = None;
    if precision == Precision::F32 {
        fleet
            .stage_candidate(
                &canary_model,
                net.init_params(&mut rng),
                CandidateMode::Canary {
                    percent: canary_pct,
                },
            )
            .map_err(|e| format!("stage canary: {e}"))?;
    } else {
        let primary = fleet
            .registry(&canary_model)
            .expect("registered above")
            .current()
            .expect("published above");
        let quant = Arc::new(net.quantize(&primary.params, precision));
        let eval = crossbow::data::synth::gaussian_mixture(4, 6, 512, 0.25, seed ^ 7);
        let delta = crossbow::nn::accuracy_delta(
            &net,
            &primary.params,
            &quant,
            &eval.images_tensor(),
            eval.labels(),
            64,
        );
        staged_delta = Some(delta);
        fleet
            .stage_quantized_candidate(
                &canary_model,
                quant,
                Some(delta),
                CandidateMode::Canary {
                    percent: canary_pct,
                },
            )
            .map_err(|e| format!("stage quantized canary: {e}"))?;
        println!(
            "staged {precision} canary on {canary_model} (accuracy delta vs f32: {delta:+.4})"
        );
    }
    if let Some(shadow_model) = names.get(1) {
        fleet
            .stage_candidate(
                shadow_model,
                net.init_params(&mut rng),
                CandidateMode::Shadow,
            )
            .map_err(|e| format!("stage shadow: {e}"))?;
    }
    let specs: Vec<StreamSpec> = names
        .iter()
        .map(|name| StreamSpec {
            model: name.clone(),
            class: SloClass::Standard,
            arrival: Arrival::Closed,
            requests: requests / 2,
            deadline: Duration::from_millis(100),
        })
        .collect();
    let canary_round = run_fleet_load(&client, &inputs, &specs, seed ^ 1);
    let promoted = fleet
        .promote(&canary_model, 2)
        .map_err(|e| format!("promote: {e}"))?;
    let canary_registry = fleet.registry(&canary_model).expect("registered above");
    if let Some(shadow_model) = names.get(1) {
        fleet.abort_candidate(shadow_model).ok();
    }
    fleet.tick();
    print_fleet_round("phase 2 (canary + shadow)", &names, &canary_round);

    // Phase 3 — calm: light closed traffic sees the promoted version;
    // the probe now reads headroom and shrinks the pools back down.
    let specs: Vec<StreamSpec> = names
        .iter()
        .map(|name| StreamSpec {
            model: name.clone(),
            class: SloClass::Standard,
            arrival: Arrival::Closed,
            requests: (requests / 8).max(4),
            deadline: Duration::from_millis(200),
        })
        .collect();
    let calm = run_fleet_load(&client, &inputs, &specs, seed ^ 2);
    fleet.tick();
    print_fleet_round("phase 3 (calm)", &names, &calm);

    let report = fleet.shutdown();
    println!("{}", report.summary());
    if let (Some(path), Some(t)) = (flags.get("trace"), &telemetry) {
        let timeline = t.recorder.timeline();
        let json = chrome::to_chrome_json(timeline.spans(), &[(HOST_DEVICE, "host")]);
        write_trace(path, &json, timeline.len())?;
    }

    // Invariants the run must uphold; ci.sh greps the marker line.
    let rounds = [&overload, &canary_round, &calm];
    let answered = rounds.iter().all(|r| {
        r.streams
            .iter()
            .all(|s| s.failed == 0 && s.ok + s.shed + s.rejected == s.submitted)
    });
    let monotonic = rounds.iter().all(|r| r.versions_monotonic());
    let canary_seen = canary_pct == 0 || canary_round.streams.iter().any(|s| s.canary > 0);
    let promoted_ok =
        promoted == Some(2) && report.model(&canary_model).map(|m| m.max_version) == Some(2);
    let scaled = !autoscale || report.scaled_both_ways();
    // With a quantized candidate, promotion must carry the precision and
    // its measured accuracy delta into the primary snapshot.
    let final_snapshot = canary_registry
        .current()
        .ok_or("canary model lost its snapshot")?;
    let precision_ok =
        final_snapshot.precision == precision && final_snapshot.accuracy_delta == staged_delta;
    let pass = answered && monotonic && canary_seen && promoted_ok && scaled && precision_ok;
    println!(
        "FLEET-REPORT pass={pass} answered={answered} monotonic={monotonic} \
         canary={canary_seen} promoted={promoted_ok} scaled={scaled} \
         precision={} precision_ok={precision_ok} \
         completed={} shed={} decisions={}",
        final_snapshot.precision,
        report.total_completed(),
        report.total_shed(),
        report.decisions.len(),
    );
    if !pass {
        return Err("fleet invariants violated (see FLEET-REPORT line)".into());
    }
    Ok(())
}

fn cmd_models() -> Result<(), String> {
    println!("available benchmarks:");
    for b in Benchmark::all() {
        println!(
            "  {:<10} {:<12} default batch {:<4} target {:.0}%",
            b.name,
            b.profile.dataset,
            b.profile.default_batch,
            b.scaled_target * 100.0
        );
    }
    Ok(())
}
