//! Micro-benchmarks for the §4.5 executable memory plans.
//!
//! Measures the packed GEMM against the naive kernel (serial and
//! multi-threaded) and the end-to-end CPU train-step throughput of the
//! concurrent runtime on the ResNet-style zoo model, and writes the
//! results as JSON:
//!
//! * `BENCH_gemm.json` — ns/iter and GFLOP/s per kernel and size;
//! * `BENCH_train_step.json` — samples/s, ns per global step and the
//!   arena counters, including an allocation-flatness verdict.
//!
//! ```text
//! membench [--smoke] [--out-dir DIR]
//! ```
//!
//! `--smoke` shrinks sizes and epochs so the run finishes in seconds; the
//! process exits non-zero if the arena allocation counter is not flat
//! across iterations, making the binary usable as a CI assertion
//! (`ci.sh` runs `membench --smoke`).

use crossbow::benchmark::Benchmark;
use crossbow::exec_cpu::{train_concurrent, CpuEngineConfig};
use crossbow_telemetry::Telemetry;
use crossbow_tensor::gemm::{gemm_naive, gemm_parallel, gemm_ws};
use crossbow_tensor::{Rng, Workspace};
use std::time::Instant;

struct Measurement {
    ns_per_iter: f64,
    gflops: f64,
}

/// Times `f` adaptively: repeats until ~200 ms (or 25 ms in smoke mode)
/// of total work, then reports the mean per-iteration time.
fn time_it(smoke: bool, flops: f64, mut f: impl FnMut()) -> Measurement {
    // Warm-up.
    f();
    let budget_ns = if smoke { 25_000_000.0 } else { 200_000_000.0 };
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        if elapsed >= budget_ns || iters >= 1 << 20 {
            let ns = elapsed / iters as f64;
            return Measurement {
                ns_per_iter: ns,
                gflops: flops / ns,
            };
        }
        iters = iters.saturating_mul(2);
    }
}

fn bench_gemm(smoke: bool, out_dir: &str) -> std::io::Result<()> {
    let sizes: &[usize] = if smoke { &[48, 96] } else { &[64, 128, 256] };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    let mut ws = Workspace::new();
    for &n in sizes {
        let mut rng = Rng::new(7);
        let a: Vec<f32> = (0..n * n).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..n * n).map(|_| rng.normal()).collect();
        let mut c = vec![0.0f32; n * n];
        let flops = 2.0 * (n as f64).powi(3);
        let naive = time_it(smoke, flops, || {
            gemm_naive(n, n, n, 1.0, &a, &b, 0.0, &mut c);
            std::hint::black_box(&c);
        });
        let packed = time_it(smoke, flops, || {
            gemm_ws(n, n, n, 1.0, &a, &b, 0.0, &mut c, &mut ws);
            std::hint::black_box(&c);
        });
        let parallel = time_it(smoke, flops, || {
            gemm_parallel(n, n, n, 1.0, &a, &b, 0.0, &mut c, threads, &mut ws);
            std::hint::black_box(&c);
        });
        println!(
            "gemm {n}x{n}x{n}: naive {:.0} ns, packed {:.0} ns ({:.2}x), parallel({threads}) {:.0} ns ({:.2}x)",
            naive.ns_per_iter,
            packed.ns_per_iter,
            naive.ns_per_iter / packed.ns_per_iter,
            parallel.ns_per_iter,
            naive.ns_per_iter / parallel.ns_per_iter,
        );
        rows.push(format!(
            concat!(
                "    {{\"m\": {n}, \"k\": {n}, \"n\": {n},\n",
                "     \"naive\": {{\"ns_per_iter\": {:.1}, \"gflops\": {:.3}}},\n",
                "     \"packed\": {{\"ns_per_iter\": {:.1}, \"gflops\": {:.3}}},\n",
                "     \"parallel\": {{\"threads\": {threads}, \"ns_per_iter\": {:.1}, \"gflops\": {:.3}}},\n",
                "     \"packed_vs_naive_speedup\": {:.3}}}"
            ),
            naive.ns_per_iter,
            naive.gflops,
            packed.ns_per_iter,
            packed.gflops,
            parallel.ns_per_iter,
            parallel.gflops,
            naive.ns_per_iter / packed.ns_per_iter,
            n = n,
            threads = threads,
        ));
    }
    let stats = ws.stats();
    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"gemm\",\n  \"smoke\": {},\n",
            "  \"sizes\": [\n{}\n  ],\n",
            "  \"arena\": {{\"fresh_allocs\": {}, \"reuse_hits\": {}, \"high_water_bytes\": {}}}\n}}\n"
        ),
        smoke,
        rows.join(",\n"),
        stats.fresh_allocs,
        stats.reuse_hits,
        stats.high_water,
    );
    let path = format!("{out_dir}/BENCH_gemm.json");
    std::fs::write(&path, json)?;
    println!("wrote {path}");
    Ok(())
}

/// Runs the concurrent CPU engine on the ResNet-style zoo model and
/// returns `(samples/s, ns per global step, arena allocation count,
/// arena high-water bytes, arena reuse hits)`.
fn train_step_run(epochs: usize, learners: usize, batch: usize) -> (f64, f64, u64, u64, u64) {
    let bench = Benchmark::resnet32();
    let net = bench.network();
    let (train_set, test_set) = bench.dataset(9);
    let telemetry = Telemetry::disabled();
    let mut cfg = CpuEngineConfig::new(learners, batch);
    cfg.max_epochs = epochs;
    cfg.telemetry = Some(telemetry.clone());
    let start = Instant::now();
    let report = train_concurrent(&net, &train_set, &test_set, &cfg).expect("train");
    let elapsed = start.elapsed().as_nanos() as f64;
    (
        report.throughput,
        elapsed / report.iterations.max(1) as f64,
        telemetry.metrics.counter("memory.arena_alloc").get(),
        telemetry.metrics.gauge("memory.arena_bytes").max(),
        telemetry.metrics.gauge("memory.arena_reuse").max(),
    )
}

fn bench_train_step(smoke: bool, out_dir: &str) -> std::io::Result<bool> {
    let (epochs, learners, batch) = if smoke { (1, 2, 16) } else { (4, 2, 16) };
    let (throughput, ns_per_step, allocs, arena_bytes, reuse) =
        train_step_run(epochs, learners, batch);
    // Flatness: doubling the epoch count must not change the allocation
    // counter (§4.5: all steady-state buffers come from the arena).
    let (_, _, allocs_double, _, _) = train_step_run(2 * epochs, learners, batch);
    let flat = allocs > 0 && allocs == allocs_double;
    println!(
        "train-step (resnet-32 zoo, k={learners}, b={batch}): {throughput:.1} samples/s, \
         {ns_per_step:.0} ns/step, arena allocs {allocs} ({}flat)",
        if flat { "" } else { "NOT " },
    );
    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"train_step\",\n",
            "  \"model\": \"resnet-32 (reduced zoo)\",\n",
            "  \"smoke\": {smoke},\n",
            "  \"learners\": {learners},\n",
            "  \"batch_per_learner\": {batch},\n",
            "  \"epochs\": {epochs},\n",
            "  \"throughput_samples_per_s\": {throughput:.2},\n",
            "  \"ns_per_step\": {ns_per_step:.1},\n",
            "  \"arena\": {{\"alloc_events\": {allocs}, \"high_water_bytes\": {arena_bytes}, ",
            "\"reuse_hits\": {reuse}}},\n",
            "  \"allocation_flat\": {flat}\n}}\n"
        ),
        smoke = smoke,
        learners = learners,
        batch = batch,
        epochs = epochs,
        throughput = throughput,
        ns_per_step = ns_per_step,
        allocs = allocs,
        arena_bytes = arena_bytes,
        reuse = reuse,
        flat = flat,
    );
    let path = format!("{out_dir}/BENCH_train_step.json");
    std::fs::write(&path, json)?;
    println!("wrote {path}");
    Ok(flat)
}

fn main() {
    let mut smoke = false;
    let mut out_dir = ".".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out-dir" => {
                out_dir = args.next().unwrap_or_else(|| {
                    eprintln!("--out-dir needs a path");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("membench [--smoke] [--out-dir DIR]");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    bench_gemm(smoke, &out_dir).expect("write BENCH_gemm.json");
    let flat = bench_train_step(smoke, &out_dir).expect("write BENCH_train_step.json");
    if !flat {
        eprintln!("FAIL: arena allocation counter grew with iteration count");
        std::process::exit(1);
    }
}
