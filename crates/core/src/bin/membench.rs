//! Micro-benchmarks for the §4.5 executable memory plans.
//!
//! Measures the packed GEMM against the naive kernel (serial and
//! multi-threaded) and the end-to-end CPU train-step throughput of the
//! concurrent runtime on the ResNet-style zoo model, and writes the
//! results as JSON:
//!
//! * `BENCH_gemm.json` — ns/iter and GFLOP/s per kernel and size,
//!   including one row per SIMD micro-kernel tier (scalar/avx2/avx512)
//!   with a bits-match-scalar verdict;
//! * `BENCH_infer.json` — quantized inference: eval samples/s, snapshot
//!   bytes and accuracy delta vs f32 for each serving precision, plus a
//!   scalar-fallback bit-identity verdict;
//! * `BENCH_train_step.json` — samples/s, ns per global step and the
//!   arena counters, including an allocation-flatness verdict;
//! * `BENCH_data.json` — shard-pack MB/s, mmap vs in-memory batch-gather
//!   samples/s, and the prefetch io-wait overlap, including a
//!   bit-identity verdict for disk vs RAM gathers;
//! * `BENCH_serve.json` — fleet serving under mixed-priority load:
//!   per-SLO-class goodput for a 1-model vs a 3-model fleet with the
//!   autoscaler off and on, including an every-admitted-request-answered
//!   verdict.
//!
//! ```text
//! membench [--smoke] [--only gemm,infer,train,data,serve] [--out-dir DIR]
//! ```
//!
//! `--smoke` shrinks sizes and epochs so the run finishes in seconds; the
//! process exits non-zero if the arena allocation counter is not flat
//! across iterations, making the binary usable as a CI assertion
//! (`ci.sh` runs `membench --smoke`).

use crossbow::benchmark::Benchmark;
use crossbow::exec_cpu::{train_concurrent, CpuEngineConfig};
use crossbow::fleet::{
    run_fleet_load, Arrival, AutoscalerConfig, Fleet, FleetConfig, SloClass, StreamSpec,
};
use crossbow::nn::zoo::mlp;
use crossbow::serve::BatchConfig;
use crossbow_telemetry::Telemetry;
use crossbow_tensor::gemm::{gemm_naive, gemm_parallel, gemm_ws, with_kernel};
use crossbow_tensor::{GemmKernel, Rng, Workspace};
use std::sync::Arc;
use std::time::Duration;
use std::time::Instant;

struct Measurement {
    ns_per_iter: f64,
    gflops: f64,
}

/// Times `f` adaptively: repeats until ~200 ms (or 25 ms in smoke mode)
/// of total work, then reports the mean per-iteration time.
fn time_it(smoke: bool, flops: f64, mut f: impl FnMut()) -> Measurement {
    // Warm-up.
    f();
    let budget_ns = if smoke { 25_000_000.0 } else { 200_000_000.0 };
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        if elapsed >= budget_ns || iters >= 1 << 20 {
            let ns = elapsed / iters as f64;
            return Measurement {
                ns_per_iter: ns,
                gflops: flops / ns,
            };
        }
        iters = iters.saturating_mul(2);
    }
}

/// Benchmarks the packed GEMM per micro-kernel tier and checks that
/// every supported SIMD tier is bit-identical to the scalar fallback.
/// Returns whether the tiers agreed — the divergence gate ci.sh asserts.
fn bench_gemm(smoke: bool, out_dir: &str) -> std::io::Result<bool> {
    let sizes: &[usize] = if smoke { &[48, 96] } else { &[64, 128, 256] };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let detected = GemmKernel::detected();
    let mut rows = Vec::new();
    let mut ws = Workspace::new();
    let mut tiers_identical = true;
    for &n in sizes {
        let mut rng = Rng::new(7);
        let a: Vec<f32> = (0..n * n).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..n * n).map(|_| rng.normal()).collect();
        let mut c = vec![0.0f32; n * n];
        let flops = 2.0 * (n as f64).powi(3);
        let naive = time_it(smoke, flops, || {
            gemm_naive(n, n, n, 1.0, &a, &b, 0.0, &mut c);
            std::hint::black_box(&c);
        });
        let packed = time_it(smoke, flops, || {
            gemm_ws(n, n, n, 1.0, &a, &b, 0.0, &mut c, &mut ws);
            std::hint::black_box(&c);
        });
        let parallel = time_it(smoke, flops, || {
            gemm_parallel(n, n, n, 1.0, &a, &b, 0.0, &mut c, threads, &mut ws);
            std::hint::black_box(&c);
        });

        // Per-tier packed GEMM: time each supported micro-kernel and
        // compare its output bits against the scalar fallback's.
        let mut c_scalar = vec![0.0f32; n * n];
        with_kernel(GemmKernel::Scalar, || {
            gemm_ws(n, n, n, 1.0, &a, &b, 0.0, &mut c_scalar, &mut ws);
        });
        let mut kernel_rows = Vec::new();
        let mut scalar_gflops = 0.0f64;
        let mut best_simd_gflops = 0.0f64;
        for kernel in GemmKernel::all() {
            if !kernel.supported() {
                continue;
            }
            let m = time_it(smoke, flops, || {
                with_kernel(kernel, || {
                    gemm_ws(n, n, n, 1.0, &a, &b, 0.0, &mut c, &mut ws);
                });
                std::hint::black_box(&c);
            });
            with_kernel(kernel, || {
                gemm_ws(n, n, n, 1.0, &a, &b, 0.0, &mut c, &mut ws);
            });
            let same = c
                .iter()
                .zip(&c_scalar)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            tiers_identical &= same;
            if kernel == GemmKernel::Scalar {
                scalar_gflops = m.gflops;
            } else {
                best_simd_gflops = best_simd_gflops.max(m.gflops);
            }
            kernel_rows.push(format!(
                "\"{}\": {{\"ns_per_iter\": {:.1}, \"gflops\": {:.3}, \
                 \"bits_match_scalar\": {same}}}",
                kernel.name(),
                m.ns_per_iter,
                m.gflops,
            ));
        }
        let simd_speedup = if best_simd_gflops > 0.0 {
            best_simd_gflops / scalar_gflops
        } else {
            1.0 // scalar-only machine: no SIMD tier to compare
        };
        println!(
            "gemm {n}x{n}x{n}: naive {:.0} ns, packed {:.0} ns ({:.2}x), parallel({threads}) {:.0} ns ({:.2}x), \
             simd {simd_speedup:.2}x over scalar ({}identical)",
            naive.ns_per_iter,
            packed.ns_per_iter,
            naive.ns_per_iter / packed.ns_per_iter,
            parallel.ns_per_iter,
            naive.ns_per_iter / parallel.ns_per_iter,
            if tiers_identical { "" } else { "NOT " },
        );
        rows.push(format!(
            concat!(
                "    {{\"m\": {n}, \"k\": {n}, \"n\": {n},\n",
                "     \"naive\": {{\"ns_per_iter\": {:.1}, \"gflops\": {:.3}}},\n",
                "     \"packed\": {{\"ns_per_iter\": {:.1}, \"gflops\": {:.3}}},\n",
                "     \"parallel\": {{\"threads\": {threads}, \"ns_per_iter\": {:.1}, \"gflops\": {:.3}}},\n",
                "     \"kernels\": {{{kernels}}},\n",
                "     \"packed_vs_naive_speedup\": {:.3},\n",
                "     \"simd_vs_scalar_speedup\": {simd_speedup:.3}}}"
            ),
            naive.ns_per_iter,
            naive.gflops,
            packed.ns_per_iter,
            packed.gflops,
            parallel.ns_per_iter,
            parallel.gflops,
            naive.ns_per_iter / packed.ns_per_iter,
            n = n,
            threads = threads,
            kernels = kernel_rows.join(", "),
            simd_speedup = simd_speedup,
        ));
    }
    let stats = ws.stats();
    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"gemm\",\n  \"smoke\": {},\n",
            "  \"kernel_detected\": \"{}\",\n",
            "  \"kernel_bit_identical\": {},\n",
            "  \"sizes\": [\n{}\n  ],\n",
            "  \"arena\": {{\"fresh_allocs\": {}, \"reuse_hits\": {}, \"high_water_bytes\": {}}}\n}}\n"
        ),
        smoke,
        detected.name(),
        tiers_identical,
        rows.join(",\n"),
        stats.fresh_allocs,
        stats.reuse_hits,
        stats.high_water,
    );
    let path = format!("{out_dir}/BENCH_gemm.json");
    std::fs::write(&path, json)?;
    println!("wrote {path}");
    Ok(tiers_identical)
}

/// Benchmarks the quantized inference path: trains a small classifier,
/// then for each precision (f32/bf16/int8) measures eval throughput,
/// quantized-snapshot bytes on disk, and the accuracy delta vs f32.
/// Also forces the scalar GEMM fallback and checks that f32 logits are
/// bit-identical to the SIMD tier's. Returns that bit-identity verdict.
fn bench_infer(smoke: bool, out_dir: &str) -> std::io::Result<bool> {
    use crossbow::data::synth::gaussian_mixture;
    use crossbow::nn::accuracy_delta;
    use crossbow::serve::{export_quant_snapshot, ModelSpec, SnapshotRegistry};
    use crossbow::sync::sma::{Sma, SmaConfig};
    use crossbow::sync::{train, TrainerConfig};
    use crossbow_tensor::{Precision, Shape, Tensor};

    let (hidden, samples, epochs): (&[usize], usize, usize) = if smoke {
        (&[32], 768, 2)
    } else {
        (&[128, 64], 4096, 4)
    };
    // Two eval batch sizes: the server's default max_batch (16), the
    // regime the quantized path is for — the f32 GEMM re-packs weights
    // every call while the int8 operator is pre-packed at quantize time
    // — and a large batch (64) where the packed f32 GEMM amortises.
    let (classes, dim, batch, big_batch) = (8usize, 32usize, 16usize, 64usize);
    let net = mlp(dim, hidden, classes);
    let (train_set, test_set) = gaussian_mixture(classes, dim, samples, 2.5, 29)
        .split_at(samples * 3 / 4)
        .expect("split in range");
    let mut rng = Rng::new(29);
    let mut algo = Sma::new(net.init_params(&mut rng), 4, SmaConfig::default());
    let cfg = TrainerConfig::new(16, epochs).with_seed(29);
    let curve = train(&net, &train_set, &test_set, &mut algo, &cfg);
    let params = algo.center_mut().to_vec();

    // One eval batch per size, reused by every precision's loop.
    let images = test_set.images_tensor();
    let sample_len = test_set.sample_len();
    let head = Tensor::from_vec(
        Shape::new(&[batch, dim]),
        images.data()[..batch * sample_len].to_vec(),
    );
    let big_head = Tensor::from_vec(
        Shape::new(&[big_batch, dim]),
        images.data()[..big_batch * sample_len].to_vec(),
    );
    let mut scratch = net.scratch();

    // Scalar-fallback bit-identity on the served logits: the dispatch
    // tier must never change what a model answers.
    let simd_logits = net.forward_eval(&params, &head, &mut scratch);
    let scalar_logits = with_kernel(GemmKernel::Scalar, || {
        net.forward_eval(&params, &head, &mut scratch)
    });
    let fallback_identical = simd_logits
        .data()
        .iter()
        .zip(scalar_logits.data())
        .all(|(x, y)| x.to_bits() == y.to_bits());

    let dir = std::env::temp_dir().join(format!("crossbow-membench-infer-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let flops = 0.0; // throughput reported as samples/s, not GFLOP/s
    let mut rows = Vec::new();
    let mut int8_smaller_and_faster = true;
    let mut f32_bytes = 0u64;
    let mut f32_sps = 0.0f64;
    for precision in Precision::all() {
        let registry = SnapshotRegistry::new(ModelSpec::of(&net));
        let (delta, m, m_big) = match precision {
            Precision::F32 => {
                registry.publish(params.clone(), 1).expect("fresh registry");
                let m = time_it(smoke, flops, || {
                    let out = net.forward_eval(&params, &head, &mut scratch);
                    std::hint::black_box(&out);
                });
                let m_big = time_it(smoke, flops, || {
                    let out = net.forward_eval(&params, &big_head, &mut scratch);
                    std::hint::black_box(&out);
                });
                (0.0f32, m, m_big)
            }
            _ => {
                let model = Arc::new(net.quantize(&params, precision));
                let delta =
                    accuracy_delta(&net, &params, &model, &images, test_set.labels(), batch);
                registry
                    .publish_quantized(Arc::clone(&model), 1, Some(delta))
                    .expect("fresh registry");
                let m = time_it(smoke, flops, || {
                    let out = net.forward_eval_quant(&model, &head, &mut scratch);
                    std::hint::black_box(&out);
                });
                let m_big = time_it(smoke, flops, || {
                    let out = net.forward_eval_quant(&model, &big_head, &mut scratch);
                    std::hint::black_box(&out);
                });
                (delta, m, m_big)
            }
        };
        let snapshot = registry.current().expect("just published");
        let bytes = export_quant_snapshot(&dir.join(precision.name()), &net, &snapshot)
            .map_err(std::io::Error::other)?;
        let sps = batch as f64 * 1e9 / m.ns_per_iter;
        let sps_big = big_batch as f64 * 1e9 / m_big.ns_per_iter;
        match precision {
            Precision::F32 => {
                f32_bytes = bytes;
                f32_sps = sps;
            }
            Precision::Int8 => {
                int8_smaller_and_faster = bytes < f32_bytes && sps > f32_sps;
            }
            Precision::Bf16 => {}
        }
        println!(
            "infer {precision}: b{batch} {sps:.0} samples/s, b{big_batch} {sps_big:.0} samples/s, \
             snapshot {bytes} bytes, accuracy delta vs f32 {delta:+.4}",
        );
        rows.push(format!(
            concat!(
                "    {{\"precision\": \"{precision}\", ",
                "\"eval_samples_per_s\": {{\"batch{batch}\": {sps:.0}, ",
                "\"batch{big_batch}\": {sps_big:.0}}}, ",
                "\"snapshot_bytes\": {bytes}, ",
                "\"accuracy_delta_vs_f32\": {delta:.6}}}"
            ),
            precision = precision,
            batch = batch,
            big_batch = big_batch,
            sps = sps,
            sps_big = sps_big,
            bytes = bytes,
            delta = delta,
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "infer fallback: scalar logits {}bit-identical to {} \
         (int8 smaller & faster than f32: {int8_smaller_and_faster})",
        if fallback_identical { "" } else { "NOT " },
        GemmKernel::detected().name(),
    );
    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"infer\",\n  \"smoke\": {smoke},\n",
            "  \"model\": {{\"dim\": {dim}, \"hidden\": {hidden:?}, \"classes\": {classes}, ",
            "\"params\": {plen}, \"trained_accuracy\": {acc:.4}}},\n",
            "  \"eval_batches\": [{batch}, {big_batch}],\n",
            "  \"kernel_detected\": \"{kernel}\",\n",
            "  \"scalar_fallback_bit_identical\": {fallback},\n",
            "  \"int8_smaller_and_faster_than_f32\": {smaller},\n",
            "  \"precisions\": [\n{rows}\n  ]\n}}\n"
        ),
        smoke = smoke,
        dim = dim,
        hidden = hidden,
        classes = classes,
        plen = net.param_len(),
        acc = curve.final_accuracy,
        batch = batch,
        big_batch = big_batch,
        kernel = GemmKernel::detected().name(),
        fallback = fallback_identical,
        smaller = int8_smaller_and_faster,
        rows = rows.join(",\n"),
    );
    let path = format!("{out_dir}/BENCH_infer.json");
    std::fs::write(&path, json)?;
    println!("wrote {path}");
    Ok(fallback_identical)
}

/// Runs the concurrent CPU engine on the ResNet-style zoo model and
/// returns `(samples/s, ns per global step, arena allocation count,
/// arena high-water bytes, arena reuse hits)`.
fn train_step_run(epochs: usize, learners: usize, batch: usize) -> (f64, f64, u64, u64, u64) {
    let bench = Benchmark::resnet32();
    let net = bench.network();
    let (train_set, test_set) = bench.dataset(9);
    let telemetry = Telemetry::disabled();
    let mut cfg = CpuEngineConfig::new(learners, batch);
    cfg.max_epochs = epochs;
    cfg.telemetry = Some(telemetry.clone());
    let start = Instant::now();
    let report = train_concurrent(&net, &train_set, &test_set, &cfg).expect("train");
    let elapsed = start.elapsed().as_nanos() as f64;
    (
        report.throughput,
        elapsed / report.iterations.max(1) as f64,
        telemetry.metrics.counter("memory.arena_alloc").get(),
        telemetry.metrics.gauge("memory.arena_bytes").max(),
        telemetry.metrics.gauge("memory.arena_reuse").max(),
    )
}

fn bench_train_step(smoke: bool, out_dir: &str) -> std::io::Result<bool> {
    let (epochs, learners, batch) = if smoke { (1, 2, 16) } else { (4, 2, 16) };
    let (throughput, ns_per_step, allocs, arena_bytes, reuse) =
        train_step_run(epochs, learners, batch);
    // Flatness: doubling the epoch count must not change the allocation
    // counter (§4.5: all steady-state buffers come from the arena).
    let (_, _, allocs_double, _, _) = train_step_run(2 * epochs, learners, batch);
    let flat = allocs > 0 && allocs == allocs_double;
    println!(
        "train-step (resnet-32 zoo, k={learners}, b={batch}): {throughput:.1} samples/s, \
         {ns_per_step:.0} ns/step, arena allocs {allocs} ({}flat)",
        if flat { "" } else { "NOT " },
    );
    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"train_step\",\n",
            "  \"model\": \"resnet-32 (reduced zoo)\",\n",
            "  \"smoke\": {smoke},\n",
            "  \"learners\": {learners},\n",
            "  \"batch_per_learner\": {batch},\n",
            "  \"epochs\": {epochs},\n",
            "  \"throughput_samples_per_s\": {throughput:.2},\n",
            "  \"ns_per_step\": {ns_per_step:.1},\n",
            "  \"arena\": {{\"alloc_events\": {allocs}, \"high_water_bytes\": {arena_bytes}, ",
            "\"reuse_hits\": {reuse}}},\n",
            "  \"allocation_flat\": {flat}\n}}\n"
        ),
        smoke = smoke,
        learners = learners,
        batch = batch,
        epochs = epochs,
        throughput = throughput,
        ns_per_step = ns_per_step,
        allocs = allocs,
        arena_bytes = arena_bytes,
        reuse = reuse,
        flat = flat,
    );
    let path = format!("{out_dir}/BENCH_train_step.json");
    std::fs::write(&path, json)?;
    println!("wrote {path}");
    Ok(flat)
}

/// Batch-gather throughput (samples/s) over a strided index stream that
/// touches every record page of `src`.
fn gather_rate(smoke: bool, src: &dyn crossbow::data::SampleSource, batch: usize) -> f64 {
    let n = src.len();
    let mut cursor = 0usize;
    let m = time_it(smoke, 0.0, || {
        // Stride 7 is coprime with the page size, so successive batches
        // walk the whole shard set rather than one hot page.
        let indices: Vec<usize> = (0..batch).map(|k| (cursor + k * 7) % n).collect();
        cursor = (cursor + batch * 7) % n;
        let got = src.gather(&indices).expect("indices in range");
        std::hint::black_box(&got);
    });
    batch as f64 * 1e9 / m.ns_per_iter
}

/// Benchmarks the shard data plane: ingestion (pack MB/s), mmap-backed
/// vs in-memory batch gather, and the prefetcher's io-wait overlap when
/// feeding from disk. Returns whether a disk gather was bit-identical to
/// the same gather from RAM — the determinism invariant ci.sh asserts.
fn bench_data(smoke: bool, out_dir: &str) -> std::io::Result<bool> {
    use crossbow::data::prefetch::PrefetchConfig;
    use crossbow::data::synth::gaussian_mixture;
    use crossbow::data::{Prefetcher, SampleSource};
    use crossbow::shard::{pack_source, PackConfig, ShardedDataset};
    use std::sync::Arc;

    let (classes, dim, samples) = if smoke {
        (8, 64, 2_048)
    } else {
        (8, 256, 16_384)
    };
    let batch = 64usize;
    let train = gaussian_mixture(classes, dim, samples, 0.35, 11);

    let dir = std::env::temp_dir().join(format!("crossbow-membench-data-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;

    // Ingestion: every sample streamed through the bounded channel into
    // rotating shards; the elapsed wall time covers producer + writer.
    let cfg = PackConfig {
        samples_per_shard: (samples / 8).max(1),
        ..PackConfig::default()
    };
    let start = Instant::now();
    let pack = pack_source(&dir, &train, cfg).map_err(std::io::Error::other)?;
    let pack_mb_per_s = pack.bytes as f64 / 1e6 / start.elapsed().as_secs_f64();

    let disk = ShardedDataset::open(&dir).map_err(std::io::Error::other)?;
    let mmap = disk.fully_mmapped();

    // Determinism spot check: the same indices must gather bit-identical
    // images and labels from disk and from RAM.
    let probe: Vec<usize> = (0..256).map(|i| (i * 37) % samples).collect();
    let (mem_img, mem_lab) = train.gather(&probe).expect("probe in range");
    let (dsk_img, dsk_lab) = disk.gather(&probe).expect("probe in range");
    let identical = mem_lab == dsk_lab
        && mem_img
            .data()
            .iter()
            .zip(dsk_img.data())
            .all(|(a, b)| a.to_bits() == b.to_bits());

    let mem_sps = gather_rate(smoke, &train, batch);
    let dsk_sps = gather_rate(smoke, &disk, batch);

    // Prefetch overlap: feed a consumer from disk through the double
    // buffer and measure how much of its wall time blocks on `next()`.
    let telemetry = Telemetry::disabled();
    let feeder = ShardedDataset::open(&dir).map_err(std::io::Error::other)?;
    let p = Prefetcher::spawn_with_metrics(
        Arc::new(feeder),
        PrefetchConfig::for_learners(batch, 2),
        23,
        &telemetry.metrics,
    );
    let rounds = if smoke { 64usize } else { 512 };
    let mut wait_ns = 0u128;
    let mut sink = 0.0f32;
    let consume = Instant::now();
    for _ in 0..rounds {
        let t = Instant::now();
        let b = p.next();
        wait_ns += t.elapsed().as_nanos();
        // Stand-in compute: a couple of passes over the batch, so the
        // pre-processor threads have something to overlap with.
        for _ in 0..2 {
            for v in b.images.data() {
                sink += *v * 0.5;
            }
        }
    }
    let consume_ns = consume.elapsed().as_nanos().max(1);
    std::hint::black_box(sink);
    let io_wait = wait_ns as f64 / consume_ns as f64;
    let wait_us = telemetry.metrics.histogram("prefetch.wait_us").snapshot();
    let wait_summary = wait_us.summary();
    drop(p);
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "data pack ({samples}x{dim}): {} shards, {} bytes, {pack_mb_per_s:.1} MB/s",
        pack.shards, pack.bytes,
    );
    println!(
        "data gather (b={batch}): memory {mem_sps:.0} samples/s, mmap {dsk_sps:.0} samples/s \
         (mmap={mmap}, {}bit-identical)",
        if identical { "" } else { "NOT " },
    );
    println!(
        "data prefetch ({rounds} batches from disk): io-wait {:.1}% of consumer time, \
         wait p50 {:?} p95 {:?}",
        io_wait * 100.0,
        wait_summary.p50,
        wait_summary.p95,
    );
    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"data\",\n  \"smoke\": {smoke},\n",
            "  \"dataset\": {{\"samples\": {samples}, \"dim\": {dim}, \"classes\": {classes}}},\n",
            "  \"pack\": {{\"shards\": {shards}, \"bytes\": {bytes}, ",
            "\"mb_per_s\": {pack_mb_per_s:.2}}},\n",
            "  \"gather\": {{\"batch\": {batch}, \"memory_samples_per_s\": {mem_sps:.0}, ",
            "\"mmap_samples_per_s\": {dsk_sps:.0}, \"mmap\": {mmap}, ",
            "\"bit_identical\": {identical}}},\n",
            "  \"prefetch\": {{\"batches\": {rounds}, \"io_wait_fraction\": {io_wait:.4}, ",
            "\"overlap_fraction\": {overlap:.4}, ",
            "\"wait_us_p50\": {p50}, \"wait_us_p95\": {p95}}}\n}}\n"
        ),
        smoke = smoke,
        samples = samples,
        dim = dim,
        classes = classes,
        shards = pack.shards,
        bytes = pack.bytes,
        pack_mb_per_s = pack_mb_per_s,
        batch = batch,
        mem_sps = mem_sps,
        dsk_sps = dsk_sps,
        mmap = mmap,
        identical = identical,
        rounds = rounds,
        io_wait = io_wait,
        overlap = 1.0 - io_wait,
        p50 = wait_summary.p50.as_micros(),
        p95 = wait_summary.p95.as_micros(),
    );
    let path = format!("{out_dir}/BENCH_data.json");
    std::fs::write(&path, json)?;
    println!("wrote {path}");
    Ok(identical)
}

/// What one fleet-serving run produced, per SLO class.
struct ClassStats {
    submitted: u64,
    ok: u64,
    goodput: u64,
    shed: u64,
    rejected: u64,
}

/// Drives one fleet (1 or 3 models, autoscaler off or on a 50 ms probe
/// interval) through the standard mixed-priority load: an open-loop
/// Batch flood past pool capacity plus closed Interactive/Standard
/// streams per model. Returns (per-class stats in [Interactive,
/// Standard, Batch] order, scale-ups, scale-downs, p99 µs, wall s,
/// every-admitted-request-answered).
fn fleet_serve_run(
    models: usize,
    autoscale: bool,
    smoke: bool,
) -> ([ClassStats; 3], u64, u64, u128, f64, bool) {
    let (requests, rps) = if smoke {
        (60usize, 900.0)
    } else {
        (150, 1200.0)
    };
    let config = FleetConfig {
        batch: BatchConfig {
            max_batch: 4,
            max_delay: Duration::from_micros(500),
            queue_depth: 32,
        },
        initial_workers: 1,
        work_stealing: true,
        // Fixed synthetic service time so the tiny model's pools can
        // actually saturate and the autoscaler has something to do.
        synthetic_delay: Some(Duration::from_millis(5)),
        autoscaler: autoscale.then(|| AutoscalerConfig {
            slo_p99: Duration::from_millis(25),
            queue_high_water: 8,
            shrink_margin: 0.5,
            min_workers: 1,
            max_workers: 4,
            cooldown_ticks: 1,
            interval: Some(Duration::from_millis(50)),
        }),
        telemetry: None,
    };
    let net = Arc::new(mlp(6, &[16], 4));
    let names: Vec<String> = (0..models).map(|i| format!("m{i}")).collect();
    let mut builder = Fleet::builder(config);
    for name in &names {
        builder = builder.model(name, Arc::clone(&net));
    }
    let fleet = builder.start();
    let mut rng = Rng::new(17);
    for name in &names {
        fleet
            .registry(name)
            .expect("registered")
            .publish(net.init_params(&mut rng), 1)
            .expect("fresh registry accepts v1");
    }
    let inputs: Vec<Vec<f32>> = (0..64)
        .map(|_| (0..6).map(|_| rng.uniform(-1.0, 1.0)).collect())
        .collect();
    let mut specs = Vec::new();
    for name in &names {
        specs.push(StreamSpec {
            model: name.clone(),
            class: SloClass::Batch,
            arrival: Arrival::Open { rps },
            requests,
            deadline: Duration::from_millis(50),
        });
        specs.push(StreamSpec {
            model: name.clone(),
            class: SloClass::Interactive,
            arrival: Arrival::Closed,
            requests: requests / 4,
            deadline: Duration::from_millis(100),
        });
        specs.push(StreamSpec {
            model: name.clone(),
            class: SloClass::Standard,
            arrival: Arrival::Closed,
            requests: requests / 4,
            deadline: Duration::from_millis(200),
        });
    }
    let load = run_fleet_load(&fleet.client(), &inputs, &specs, 17);
    let report = fleet.shutdown();
    let classes = [SloClass::Interactive, SloClass::Standard, SloClass::Batch];
    let stats = classes.map(|class| {
        let streams = || load.streams.iter().filter(move |s| s.class == class);
        ClassStats {
            submitted: streams().map(|s| s.submitted).sum(),
            ok: streams().map(|s| s.ok).sum(),
            goodput: streams().map(|s| s.goodput).sum(),
            shed: streams().map(|s| s.shed).sum(),
            rejected: streams().map(|s| s.rejected).sum(),
        }
    });
    let up = report.decisions.iter().filter(|d| d.to > d.from).count() as u64;
    let down = report.decisions.iter().filter(|d| d.to < d.from).count() as u64;
    let p99 = report
        .models
        .iter()
        .map(|m| m.latency.p99.as_micros())
        .max()
        .unwrap_or(0);
    let answered = load
        .streams
        .iter()
        .all(|s| s.failed == 0 && s.ok + s.shed + s.rejected == s.submitted);
    (stats, up, down, p99, load.wall.as_secs_f64(), answered)
}

fn bench_serve(smoke: bool, out_dir: &str) -> std::io::Result<bool> {
    let mut rows = Vec::new();
    let mut all_answered = true;
    for (models, autoscale) in [(1usize, false), (1, true), (3, false), (3, true)] {
        let (stats, up, down, p99_us, wall_s, answered) = fleet_serve_run(models, autoscale, smoke);
        all_answered &= answered;
        let [i, s, b] = &stats;
        println!(
            "serve fleet (models={models}, autoscale={autoscale}): goodput \
             interactive {}/{}, standard {}/{}, batch {}/{} \
             (+{up}/-{down} scale, p99 {p99_us} us, {}answered)",
            i.goodput,
            i.submitted,
            s.goodput,
            s.submitted,
            b.goodput,
            b.submitted,
            if answered { "" } else { "NOT " },
        );
        let class_json = |c: &ClassStats| {
            format!(
                "{{\"submitted\": {}, \"ok\": {}, \"goodput\": {}, \
                 \"shed\": {}, \"rejected\": {}}}",
                c.submitted, c.ok, c.goodput, c.shed, c.rejected
            )
        };
        rows.push(format!(
            concat!(
                "    {{\"models\": {models}, \"autoscale\": {autoscale},\n",
                "     \"interactive\": {i},\n",
                "     \"standard\": {s},\n",
                "     \"batch\": {b},\n",
                "     \"scale_up\": {up}, \"scale_down\": {down}, ",
                "\"p99_us\": {p99}, \"wall_s\": {wall:.3}, \"all_answered\": {answered}}}"
            ),
            models = models,
            autoscale = autoscale,
            i = class_json(i),
            s = class_json(s),
            b = class_json(b),
            up = up,
            down = down,
            p99 = p99_us,
            wall = wall_s,
            answered = answered,
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"serve\",\n  \"smoke\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        smoke,
        rows.join(",\n"),
    );
    let path = format!("{out_dir}/BENCH_serve.json");
    std::fs::write(&path, json)?;
    println!("wrote {path}");
    Ok(all_answered)
}

fn main() {
    let mut smoke = false;
    let mut out_dir = ".".to_string();
    let mut only: Option<Vec<String>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out-dir" => {
                out_dir = args.next().unwrap_or_else(|| {
                    eprintln!("--out-dir needs a path");
                    std::process::exit(2);
                });
            }
            "--only" => {
                let list = args.next().unwrap_or_else(|| {
                    eprintln!("--only needs a comma-separated list");
                    std::process::exit(2);
                });
                only = Some(list.split(',').map(str::to_string).collect());
            }
            "--help" | "-h" => {
                println!("membench [--smoke] [--only gemm,infer,train,data,serve] [--out-dir DIR]");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let runs = |name: &str| {
        only.as_ref()
            .is_none_or(|list| list.iter().any(|s| s == name))
    };
    let mut failed = false;
    if runs("gemm") && !bench_gemm(smoke, &out_dir).expect("write BENCH_gemm.json") {
        eprintln!("FAIL: a SIMD GEMM tier diverged from the scalar fallback");
        failed = true;
    }
    if runs("infer") && !bench_infer(smoke, &out_dir).expect("write BENCH_infer.json") {
        eprintln!("FAIL: forced-scalar inference diverged from the SIMD path");
        failed = true;
    }
    if runs("train") && !bench_train_step(smoke, &out_dir).expect("write BENCH_train_step.json") {
        eprintln!("FAIL: arena allocation counter grew with iteration count");
        failed = true;
    }
    if runs("data") && !bench_data(smoke, &out_dir).expect("write BENCH_data.json") {
        eprintln!("FAIL: mmap-shard gather differed from the in-memory gather");
        failed = true;
    }
    if runs("serve") && !bench_serve(smoke, &out_dir).expect("write BENCH_serve.json") {
        eprintln!("FAIL: a fleet run left an admitted request unanswered");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
