//! # CROSSBOW
//!
//! A reproduction of *“CROSSBOW: Scaling Deep Learning with Small Batch
//! Sizes on Multi-GPU Servers”* (VLDB 2019) as a Rust library.
//!
//! CROSSBOW trains a deep-learning model with the user's preferred batch
//! size — however small — while still scaling across the GPUs of a
//! server. It does so with three pieces, all implemented here:
//!
//! * **SMA** (synchronous model averaging): many independent *learners*
//!   each train a model replica; every iteration each replica is corrected
//!   toward a central average model, which advances with the corrections
//!   plus Polyak momentum ([`crossbow_sync::sma`], Algorithm 1).
//! * **Auto-tuned learners per GPU**: a small batch cannot saturate a GPU,
//!   so CROSSBOW trains several replicas per GPU, growing the count while
//!   throughput improves ([`autotuner`], Algorithm 2).
//! * **A concurrent task engine**: learning tasks and synchronisation
//!   tasks are issued to GPU streams with event dependencies so that
//!   global synchronisation overlaps the next iteration's learning
//!   ([`exec_sim`], Figure 8), with reference-counted buffer reuse
//!   ([`memory`], §4.5).
//!
//! ## How the reproduction is split
//!
//! No GPUs are available to this build, so the evaluation follows the
//! paper's own decomposition of time-to-accuracy (§2.1):
//!
//! * **statistical efficiency** (epochs to reach an accuracy) is measured
//!   by *really training* reduced models on synthetic datasets —
//!   [`benchmark`] wires the model zoo, datasets and algorithms together;
//! * **hardware efficiency** (time per epoch) is measured on a
//!   deterministic discrete-event GPU simulator driven by the real task
//!   engine — [`exec_sim`];
//! * [`engine`] combines both into `TTA(x)`, the paper's headline metric.
//!
//! ## Quickstart
//!
//! ```
//! use crossbow::engine::{Session, SessionConfig};
//!
//! let config = SessionConfig::lenet_quick() // a small, fast benchmark
//!     .with_gpus(2)
//!     .with_learners_per_gpu(2);
//! let report = Session::new(config).run().expect("no checkpointing configured");
//! assert!(report.curve.final_accuracy > 0.5);
//! println!("{}", report.summary());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod autotuner;
pub mod benchmark;
pub mod engine;
pub mod exec_cpu;
pub mod exec_sim;
pub mod memory;

pub use autotuner::AutoTuner;
pub use benchmark::Benchmark;
pub use engine::{RobustnessConfig, Session, SessionConfig, TrainingReport};
pub use exec_cpu::{train_concurrent, CpuEngineConfig, CpuEngineReport};
pub use exec_sim::{
    simulate, simulate_robust, EngineKind, FaultCounters, RobustSimConfig, SimConfig, SimReport,
};
pub use memory::{offline_plan, shared_plan, ExecMemoryPlan, MemoryPlan};

pub use crossbow_sync::CheckpointConfig;

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use crossbow_checkpoint as checkpoint;
pub use crossbow_comms as comms;
pub use crossbow_data as data;
pub use crossbow_fleet as fleet;
pub use crossbow_gpu_sim as gpu_sim;
pub use crossbow_nn as nn;
pub use crossbow_serve as serve;
pub use crossbow_shard as shard;
pub use crossbow_sync as sync;
pub use crossbow_telemetry as telemetry;
pub use crossbow_tensor as tensor;
