//! A concurrent CPU training runtime mirroring the paper's system
//! architecture (Figure 7).
//!
//! The synchronous driver in `crossbow-sync::trainer` computes all `k`
//! gradients, then synchronises — convenient for statistical experiments,
//! but it hides the system structure the paper builds. This module is the
//! *runtime* version: real threads, real queues, and the same pipelined
//! overlap as the GPU engine:
//!
//! * **data pre-processors** ([`crossbow_data::Prefetcher`]) fill a
//!   bounded batch queue (the circular buffer of §4.5);
//! * each **learner** runs on a worker thread: it takes a batch, computes
//!   the gradient against its replica (the *learning task*), applies the
//!   gradient plus the SMA correction against its snapshot of the central
//!   average model (the *local synchronisation task*), and posts its
//!   correction to the task manager;
//! * the **task manager** aggregates the `k` corrections of iteration `n`
//!   (the *global synchronisation task*), advances the central average
//!   model with Polyak momentum, and publishes the new version;
//! * learners may start iteration `n+1`'s learning task immediately after
//!   updating their replica — they only *wait for the published average
//!   model of iteration `n`* at their next local sync, reproducing the
//!   one-iteration-deep pipeline of Figure 8 (points *d*, *f*, *g*).
//!
//! Every learner draws batches from its own seeded sampler, so the
//! *numerics* are deterministic regardless of thread interleaving — a
//! property the tests rely on.

use crate::memory::ExecMemoryPlan;
use crossbow_checkpoint::{
    AlgoState, CheckpointError, CheckpointStore, DataCursor, RetentionPolicy, TrainingState,
};
use crossbow_data::{BatchSampler, Dataset};
use crossbow_nn::{Network, Scratch};
use crossbow_sync::CheckpointConfig;
use crossbow_telemetry::{SpanKind, Telemetry, HOST_DEVICE};
use crossbow_tensor::ops;
use crossbow_tensor::stats::WindowedMedian;
use std::sync::{Arc, Condvar, Mutex};

/// Algorithm tag written into the runtime's checkpoints; a store holding
/// a different algorithm's state is ignored rather than restored.
const ALGO_NAME: &str = "concurrent-sma";

/// Configuration of the concurrent runtime.
#[derive(Clone, Debug)]
pub struct CpuEngineConfig {
    /// Number of learners (worker threads).
    pub learners: usize,
    /// Batch size per learner.
    pub batch_per_learner: usize,
    /// Learning rate (constant; the runtime demonstrates the engine, not
    /// schedules).
    pub lr: f32,
    /// Central-model momentum µ.
    pub momentum: f32,
    /// Correction strength α (`None` = 1/k).
    pub alpha: Option<f32>,
    /// Weight decay added to gradients.
    pub weight_decay: f32,
    /// Stop after this many epochs (per the shared epoch clock).
    pub max_epochs: usize,
    /// Stop early at this median-of-5 test accuracy.
    pub target_accuracy: Option<f64>,
    /// Master seed.
    pub seed: u64,
    /// Durable checkpointing of the central average model. Unlike the
    /// synchronous trainer's bit-exact resume, the concurrent runtime
    /// restarts *approximately*: replicas are re-seeded from the restored
    /// average model — the same warm-restart rule the paper applies on
    /// learning-rate changes (§3.2) — and the per-learner samplers restart
    /// from their seeds, so a resumed run continues the optimisation
    /// trajectory without reproducing the exact batch order.
    pub checkpoint: Option<CheckpointConfig>,
    /// Span/metrics sink. Learners record batch-fetch, learning-task and
    /// local-sync spans; the task manager records global-sync, eval and
    /// checkpoint-write spans. `None` disables recording; elapsed-time
    /// measurement (throughput) always runs off the telemetry clock.
    pub telemetry: Option<Telemetry>,
}

impl CpuEngineConfig {
    /// A small default suitable for the synthetic tasks.
    pub fn new(learners: usize, batch_per_learner: usize) -> Self {
        CpuEngineConfig {
            learners,
            batch_per_learner,
            lr: 0.1,
            momentum: 0.9,
            alpha: None,
            weight_decay: 1e-4,
            max_epochs: 10,
            target_accuracy: None,
            seed: 42,
            checkpoint: None,
            telemetry: None,
        }
    }
}

/// Result of a concurrent training run.
#[derive(Clone, Debug)]
pub struct CpuEngineReport {
    /// Test accuracy of the central average model after each epoch.
    pub epoch_accuracy: Vec<f64>,
    /// Epochs until the median-of-5 accuracy reached the target.
    pub epochs_to_target: Option<usize>,
    /// Global synchronisation rounds executed.
    pub iterations: u64,
    /// Wall-clock training throughput (samples/s) — *real* time, unlike
    /// the simulator's.
    pub throughput: f64,
    /// Final accuracy.
    pub final_accuracy: f64,
    /// Global iterations recorded in the checkpoint this run warm-started
    /// from (`None` when it started fresh).
    pub resumed_from: Option<u64>,
}

/// Shared state: the published central average model.
struct CentralModel {
    /// (version, z); version counts completed global syncs.
    state: Mutex<(u64, Arc<Vec<f32>>)>,
    ready: Condvar,
}

impl CentralModel {
    fn new(init: Vec<f32>) -> Self {
        CentralModel {
            state: Mutex::new((0, Arc::new(init))),
            ready: Condvar::new(),
        }
    }

    /// Blocks until version >= `version`, returning that snapshot.
    fn wait_for(&self, version: u64) -> Arc<Vec<f32>> {
        let mut guard = self.state.lock().expect("central-model lock poisoned");
        while guard.0 < version {
            guard = self.ready.wait(guard).expect("central-model lock poisoned");
        }
        Arc::clone(&guard.1)
    }

    /// Publishes a new version, returning the displaced snapshot so the
    /// caller can recycle its storage once no learner holds it.
    fn publish(&self, version: u64, z: Vec<f32>) -> Arc<Vec<f32>> {
        let mut guard = self.state.lock().expect("central-model lock poisoned");
        debug_assert_eq!(guard.0 + 1, version, "versions advance one at a time");
        let old = std::mem::replace(&mut *guard, (version, Arc::new(z)));
        self.ready.notify_all();
        old.1
    }

    fn snapshot(&self) -> Arc<Vec<f32>> {
        Arc::clone(&self.state.lock().expect("central-model lock poisoned").1)
    }
}

/// A correction message from a learner to the task manager.
struct Contribution {
    iteration: u64,
    /// Learner lane the message came from (for buffer return).
    lane: usize,
    /// Sum contribution `c_j = α (w_j − z)` (computed pre-update).
    correction: Vec<f32>,
    /// Epoch of the batch that produced it (for the epoch clock).
    epoch: usize,
}

/// Runs SMA training with the concurrent runtime.
///
/// # Errors
/// [`CheckpointError::Io`] when the checkpoint directory cannot be
/// created or read.
///
/// # Panics
/// Panics on configuration mismatches (empty model, zero learners, batch
/// larger than the training set).
pub fn train_concurrent(
    net: &Network,
    train_set: &Dataset,
    test_set: &Dataset,
    config: &CpuEngineConfig,
) -> Result<CpuEngineReport, CheckpointError> {
    assert!(config.learners > 0, "need at least one learner");
    assert!(config.max_epochs > 0, "need at least one epoch");
    let k = config.learners;
    let alpha = config.alpha.unwrap_or(1.0 / k as f32);
    let plen = net.param_len();
    let mut rng = crossbow_tensor::Rng::new(config.seed ^ 0xC0FFEE);
    let mut init = net.init_params(&mut rng);
    let mut init_prev = init.clone();

    // Warm-start from the newest valid checkpoint, when one fits.
    let store = match config.checkpoint.as_ref() {
        Some(ck) => {
            let retention = RetentionPolicy {
                keep_last: ck.keep_last,
                keep_epoch_boundaries: true,
            };
            Some(CheckpointStore::open(&ck.dir, retention)?)
        }
        None => None,
    };
    let mut resumed_from = None;
    let mut prior_accuracy = Vec::new();
    let mut prior_samples = 0u64;
    if let Some(store) = &store {
        match store.load_latest() {
            Ok(Some(loaded))
                if loaded.state.seed == config.seed
                    && loaded.state.algorithm == ALGO_NAME
                    && loaded.state.algo.center.len() == plen
                    && loaded.state.algo.center_prev.len() == plen =>
            {
                init = loaded.state.algo.center.clone();
                init_prev = loaded.state.algo.center_prev.clone();
                resumed_from = Some(loaded.state.iterations);
                prior_accuracy = loaded.state.epoch_accuracy.clone();
                prior_samples = loaded.state.samples_processed;
            }
            // No checkpoint, a foreign one, or all copies corrupt: fresh.
            Ok(_) | Err(CheckpointError::Corrupt(_)) => {}
            Err(e @ CheckpointError::Io(_)) => return Err(e),
        }
    }

    let central = Arc::new(CentralModel::new(init.clone()));
    let (tx, rx) = std::sync::mpsc::channel::<Contribution>();
    // All timing — spans *and* the report's throughput — runs off the
    // telemetry clock, so a trace and the report can never disagree about
    // elapsed time.
    let telemetry = config.telemetry.clone().unwrap_or_else(Telemetry::disabled);
    let recorder = Arc::clone(&telemetry.recorder);
    let start_ns = recorder.now_ns();
    let batches_per_epoch_per_learner = {
        // Each learner owns a sampler over the whole set; an "epoch" of
        // the engine is one pass of every learner over its sampler, i.e.
        // k passes over the data in aggregate — matching the paper's
        // convention that epochs count data consumed across all learners.
        let per = train_set.len() / config.batch_per_learner;
        assert!(per > 0, "batch larger than the training set");
        per.div_ceil(k)
    };
    let iterations_total = (config.max_epochs * batches_per_epoch_per_learner) as u64;

    // Executable §4.5 plan: one pre-warmed arena per learner lane, built
    // before any thread starts so the hot path performs no fresh
    // allocations after warm-up. When lanes outnumber cores the GEMMs stay
    // serial; with idle cores each lane fans its large GEMMs out
    // (bit-identical to serial by the packed kernel's contract).
    let plan = ExecMemoryPlan::new(net, config.batch_per_learner, k);
    let threads_per_lane = std::thread::available_parallelism().map_or(1, |n| (n.get() / k).max(1));
    let mut lane_scratches: Vec<Scratch> = plan.build_scratches(net);
    for s in &mut lane_scratches {
        s.set_parallelism(threads_per_lane);
    }
    let arena_bytes_gauge = telemetry.metrics.gauge("memory.arena_bytes");
    let arena_reuse_gauge = telemetry.metrics.gauge("memory.arena_reuse");
    let arena_alloc_counter = telemetry.metrics.counter("memory.arena_alloc");
    // Per-lane return channels: the manager hands drained correction
    // buffers back so the learner/manager loop is allocation-free in the
    // steady state.
    let (return_txs, mut return_rxs): (Vec<_>, Vec<_>) = (0..k)
        .map(|_| std::sync::mpsc::channel::<Vec<f32>>())
        .unzip();

    // Spawn learners.
    let report = std::thread::scope(|scope| {
        for (j, mut scratch) in lane_scratches.into_iter().enumerate() {
            let central = Arc::clone(&central);
            let tx = tx.clone();
            let config = config.clone();
            let recorder = Arc::clone(&recorder);
            let return_rx = return_rxs.remove(0);
            let arena_bytes_gauge = Arc::clone(&arena_bytes_gauge);
            let arena_reuse_gauge = Arc::clone(&arena_reuse_gauge);
            let arena_alloc_counter = Arc::clone(&arena_alloc_counter);
            scope.spawn(move || {
                let mut shard = recorder.shard();
                let lane = j as u32;
                let mut sampler = BatchSampler::new(
                    train_set.len(),
                    config.batch_per_learner,
                    true,
                    config.seed.wrapping_add(j as u64 * 7919),
                );
                let mut replica = central.snapshot().as_ref().clone();
                let mut grad = vec![0.0f32; plen];
                let mut correction = vec![0.0f32; plen];
                for iteration in 0..iterations_total {
                    // Learning task: batch + gradient on the replica.
                    let t_fetch = shard.now_ns();
                    let (indices, _) = sampler.next_batch();
                    let (images, labels) = train_set
                        .gather(&indices)
                        .expect("sampler indices are in range");
                    shard.close(
                        SpanKind::BatchFetch,
                        "batch-fetch",
                        t_fetch,
                        HOST_DEVICE,
                        lane,
                        Some(iteration),
                    );
                    let epoch = (iteration / batches_per_epoch_per_learner as u64) as usize;
                    let t_learn = shard.now_ns();
                    net.loss_and_grad(&replica, &images, &labels, &mut grad, &mut scratch);
                    if config.weight_decay != 0.0 {
                        ops::axpy(config.weight_decay, &replica, &mut grad);
                    }
                    shard.close(
                        SpanKind::Learn,
                        "learn",
                        t_learn,
                        HOST_DEVICE,
                        lane,
                        Some(iteration),
                    );
                    // Local synchronisation task: needs the average model
                    // of the previous iteration (Figure 8, point d).
                    let t_local = shard.now_ns();
                    let z = central.wait_for(iteration);
                    ops::scaled_diff(alpha, &replica, &z, &mut correction);
                    for ((w, &g), &c) in replica.iter_mut().zip(grad.iter()).zip(correction.iter())
                    {
                        *w -= config.lr * g + c;
                    }
                    shard.close(
                        SpanKind::LocalSync,
                        "local-sync",
                        t_local,
                        HOST_DEVICE,
                        lane,
                        Some(iteration),
                    );
                    // Hand the correction to the task manager; the next
                    // learning task starts immediately (point g). The
                    // buffer travels by move; a drained one comes back on
                    // the return channel, so the steady state allocates
                    // nothing.
                    tx.send(Contribution {
                        iteration,
                        lane: j,
                        correction: std::mem::take(&mut correction),
                        epoch,
                    })
                    .expect("manager alive");
                    correction = return_rx.try_recv().unwrap_or_else(|_| vec![0.0f32; plen]);
                }
                let stats = scratch.workspace_stats();
                arena_bytes_gauge.set(stats.high_water as u64);
                arena_reuse_gauge.set(stats.reuse_hits);
                arena_alloc_counter.add(stats.fresh_allocs);
            });
        }
        drop(tx);

        // Task manager: aggregate corrections, run global sync, evaluate
        // at epoch boundaries.
        let test_images = test_set.images_tensor();
        let test_labels = test_set.labels().to_vec();
        let mut report = CpuEngineReport {
            epoch_accuracy: Vec::new(),
            epochs_to_target: None,
            iterations: 0,
            throughput: 0.0,
            final_accuracy: 0.0,
            resumed_from,
        };
        // The manager records on its own lane, after the learner lanes.
        let mut shard = recorder.shard();
        let manager_lane = k as u32;
        let mut z = init;
        let mut z_prev = init_prev;
        let mut median5 = WindowedMedian::new(5);
        let mut pending: std::collections::BTreeMap<u64, (usize, Vec<f32>, usize)> =
            std::collections::BTreeMap::new();
        let mut next_iteration = 0u64;
        let mut current_epoch = 0usize;
        let mut samples = 0u64;
        let mut stop_at_epoch: Option<usize> = None;
        // Recycled storage for published snapshots: once every learner has
        // dropped an old version, its Vec comes back here.
        let mut snapshot_pool: Vec<Vec<f32>> = Vec::new();
        while let Ok(msg) = rx.recv() {
            let entry = pending
                .entry(msg.iteration)
                .or_insert_with(|| (0, Vec::new(), 0));
            entry.0 += 1;
            if entry.1.is_empty() {
                // First arrival: its buffer becomes the accumulator.
                entry.1 = msg.correction;
            } else {
                ops::add_assign(&mut entry.1, &msg.correction);
                let _ = return_txs[msg.lane].send(msg.correction);
            }
            entry.2 = entry.2.max(msg.epoch);
            // Apply ready iterations in order.
            while pending
                .get(&next_iteration)
                .is_some_and(|(count, _, _)| *count == k)
            {
                let (_, sum_c, epoch) = pending.remove(&next_iteration).expect("checked");
                // Global synchronisation: z += Σc + µ(z − z_prev).
                let t_sync = shard.now_ns();
                for ((zi, zpi), &ci) in z.iter_mut().zip(z_prev.iter_mut()).zip(&sum_c) {
                    let old = *zi;
                    *zi = old + ci + config.momentum * (old - *zpi);
                    *zpi = old;
                }
                // Return the drained accumulator to a lane (round-robin).
                let _ = return_txs[(next_iteration as usize) % k].send(sum_c);
                // Publish from recycled snapshot storage when available.
                let mut published = snapshot_pool.pop().unwrap_or_default();
                published.clear();
                published.extend_from_slice(&z);
                let old_snapshot = central.publish(next_iteration + 1, published);
                if let Ok(v) = Arc::try_unwrap(old_snapshot) {
                    snapshot_pool.push(v);
                }
                shard.close(
                    SpanKind::GlobalSync,
                    "global-sync",
                    t_sync,
                    HOST_DEVICE,
                    manager_lane,
                    Some(next_iteration),
                );
                report.iterations += 1;
                samples += (k * config.batch_per_learner) as u64;
                next_iteration += 1;
                let boundary = epoch > current_epoch || next_iteration == iterations_total;
                if boundary {
                    let t_eval = shard.now_ns();
                    let acc = net.evaluate(&z, &test_images, &test_labels, 256);
                    shard.close(
                        SpanKind::Eval,
                        "eval",
                        t_eval,
                        HOST_DEVICE,
                        manager_lane,
                        Some(next_iteration - 1),
                    );
                    report.epoch_accuracy.push(acc);
                    median5.push(acc);
                    let finished = report.epoch_accuracy.len();
                    if let (Some(target), None) = (config.target_accuracy, report.epochs_to_target)
                    {
                        if median5.median().is_some_and(|m| m >= target) {
                            report.epochs_to_target = Some(finished);
                            // Let the in-flight iterations drain; learners
                            // stop at the epoch clock.
                            stop_at_epoch.get_or_insert(epoch);
                        }
                    }
                    current_epoch = epoch;
                    report.final_accuracy = acc;
                }
                if let (Some(store), Some(ck)) = (store.as_ref(), config.checkpoint.as_ref()) {
                    let save_boundary = boundary && ck.at_epoch_boundaries;
                    let periodic = ck.every > 0 && report.iterations.is_multiple_of(ck.every);
                    if save_boundary || periodic {
                        let mut epoch_accuracy = prior_accuracy.clone();
                        epoch_accuracy.extend_from_slice(&report.epoch_accuracy);
                        let state = TrainingState {
                            seed: config.seed,
                            algorithm: ALGO_NAME.to_string(),
                            iterations: resumed_from.unwrap_or(0) + report.iterations,
                            samples_processed: prior_samples + samples,
                            current_epoch: current_epoch as u64,
                            best_accuracy: report.final_accuracy,
                            epoch_accuracy,
                            cursor: DataCursor {
                                epoch: current_epoch as u64,
                                batch: 0,
                                groups: 0,
                            },
                            algo: AlgoState {
                                center: z.clone(),
                                center_prev: z_prev.clone(),
                                replicas: Vec::new(),
                                aux: Vec::new(),
                                iter: next_iteration,
                            },
                            ..TrainingState::default()
                        };
                        let t_ck = shard.now_ns();
                        store
                            .save(&state, save_boundary)
                            .expect("checkpoint write failed");
                        shard.close(
                            SpanKind::CheckpointWrite,
                            "checkpoint-write",
                            t_ck,
                            HOST_DEVICE,
                            manager_lane,
                            Some(next_iteration - 1),
                        );
                    }
                }
            }
        }
        let elapsed_secs = (recorder.now_ns().saturating_sub(start_ns)) as f64 / 1e9;
        report.throughput = samples as f64 / elapsed_secs.max(1e-9);
        report
    });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbow_data::synth::gaussian_mixture;
    use crossbow_nn::zoo::mlp;

    fn setup() -> (Network, Dataset, Dataset) {
        let net = mlp(6, &[16], 4);
        let data = gaussian_mixture(4, 6, 480, 0.35, 7);
        let (train_set, test_set) = data.split_at(400).expect("split in range");
        (net, train_set, test_set)
    }

    #[test]
    fn concurrent_engine_learns() {
        let (net, train_set, test_set) = setup();
        let mut cfg = CpuEngineConfig::new(4, 8);
        cfg.max_epochs = 8;
        let report = train_concurrent(&net, &train_set, &test_set, &cfg).expect("run");
        assert!(
            report.final_accuracy > 0.85,
            "accuracy {}",
            report.final_accuracy
        );
        assert!(report.throughput > 0.0);
        assert_eq!(report.epoch_accuracy.len(), 8);
    }

    #[test]
    fn deterministic_despite_threads() {
        // Batches come from per-learner samplers and synchronisation is
        // ordered by iteration number, so thread interleaving cannot
        // change the numerics.
        let (net, train_set, test_set) = setup();
        let run = || {
            let mut cfg = CpuEngineConfig::new(3, 8);
            cfg.max_epochs = 4;
            train_concurrent(&net, &train_set, &test_set, &cfg)
                .expect("run")
                .epoch_accuracy
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn iterations_count_global_syncs() {
        let (net, train_set, test_set) = setup();
        let mut cfg = CpuEngineConfig::new(2, 10);
        cfg.max_epochs = 3;
        let report = train_concurrent(&net, &train_set, &test_set, &cfg).expect("run");
        // 400 samples / batch 10 = 40 batches/epoch, / 2 learners = 20
        // iterations per epoch, x3 epochs.
        assert_eq!(report.iterations, 60);
    }

    #[test]
    fn single_learner_works() {
        let (net, train_set, test_set) = setup();
        let mut cfg = CpuEngineConfig::new(1, 16);
        cfg.max_epochs = 6;
        let report = train_concurrent(&net, &train_set, &test_set, &cfg).expect("run");
        assert!(report.final_accuracy > 0.8, "{}", report.final_accuracy);
    }

    #[test]
    fn target_is_recorded() {
        let (net, train_set, test_set) = setup();
        let mut cfg = CpuEngineConfig::new(2, 8);
        cfg.max_epochs = 12;
        cfg.target_accuracy = Some(0.8);
        let report = train_concurrent(&net, &train_set, &test_set, &cfg).expect("run");
        let eta = report.epochs_to_target.expect("easy target");
        assert!(eta <= 12);
    }

    #[test]
    fn warm_start_resumes_from_the_checkpointed_average_model() {
        let (net, train_set, test_set) = setup();
        let dir =
            std::env::temp_dir().join(format!("crossbow-cpu-engine-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = CpuEngineConfig::new(3, 8);
        cfg.max_epochs = 5;
        cfg.checkpoint = Some(CheckpointConfig::new(&dir).every(0));
        let first = train_concurrent(&net, &train_set, &test_set, &cfg).expect("run");
        assert_eq!(first.resumed_from, None);
        assert!(first.final_accuracy > 0.8, "{}", first.final_accuracy);

        // The second run warm-starts from the final epoch-boundary
        // checkpoint and keeps learning rather than restarting from
        // random initialisation.
        let second = train_concurrent(&net, &train_set, &test_set, &cfg).expect("run");
        assert_eq!(second.resumed_from, Some(first.iterations));
        assert!(second.final_accuracy > 0.8, "{}", second.final_accuracy);
        assert!(
            second.epoch_accuracy[0] > 0.7,
            "first epoch after warm start should not regress to random: {}",
            second.epoch_accuracy[0]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn arena_allocations_are_flat_across_iterations() {
        // The §4.5 executable plan promises O(1) fresh arena allocations
        // per learner regardless of how long training runs: doubling the
        // epoch count must not change the allocation counter.
        let (net, train_set, test_set) = setup();
        let allocs_for = |epochs: usize| {
            let telemetry = Telemetry::disabled();
            let mut cfg = CpuEngineConfig::new(2, 8);
            cfg.max_epochs = epochs;
            cfg.telemetry = Some(telemetry.clone());
            train_concurrent(&net, &train_set, &test_set, &cfg).expect("run");
            telemetry.metrics.counter("memory.arena_alloc").get()
        };
        let short = allocs_for(2);
        let long = allocs_for(4);
        assert!(short > 0, "arena was used");
        assert_eq!(
            short, long,
            "fresh arena allocations must not scale with iteration count"
        );
    }

    #[test]
    fn arena_telemetry_gauges_are_recorded() {
        let (net, train_set, test_set) = setup();
        let telemetry = Telemetry::disabled();
        let mut cfg = CpuEngineConfig::new(2, 8);
        cfg.max_epochs = 2;
        cfg.telemetry = Some(telemetry.clone());
        train_concurrent(&net, &train_set, &test_set, &cfg).expect("run");
        assert!(telemetry.metrics.gauge("memory.arena_bytes").max() > 0);
        assert!(telemetry.metrics.gauge("memory.arena_reuse").max() > 0);
    }

    #[test]
    fn matches_synchronous_sma_closely() {
        // The runtime computes the same algorithm as `sync::Sma` driven by
        // the synchronous trainer (modulo batch-order differences);
        // accuracies must land in the same region.
        let (net, train_set, test_set) = setup();
        let mut cfg = CpuEngineConfig::new(4, 8);
        cfg.max_epochs = 8;
        let concurrent = train_concurrent(&net, &train_set, &test_set, &cfg).expect("run");
        let mut algo = crossbow_sync::Sma::new(
            {
                let mut rng = crossbow_tensor::Rng::new(cfg.seed ^ 0xC0FFEE);
                net.init_params(&mut rng)
            },
            4,
            crossbow_sync::SmaConfig::default(),
        );
        let trainer_cfg = crossbow_sync::TrainerConfig {
            batch_per_learner: 8,
            max_epochs: 8,
            target_accuracy: None,
            schedule: crossbow_sync::LrSchedule::Constant { lr: cfg.lr },
            weight_decay: cfg.weight_decay,
            eval_batch: 256,
            seed: cfg.seed,
            threads: 1,
            partition: None,
            guard: None,
            inject_nan_at: None,
            checkpoint: None,
            crash_after: None,
            publish: None,
            state_hook: None,
            telemetry: None,
        };
        let synchronous =
            crossbow_sync::train(&net, &train_set, &test_set, &mut algo, &trainer_cfg);
        let diff = (concurrent.final_accuracy - synchronous.final_accuracy).abs();
        assert!(
            diff < 0.15,
            "concurrent {} vs synchronous {}",
            concurrent.final_accuracy,
            synchronous.final_accuracy
        );
    }
}
