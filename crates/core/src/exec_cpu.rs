//! A concurrent CPU training runtime mirroring the paper's system
//! architecture (Figure 7).
//!
//! The synchronous driver in `crossbow-sync::trainer` computes all `k`
//! gradients, then synchronises — convenient for statistical experiments,
//! but it hides the system structure the paper builds. This module is the
//! *runtime* version: real threads, real queues, and the same pipelined
//! overlap as the GPU engine:
//!
//! * **data pre-processors** ([`crossbow_data::Prefetcher`]) fill a
//!   bounded batch queue (the circular buffer of §4.5);
//! * each **learner** runs on a worker thread: it takes a batch, computes
//!   the gradient against its replica (the *learning task*), applies the
//!   gradient plus the SMA correction against its snapshot of the central
//!   average model (the *local synchronisation task*), and posts its
//!   correction to the task manager;
//! * the **task manager** aggregates the `k` corrections of iteration `n`
//!   (the *global synchronisation task*), advances the central average
//!   model with Polyak momentum, and publishes the new version;
//! * learners may start iteration `n+1`'s learning task immediately after
//!   updating their replica — they only *wait for the published average
//!   model of iteration `n`* at their next local sync, reproducing the
//!   one-iteration-deep pipeline of Figure 8 (points *d*, *f*, *g*).
//!
//! Every learner draws batches from its own seeded sampler, so the
//! *numerics* are deterministic regardless of thread interleaving — a
//! property the tests rely on.

use crossbow_data::{BatchSampler, Dataset};
use crossbow_nn::Network;
use crossbow_tensor::ops;
use crossbow_tensor::stats::WindowedMedian;
use std::sync::{Arc, Condvar, Mutex};

/// Configuration of the concurrent runtime.
#[derive(Clone, Debug)]
pub struct CpuEngineConfig {
    /// Number of learners (worker threads).
    pub learners: usize,
    /// Batch size per learner.
    pub batch_per_learner: usize,
    /// Learning rate (constant; the runtime demonstrates the engine, not
    /// schedules).
    pub lr: f32,
    /// Central-model momentum µ.
    pub momentum: f32,
    /// Correction strength α (`None` = 1/k).
    pub alpha: Option<f32>,
    /// Weight decay added to gradients.
    pub weight_decay: f32,
    /// Stop after this many epochs (per the shared epoch clock).
    pub max_epochs: usize,
    /// Stop early at this median-of-5 test accuracy.
    pub target_accuracy: Option<f64>,
    /// Master seed.
    pub seed: u64,
}

impl CpuEngineConfig {
    /// A small default suitable for the synthetic tasks.
    pub fn new(learners: usize, batch_per_learner: usize) -> Self {
        CpuEngineConfig {
            learners,
            batch_per_learner,
            lr: 0.1,
            momentum: 0.9,
            alpha: None,
            weight_decay: 1e-4,
            max_epochs: 10,
            target_accuracy: None,
            seed: 42,
        }
    }
}

/// Result of a concurrent training run.
#[derive(Clone, Debug)]
pub struct CpuEngineReport {
    /// Test accuracy of the central average model after each epoch.
    pub epoch_accuracy: Vec<f64>,
    /// Epochs until the median-of-5 accuracy reached the target.
    pub epochs_to_target: Option<usize>,
    /// Global synchronisation rounds executed.
    pub iterations: u64,
    /// Wall-clock training throughput (samples/s) — *real* time, unlike
    /// the simulator's.
    pub throughput: f64,
    /// Final accuracy.
    pub final_accuracy: f64,
}

/// Shared state: the published central average model.
struct CentralModel {
    /// (version, z); version counts completed global syncs.
    state: Mutex<(u64, Arc<Vec<f32>>)>,
    ready: Condvar,
}

impl CentralModel {
    fn new(init: Vec<f32>) -> Self {
        CentralModel {
            state: Mutex::new((0, Arc::new(init))),
            ready: Condvar::new(),
        }
    }

    /// Blocks until version >= `version`, returning that snapshot.
    fn wait_for(&self, version: u64) -> Arc<Vec<f32>> {
        let mut guard = self.state.lock().expect("central-model lock poisoned");
        while guard.0 < version {
            guard = self.ready.wait(guard).expect("central-model lock poisoned");
        }
        Arc::clone(&guard.1)
    }

    fn publish(&self, version: u64, z: Vec<f32>) {
        let mut guard = self.state.lock().expect("central-model lock poisoned");
        debug_assert_eq!(guard.0 + 1, version, "versions advance one at a time");
        *guard = (version, Arc::new(z));
        self.ready.notify_all();
    }

    fn snapshot(&self) -> Arc<Vec<f32>> {
        Arc::clone(&self.state.lock().expect("central-model lock poisoned").1)
    }
}

/// A correction message from a learner to the task manager.
struct Contribution {
    iteration: u64,
    /// Sum contribution `c_j = α (w_j − z)` (computed pre-update).
    correction: Vec<f32>,
    /// Epoch of the batch that produced it (for the epoch clock).
    epoch: usize,
}

/// Runs SMA training with the concurrent runtime.
///
/// # Panics
/// Panics on configuration mismatches (empty model, zero learners, batch
/// larger than the training set).
pub fn train_concurrent(
    net: &Network,
    train_set: &Dataset,
    test_set: &Dataset,
    config: &CpuEngineConfig,
) -> CpuEngineReport {
    assert!(config.learners > 0, "need at least one learner");
    assert!(config.max_epochs > 0, "need at least one epoch");
    let k = config.learners;
    let alpha = config.alpha.unwrap_or(1.0 / k as f32);
    let plen = net.param_len();
    let mut rng = crossbow_tensor::Rng::new(config.seed ^ 0xC0FFEE);
    let init = net.init_params(&mut rng);

    let central = Arc::new(CentralModel::new(init.clone()));
    let (tx, rx) = std::sync::mpsc::channel::<Contribution>();
    let start = std::time::Instant::now();
    let batches_per_epoch_per_learner = {
        // Each learner owns a sampler over the whole set; an "epoch" of
        // the engine is one pass of every learner over its sampler, i.e.
        // k passes over the data in aggregate — matching the paper's
        // convention that epochs count data consumed across all learners.
        let per = train_set.len() / config.batch_per_learner;
        assert!(per > 0, "batch larger than the training set");
        per.div_ceil(k)
    };
    let iterations_total = (config.max_epochs * batches_per_epoch_per_learner) as u64;

    // Spawn learners.
    std::thread::scope(|scope| {
        for j in 0..k {
            let central = Arc::clone(&central);
            let tx = tx.clone();
            let config = config.clone();
            scope.spawn(move || {
                let mut sampler = BatchSampler::new(
                    train_set.len(),
                    config.batch_per_learner,
                    true,
                    config.seed.wrapping_add(j as u64 * 7919),
                );
                let mut scratch = net.scratch();
                let mut replica = central.snapshot().as_ref().clone();
                let mut grad = vec![0.0f32; plen];
                let mut correction = vec![0.0f32; plen];
                for iteration in 0..iterations_total {
                    // Learning task: batch + gradient on the replica.
                    let (indices, _) = sampler.next_batch();
                    let (images, labels) = train_set.gather(&indices);
                    let epoch = (iteration / batches_per_epoch_per_learner as u64) as usize;
                    net.loss_and_grad(&replica, &images, &labels, &mut grad, &mut scratch);
                    if config.weight_decay != 0.0 {
                        ops::axpy(config.weight_decay, &replica, &mut grad);
                    }
                    // Local synchronisation task: needs the average model
                    // of the previous iteration (Figure 8, point d).
                    let z = central.wait_for(iteration);
                    ops::scaled_diff(alpha, &replica, &z, &mut correction);
                    for ((w, &g), &c) in
                        replica.iter_mut().zip(grad.iter()).zip(correction.iter())
                    {
                        *w -= config.lr * g + c;
                    }
                    // Hand the correction to the task manager; the next
                    // learning task starts immediately (point g).
                    tx.send(Contribution {
                        iteration,
                        correction: correction.clone(),
                        epoch,
                    })
                    .expect("manager alive");
                }
            });
        }
        drop(tx);

        // Task manager: aggregate corrections, run global sync, evaluate
        // at epoch boundaries.
        let test_images = test_set.images_tensor();
        let test_labels = test_set.labels().to_vec();
        let mut report = CpuEngineReport {
            epoch_accuracy: Vec::new(),
            epochs_to_target: None,
            iterations: 0,
            throughput: 0.0,
            final_accuracy: 0.0,
        };
        let mut z = init.clone();
        let mut z_prev = init;
        let mut median5 = WindowedMedian::new(5);
        let mut pending: std::collections::BTreeMap<u64, (usize, Vec<f32>, usize)> =
            std::collections::BTreeMap::new();
        let mut next_iteration = 0u64;
        let mut current_epoch = 0usize;
        let mut samples = 0u64;
        let mut stop_at_epoch: Option<usize> = None;
        while let Ok(msg) = rx.recv() {
            let entry = pending
                .entry(msg.iteration)
                .or_insert_with(|| (0, vec![0.0f32; plen], 0));
            entry.0 += 1;
            ops::add_assign(&mut entry.1, &msg.correction);
            entry.2 = entry.2.max(msg.epoch);
            // Apply ready iterations in order.
            while pending
                .get(&next_iteration)
                .is_some_and(|(count, _, _)| *count == k)
            {
                let (_, sum_c, epoch) = pending.remove(&next_iteration).expect("checked");
                // Global synchronisation: z += Σc + µ(z − z_prev).
                for ((zi, zpi), &ci) in z.iter_mut().zip(z_prev.iter_mut()).zip(&sum_c) {
                    let old = *zi;
                    *zi = old + ci + config.momentum * (old - *zpi);
                    *zpi = old;
                }
                central.publish(next_iteration + 1, z.clone());
                report.iterations += 1;
                samples += (k * config.batch_per_learner) as u64;
                next_iteration += 1;
                if epoch > current_epoch
                    || next_iteration == iterations_total
                {
                    let acc =
                        net.evaluate(&z, &test_images, &test_labels, 256);
                    report.epoch_accuracy.push(acc);
                    median5.push(acc);
                    let finished = report.epoch_accuracy.len();
                    if let (Some(target), None) =
                        (config.target_accuracy, report.epochs_to_target)
                    {
                        if median5.median().is_some_and(|m| m >= target) {
                            report.epochs_to_target = Some(finished);
                            // Let the in-flight iterations drain; learners
                            // stop at the epoch clock.
                            stop_at_epoch.get_or_insert(epoch);
                        }
                    }
                    current_epoch = epoch;
                    report.final_accuracy = acc;
                }
            }
        }
        report.throughput = samples as f64 / start.elapsed().as_secs_f64().max(1e-9);
        report
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbow_data::synth::gaussian_mixture;
    use crossbow_nn::zoo::mlp;

    fn setup() -> (Network, Dataset, Dataset) {
        let net = mlp(6, &[16], 4);
        let data = gaussian_mixture(4, 6, 480, 0.35, 7);
        let (train_set, test_set) = data.split_at(400);
        (net, train_set, test_set)
    }

    #[test]
    fn concurrent_engine_learns() {
        let (net, train_set, test_set) = setup();
        let mut cfg = CpuEngineConfig::new(4, 8);
        cfg.max_epochs = 8;
        let report = train_concurrent(&net, &train_set, &test_set, &cfg);
        assert!(
            report.final_accuracy > 0.85,
            "accuracy {}",
            report.final_accuracy
        );
        assert!(report.throughput > 0.0);
        assert_eq!(report.epoch_accuracy.len(), 8);
    }

    #[test]
    fn deterministic_despite_threads() {
        // Batches come from per-learner samplers and synchronisation is
        // ordered by iteration number, so thread interleaving cannot
        // change the numerics.
        let (net, train_set, test_set) = setup();
        let run = || {
            let mut cfg = CpuEngineConfig::new(3, 8);
            cfg.max_epochs = 4;
            train_concurrent(&net, &train_set, &test_set, &cfg).epoch_accuracy
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn iterations_count_global_syncs() {
        let (net, train_set, test_set) = setup();
        let mut cfg = CpuEngineConfig::new(2, 10);
        cfg.max_epochs = 3;
        let report = train_concurrent(&net, &train_set, &test_set, &cfg);
        // 400 samples / batch 10 = 40 batches/epoch, / 2 learners = 20
        // iterations per epoch, x3 epochs.
        assert_eq!(report.iterations, 60);
    }

    #[test]
    fn single_learner_works() {
        let (net, train_set, test_set) = setup();
        let mut cfg = CpuEngineConfig::new(1, 16);
        cfg.max_epochs = 6;
        let report = train_concurrent(&net, &train_set, &test_set, &cfg);
        assert!(report.final_accuracy > 0.8, "{}", report.final_accuracy);
    }

    #[test]
    fn target_is_recorded() {
        let (net, train_set, test_set) = setup();
        let mut cfg = CpuEngineConfig::new(2, 8);
        cfg.max_epochs = 12;
        cfg.target_accuracy = Some(0.8);
        let report = train_concurrent(&net, &train_set, &test_set, &cfg);
        let eta = report.epochs_to_target.expect("easy target");
        assert!(eta <= 12);
    }

    #[test]
    fn matches_synchronous_sma_closely() {
        // The runtime computes the same algorithm as `sync::Sma` driven by
        // the synchronous trainer (modulo batch-order differences);
        // accuracies must land in the same region.
        let (net, train_set, test_set) = setup();
        let mut cfg = CpuEngineConfig::new(4, 8);
        cfg.max_epochs = 8;
        let concurrent = train_concurrent(&net, &train_set, &test_set, &cfg);
        let mut algo = crossbow_sync::Sma::new(
            {
                let mut rng = crossbow_tensor::Rng::new(cfg.seed ^ 0xC0FFEE);
                net.init_params(&mut rng)
            },
            4,
            crossbow_sync::SmaConfig::default(),
        );
        let trainer_cfg = crossbow_sync::TrainerConfig {
            batch_per_learner: 8,
            max_epochs: 8,
            target_accuracy: None,
            schedule: crossbow_sync::LrSchedule::Constant { lr: cfg.lr },
            weight_decay: cfg.weight_decay,
            eval_batch: 256,
            seed: cfg.seed,
            threads: 1,
            guard: None,
            inject_nan_at: None,
        };
        let synchronous =
            crossbow_sync::train(&net, &train_set, &test_set, &mut algo, &trainer_cfg);
        let diff = (concurrent.final_accuracy - synchronous.final_accuracy).abs();
        assert!(
            diff < 0.15,
            "concurrent {} vs synchronous {}",
            concurrent.final_accuracy,
            synchronous.final_accuracy
        );
    }
}
