//! Auto-tuning the number of learners per GPU (Algorithm 2, §3.4, §4.4).
//!
//! The auto-tuner watches the training throughput reported by the task
//! manager. Starting from one learner per GPU, it adds a learner whenever
//! throughput grew by more than a tolerance `τ` since the last
//! observation, and removes one when throughput *fell*. On a server with
//! homogeneous GPUs one throughput signal tunes all GPUs (§4.4).
//!
//! The tuner is a pure decision procedure — the engine applies its
//! [`Action`]s by pausing the pipeline, allocating a replica initialised
//! from the average model, and resuming (§4.4). That separation makes it
//! directly testable against Algorithm 2.

/// A resize decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Add one learner per GPU.
    AddLearner,
    /// Remove one learner per GPU.
    RemoveLearner,
    /// Keep the current configuration.
    Keep,
}

/// Algorithm 2 over one throughput signal.
#[derive(Clone, Debug)]
pub struct AutoTuner {
    /// Tolerance τ: minimum throughput gain (images/s) that justifies
    /// another learner.
    tolerance: f64,
    /// Current learners per GPU.
    learners: usize,
    /// Throughput observed at the previous decision point (`t'` in
    /// Algorithm 2).
    prev_throughput: f64,
    /// Whether the tuner has settled (stopped changing the count).
    settled: bool,
    /// Whether the last decision added a learner.
    last_added: bool,
}

impl AutoTuner {
    /// Creates a tuner with the given tolerance, starting from one
    /// learner per GPU (Algorithm 2, line 1).
    ///
    /// # Panics
    /// Panics if the tolerance is negative or not finite.
    pub fn new(tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance >= 0.0,
            "bad tolerance {tolerance}"
        );
        AutoTuner {
            tolerance,
            learners: 1,
            prev_throughput: 0.0,
            settled: false,
            last_added: false,
        }
    }

    /// Current learners per GPU.
    pub fn learners(&self) -> usize {
        self.learners
    }

    /// True once the tuner has stopped changing the configuration.
    pub fn is_settled(&self) -> bool {
        self.settled
    }

    /// Observes the current throughput (images/s) and decides
    /// (Algorithm 2, lines 5–8).
    ///
    /// One refinement over the algorithm listing implements the paper's
    /// stated intent — "it then uses the number of learners that resulted
    /// in *peak* throughput" (§1): when the last added learner produced a
    /// below-tolerance gain, the tuner backs it off rather than keeping a
    /// learner that buys nothing.
    pub fn observe(&mut self, throughput: f64) -> Action {
        assert!(throughput.is_finite() && throughput >= 0.0);
        let gained = throughput - self.prev_throughput > self.tolerance;
        let degraded = throughput < self.prev_throughput;
        let action = if gained {
            self.learners += 1;
            self.last_added = true;
            Action::AddLearner
        } else if (degraded || self.last_added) && self.learners > 1 {
            // Either throughput fell, or the learner we just added was not
            // worth its tolerance: back off and settle.
            self.learners -= 1;
            self.last_added = false;
            self.settled = true;
            Action::RemoveLearner
        } else {
            self.last_added = false;
            self.settled = true;
            Action::Keep
        };
        self.prev_throughput = throughput;
        action
    }
}

/// Runs the tuner against a throughput oracle until it settles (or a step
/// cap is hit) and returns `(chosen learners per GPU, the (m, throughput)
/// observations)`. The oracle is typically a GPU-simulator run; tests use
/// closed-form curves.
pub fn tune_to_convergence(
    tolerance: f64,
    max_learners: usize,
    mut oracle: impl FnMut(usize) -> f64,
) -> (usize, Vec<(usize, f64)>) {
    assert!(max_learners >= 1);
    let mut tuner = AutoTuner::new(tolerance);
    let mut observations = Vec::new();
    // Algorithm 2 observes the throughput of the *current* configuration,
    // then adapts.
    for _ in 0..max_learners + 2 {
        let m = tuner.learners();
        let t = oracle(m);
        observations.push((m, t));
        match tuner.observe(t) {
            Action::AddLearner if tuner.learners() <= max_learners => {}
            Action::AddLearner => {
                // Hit the cap: stay at the cap.
                return (max_learners, observations);
            }
            Action::RemoveLearner | Action::Keep => {
                return (tuner.learners(), observations);
            }
        }
    }
    (tuner.learners(), observations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_with_one_learner() {
        let t = AutoTuner::new(10.0);
        assert_eq!(t.learners(), 1);
        assert!(!t.is_settled());
    }

    #[test]
    fn growing_throughput_adds_learners() {
        let mut t = AutoTuner::new(10.0);
        assert_eq!(t.observe(100.0), Action::AddLearner);
        assert_eq!(t.observe(150.0), Action::AddLearner);
        assert_eq!(t.learners(), 3);
    }

    #[test]
    fn plateau_backs_off_the_useless_learner() {
        let mut t = AutoTuner::new(10.0);
        t.observe(100.0); // -> 2
                          // The second learner gained only 5 images/s: not worth it.
        assert_eq!(t.observe(105.0), Action::RemoveLearner);
        assert_eq!(t.learners(), 1);
        assert!(t.is_settled());
        // A later plateau at the same count keeps it.
        assert_eq!(t.observe(105.0), Action::Keep);
        assert_eq!(t.learners(), 1);
    }

    #[test]
    fn drop_removes_a_learner() {
        let mut t = AutoTuner::new(10.0);
        t.observe(100.0); // -> 2
        t.observe(150.0); // -> 3
        assert_eq!(t.observe(140.0), Action::RemoveLearner);
        assert_eq!(t.learners(), 2);
    }

    #[test]
    fn never_removes_below_one() {
        let mut t = AutoTuner::new(0.5);
        t.observe(10.0); // -> 2
        t.observe(5.0); // -> 1
        assert_eq!(t.observe(1.0), Action::Keep);
        assert_eq!(t.learners(), 1);
    }

    #[test]
    fn finds_the_knee_of_a_saturating_curve() {
        // Throughput grows to m = 4 then plateaus: the tuner must settle
        // at 4 (the paper's Figure 14 behaviour: best m saturates
        // throughput).
        let curve = |m: usize| match m {
            1 => 1000.0,
            2 => 1500.0,
            3 => 1800.0,
            4 => 2000.0,
            _ => 2010.0, // within tolerance: not worth another learner
        };
        let (m, obs) = tune_to_convergence(50.0, 8, curve);
        assert_eq!(m, 4, "observations: {obs:?}");
    }

    #[test]
    fn backs_off_when_throughput_degrades() {
        // Throughput peaks at m = 3 then falls (over-sequentialised GPU,
        // §3.4): the tuner must back off to 3.
        let curve = |m: usize| match m {
            1 => 1000.0,
            2 => 1600.0,
            3 => 1900.0,
            _ => 1700.0,
        };
        let (m, _) = tune_to_convergence(50.0, 8, curve);
        assert_eq!(m, 3);
    }

    #[test]
    fn respects_learner_cap() {
        let (m, _) = tune_to_convergence(1.0, 4, |m| (m * 1000) as f64);
        assert_eq!(m, 4);
    }

    #[test]
    fn flat_curve_stays_at_one() {
        // First observation from 0 always adds (any throughput beats
        // nothing), then the flat curve stops it at 2 -> removal -> 1.
        let (m, _) = tune_to_convergence(10.0, 8, |_| 500.0);
        assert!(m <= 2, "flat curve must not grow: {m}");
    }
}
