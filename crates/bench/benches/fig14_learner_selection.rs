//! Figure 14: selecting the number of learners per GPU.
//!
//! ResNet-32 (b=64) and VGG (b=256): TTA and throughput improvement over
//! m=1 for growing m, plus the auto-tuner's pick. The paper's claim: the
//! m that saturates throughput is also the m that minimises TTA, so
//! tuning on throughput alone (Algorithm 2) finds the best configuration.

use crossbow::autotuner::tune_to_convergence;
use crossbow::benchmark::Benchmark;
use crossbow::engine::AlgorithmKind;
use crossbow::exec_sim::{simulate, SimConfig};
use crossbow_bench::{epochs, fmt_tta, full_run, quick_mode, section, table};

fn main() {
    let cases: Vec<(Benchmark, usize, usize)> = if quick_mode() {
        vec![(Benchmark::resnet32(), 1, 64)]
    } else {
        vec![
            (Benchmark::resnet32(), 1, 64),
            (Benchmark::resnet32(), 8, 64),
            (Benchmark::vgg16(), 1, 256),
        ]
    };
    let ms: &[usize] = if quick_mode() { &[1, 2] } else { &[1, 2, 3, 4] };
    for (benchmark, gpus, batch) in cases {
        let budget = epochs(40);
        section(&format!(
            "Figure 14 ({}, g={gpus}, b={batch}): TTA and throughput vs m",
            benchmark.name
        ));
        // The auto-tuner's pick, from throughput probes alone.
        let probe =
            |m: usize| simulate(&SimConfig::crossbow(benchmark.profile, gpus, m, batch)).throughput;
        let base = probe(1);
        let (chosen, _) = tune_to_convergence(base * 0.05, 6, probe);

        let mut rows = Vec::new();
        let mut t1 = None;
        for &m in ms {
            let row = full_run(
                benchmark,
                AlgorithmKind::Sma { tau: 1 },
                gpus,
                Some(m),
                batch,
                budget,
                benchmark.scaled_target,
                42,
            );
            let t1v = *t1.get_or_insert(row.throughput);
            rows.push(vec![
                m.to_string(),
                format!("{:+.0}%", (row.throughput / t1v - 1.0) * 100.0),
                fmt_tta(row.tta_secs),
                if m == chosen { "<- tuner".to_string() } else { String::new() },
            ]);
        }
        table(&["m", "throughput vs m=1", "TTA", "auto-tuner"], &rows);
    }
    println!();
    println!("  paper: throughput saturates at m=4 (1 GPU) / m=2 (8 GPUs), matching");
    println!("  the m that minimises TTA; the tuner stops there (§5.4).");
}
