//! Figure 11: test accuracy over (simulated) time.
//!
//! ResNet-32 with 1 and 8 GPUs: the baseline vs CROSSBOW with m=1 and the
//! best m. Each point is (simulated seconds, test accuracy); the paper's
//! claim is that CROSSBOW "achieves high accuracy within a few minutes".

use crossbow::benchmark::Benchmark;
use crossbow::engine::AlgorithmKind;
use crossbow_bench::{epochs, full_run, quick_mode, section};

fn main() {
    let benchmark = Benchmark::resnet32();
    let gpu_counts: &[usize] = if quick_mode() { &[8] } else { &[1, 8] };
    let budget = epochs(30);
    for &g in gpu_counts {
        section(&format!(
            "Figure 11 (ResNet-32, g={g}): accuracy over simulated time"
        ));
        let systems: [(&str, AlgorithmKind, Option<usize>); 3] = [
            ("TensorFlow", AlgorithmKind::SSgd, Some(1)),
            ("Crossbow m=1", AlgorithmKind::Sma { tau: 1 }, Some(1)),
            ("Crossbow best m", AlgorithmKind::Sma { tau: 1 }, None),
        ];
        for (label, algorithm, m) in systems {
            let row = full_run(
                benchmark,
                algorithm,
                g,
                m,
                benchmark.profile.default_batch,
                budget,
                benchmark.scaled_target,
                42,
            );
            println!("  {label} (m={}):", row.m);
            print!("    ");
            for (e, acc) in row.curve.iter().enumerate() {
                let t = (e + 1) as f64 * row.epoch_secs;
                print!("{t:.0}s:{acc:.2} ");
                if (e + 1) % 8 == 0 {
                    println!();
                    print!("    ");
                }
            }
            println!();
        }
    }
    println!();
    println!("  paper: with 8 GPUs CROSSBOW exceeds 80% in 92 s vs 252 s for");
    println!("         TensorFlow (a 63% TTA reduction).");
}
