//! Figure 15: SMA vs elastic averaging (EA-SGD) inside CROSSBOW.
//!
//! ResNet-32, growing GPU counts, same engine — only the synchronisation
//! algorithm differs. The paper: SMA's momentum-corrected average model
//! reduces TTA by 9% (1 GPU) to 61% (8 GPUs), because with more learners
//! the averaged model's variance shrinks and, without momentum, it stalls
//! in local minima.

use crossbow::benchmark::Benchmark;
use crossbow::engine::AlgorithmKind;
use crossbow_bench::{epochs, fmt_eta, fmt_tta, full_run, quick_mode, section, table};

fn main() {
    let benchmark = Benchmark::resnet32();
    let budget = epochs(40);
    let gpu_counts: &[usize] = if quick_mode() { &[1, 8] } else { &[1, 2, 4, 8] };

    section("Figure 15: TTA of SMA vs EA-SGD (ResNet-32, m=2 per GPU)");
    let mut rows = Vec::new();
    for &g in gpu_counts {
        for (label, algorithm) in [
            ("SMA", AlgorithmKind::Sma { tau: 1 }),
            ("EA-SGD", AlgorithmKind::EaSgd { tau: 1 }),
        ] {
            let row = full_run(
                benchmark,
                algorithm,
                g,
                Some(2),
                64,
                budget,
                benchmark.scaled_target,
                42,
            );
            rows.push(vec![
                format!("g={g}"),
                label.to_string(),
                fmt_eta(row.eta),
                fmt_tta(row.tta_secs),
                format!("{:.3}", row.final_accuracy),
            ]);
        }
    }
    table(&["gpus", "algorithm", "ETA", "TTA", "final acc"], &rows);
    println!();
    println!("  paper: SMA cuts TTA vs EA-SGD by 9% at g=1 and 61% at g=8; the gap");
    println!("  grows with the learner count (§5.5).");
}
