//! Figure 13: hardware vs statistical efficiency with 8 GPUs.
//!
//! Same experiment as Figure 12 at g = 8: with 8 x m learners the paper
//! finds m = 2 the best trade-off — m = 4 (32 learners) adds
//! synchronisation overhead and loses statistical efficiency because
//! "there is not enough stochastic noise in the training process".

#[path = "fig12_tradeoff_1gpu.rs"]
#[allow(dead_code)] // fig12's `main` is unused when included as a module
mod fig12;

fn main() {
    fig12::run_tradeoff(8, "Figure 13");
}
