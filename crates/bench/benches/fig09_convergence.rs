//! Figure 9: baseline convergence over epochs.
//!
//! Trains each benchmark with the TensorFlow-style baseline and prints the
//! test-accuracy curve plus the TTA threshold (the red line in the
//! paper's plots). These runs establish each model's target accuracy for
//! every later TTA experiment, exactly as §5.1 does.

use crossbow::benchmark::Benchmark;
use crossbow::engine::AlgorithmKind;
use crossbow_bench::{epochs, fmt_eta, quick_mode, section, stat_run};

fn main() {
    let benchmarks: Vec<Benchmark> = if quick_mode() {
        vec![Benchmark::lenet(), Benchmark::resnet32()]
    } else {
        Benchmark::all().to_vec()
    };
    for benchmark in benchmarks {
        let budget = epochs(benchmark.default_epochs);
        let curve = stat_run(
            benchmark,
            AlgorithmKind::SSgd,
            1,
            1,
            benchmark.profile.default_batch,
            budget,
            benchmark.scaled_target,
            42,
        );
        section(&format!(
            "Figure 9 ({}): baseline test accuracy over epochs (target {:.0}%)",
            benchmark.name,
            benchmark.scaled_target * 100.0
        ));
        print!("  ");
        for (e, acc) in curve.epoch_accuracy.iter().enumerate() {
            print!("{}:{:.2} ", e + 1, acc);
            if (e + 1) % 10 == 0 {
                println!();
                print!("  ");
            }
        }
        println!();
        println!(
            "  epochs to target: {}   best: {:.3}   final: {:.3}",
            fmt_eta(curve.epochs_to_target),
            curve.best_accuracy(),
            curve.final_accuracy
        );
    }
    println!();
    println!("  paper thresholds: 99% (LeNet), 88% (ResNet-32), 69% (VGG-16), 53% (ResNet-50)");
    println!("  scaled here to the synthetic tasks; see EXPERIMENTS.md.");
}
