//! Figure 17: efficiency of the synchronisation implementation.
//!
//! ResNet-32, g=8: simulated throughput for m in {1, 2, 4} under τ in
//! {1, 2, 3, ∞}. If synchronisation were expensive, throughput would jump
//! as τ grows; the paper measures only ~20% (m=1) to 27% (m=4) headroom,
//! evidence that the overlapped, hierarchical implementation is cheap.
//! Pure simulation — runs in seconds.

use crossbow::exec_sim::{simulate, SimConfig};
use crossbow::nn::ModelProfile;
use crossbow_bench::{section, table};

fn main() {
    let profile = ModelProfile::resnet32();
    let gpus = 8;

    section("Figure 17: throughput vs m for tau in {1, 2, 3, inf} (ResNet-32, g=8)");
    let taus: [(Option<usize>, &str); 4] = [
        (Some(1), "tau=1"),
        (Some(2), "tau=2"),
        (Some(3), "tau=3"),
        (None, "tau=inf"),
    ];
    let mut rows = Vec::new();
    for m in [1usize, 2, 4] {
        let mut row = vec![format!("m={m}")];
        let mut base = None;
        for (tau, _) in taus {
            let mut cfg = SimConfig::crossbow(profile, gpus, m, 64);
            cfg.tau = tau;
            let t = simulate(&cfg).throughput;
            let b = *base.get_or_insert(t);
            row.push(format!("{:.0} ({:+.0}%)", t, (t / b - 1.0) * 100.0));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("").chain(taus.iter().map(|(_, l)| *l)).collect();
    table(&headers, &rows);
    println!();
    println!("  paper: no-sync headroom is only 20% (m=1) to 27% (m=4): the");
    println!("  overlapped synchronisation implementation is well optimised (§5.6).");
}
