//! Figure 10: time-to-accuracy for the four benchmarks.
//!
//! For each model: the TensorFlow-style baseline, CROSSBOW with one
//! learner per GPU, and CROSSBOW with the best (auto-tuned) learner
//! count. TTA = epochs-to-target (real training on the synthetic task) x
//! simulated full-scale epoch time, following the paper's §2.1
//! decomposition.
//!
//! Paper sweeps g in {1,2,4,8} for ResNet-32/VGG, g=8 for ResNet-50 and
//! g=1 for LeNet; quick mode trims to one GPU count per model.

use crossbow::benchmark::Benchmark;
use crossbow::engine::AlgorithmKind;
use crossbow_bench::{epochs, fmt_eta, fmt_tta, full_run, quick_mode, section, table};

fn main() {
    let sweeps: Vec<(Benchmark, Vec<usize>)> = if quick_mode() {
        vec![
            (Benchmark::resnet32(), vec![8]),
            (Benchmark::lenet(), vec![1]),
        ]
    } else {
        vec![
            (Benchmark::resnet32(), vec![1, 8]),
            (Benchmark::vgg16(), vec![1, 8]),
            (Benchmark::resnet50(), vec![8]),
            (Benchmark::lenet(), vec![1]),
        ]
    };
    for (benchmark, gpu_counts) in sweeps {
        let budget = epochs(benchmark.default_epochs.max(40));
        section(&format!(
            "Figure 10 ({}): TTA({:.0}%)",
            benchmark.name,
            benchmark.scaled_target * 100.0
        ));
        let mut rows = Vec::new();
        for &g in &gpu_counts {
            let batch = benchmark.profile.default_batch;
            let systems: [(&str, AlgorithmKind, Option<usize>); 3] = [
                ("TensorFlow (S-SGD)", AlgorithmKind::SSgd, Some(1)),
                ("Crossbow m=1", AlgorithmKind::Sma { tau: 1 }, Some(1)),
                ("Crossbow best m", AlgorithmKind::Sma { tau: 1 }, None),
            ];
            for (label, algorithm, m) in systems {
                let row = full_run(
                    benchmark,
                    algorithm,
                    g,
                    m,
                    batch,
                    budget,
                    benchmark.scaled_target,
                    42,
                );
                rows.push(vec![
                    format!("g={g}"),
                    label.to_string(),
                    row.m.to_string(),
                    format!("{:.0}", row.throughput),
                    fmt_eta(row.eta),
                    fmt_tta(row.tta_secs),
                ]);
            }
        }
        table(
            &["gpus", "system", "m", "images/s", "ETA (epochs)", "TTA"],
            &rows,
        );
    }
    println!();
    println!("  paper: CROSSBOW reduces TTA vs TensorFlow by 1.3x (ResNet-32, g=8),");
    println!("         4.2x (VGG @ g=8), 1.5x (ResNet-50, g=8), 2.7x (LeNet, g=1).");
}
