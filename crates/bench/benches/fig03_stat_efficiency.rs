//! Figure 3: statistical efficiency of S-SGD vs batch size.
//!
//! Epochs for the TensorFlow-style baseline to reach 80% test accuracy as
//! the aggregate batch grows from 64 to 1,024 (full scale; the synthetic
//! task trains at `Benchmark::scale_batch` of each). The paper fixes the
//! learning rate while growing the batch — that fixed γ is exactly why
//! large batches lose statistical efficiency (fewer updates per epoch at
//! the same step size). We do the same with γ = 0.05: the plateau-regime
//! rate used by the TTA experiments (0.2) is large enough that, on the
//! 25x-smaller synthetic task, even seven-update epochs converge, which
//! would compress the sweep (see EXPERIMENTS.md).
//!
//! Paper shape: flat-ish up to a threshold (~256), then super-linear.

use crossbow::benchmark::Benchmark;
use crossbow::sync::optimizer::SgdConfig;
use crossbow::sync::ssgd::SSgd;
use crossbow::sync::{train, LrSchedule, TrainerConfig};
use crossbow::tensor::Rng;
use crossbow_bench::{epochs, fmt_eta, quick_mode, section, table};

fn main() {
    let benchmark = Benchmark::resnet32();
    let target = 0.80;
    let budget = epochs(80);
    let batches: &[usize] = if quick_mode() {
        &[64, 256, 1024]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    let net = benchmark.network();
    let (train_set, test_set) = benchmark.dataset(42);
    let init = net.init_params(&mut Rng::new(42 ^ 0xC0FFEE));

    section("Figure 3: epochs to 80% test accuracy vs aggregate batch size (S-SGD, fixed lr)");
    println!(
        "  (full-scale batch -> synthetic batch: {}; gamma = 0.05; budget {budget} epochs)",
        batches
            .iter()
            .map(|&b| format!("{b}->{}", benchmark.scale_batch(b)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let mut rows = Vec::new();
    for &aggregate in batches {
        let stat_batch = benchmark.scale_batch(aggregate);
        let config = TrainerConfig {
            batch_per_learner: stat_batch,
            max_epochs: budget,
            target_accuracy: Some(target),
            schedule: LrSchedule::Constant { lr: 0.05 },
            weight_decay: 1e-4,
            eval_batch: 256,
            seed: 42,
            threads: 1,
            guard: None,
            inject_nan_at: None,
            checkpoint: None,
            crash_after: None,
            publish: None,
            telemetry: None,
        };
        let t0 = std::time::Instant::now();
        let mut algo = SSgd::new(init.clone(), 1, SgdConfig::paper_default());
        let curve = train(&net, &train_set, &test_set, &mut algo, &config);
        eprintln!(
            "    [fig03 b={aggregate}: {} epochs in {:.1}s]",
            curve.epochs(),
            t0.elapsed().as_secs_f64()
        );
        rows.push(vec![
            aggregate.to_string(),
            stat_batch.to_string(),
            fmt_eta(curve.epochs_to_target),
            format!("{:.3}", curve.best_accuracy()),
        ]);
    }
    table(
        &["aggregate batch", "synthetic batch", "epochs to 80%", "best acc"],
        &rows,
    );
    println!();
    println!("  paper: ~18-25 epochs up to batch 256, then 45 (512) and 85 (1024).");
}
