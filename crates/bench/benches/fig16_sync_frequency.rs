//! Figure 16: effect of the synchronisation frequency τ on TTA.
//!
//! ResNet-32, g=8, m=2. EA-SGD's authors synchronise every τ > 1
//! iterations to save communication; the paper shows that although τ > 1
//! raises throughput (Figure 17), it hurts convergence enough that TTA is
//! minimised at τ = 1 — which is why CROSSBOW always synchronises.

use crossbow::benchmark::Benchmark;
use crossbow::engine::AlgorithmKind;
use crossbow::exec_sim::{simulate, SimConfig};
use crossbow_bench::{epochs, fmt_eta, fmt_tta, full_run, quick_mode, section, table};

fn main() {
    let benchmark = Benchmark::resnet32();
    let gpus = 8;
    let m = 2;
    let budget = epochs(40);
    let taus: &[usize] = if quick_mode() { &[1, 4] } else { &[1, 2, 3, 4] };

    section("Figure 16: TTA and throughput vs synchronisation period tau (ResNet-32, g=8, m=2)");
    let mut rows = Vec::new();
    for &tau in taus {
        let row = full_run(
            benchmark,
            AlgorithmKind::Sma { tau },
            gpus,
            Some(m),
            64,
            budget,
            benchmark.scaled_target,
            42,
        );
        let mut sim_cfg = SimConfig::crossbow(benchmark.profile, gpus, m, 64);
        sim_cfg.tau = Some(tau);
        let sim = simulate(&sim_cfg);
        rows.push(vec![
            tau.to_string(),
            format!("{:.0}", sim.throughput),
            fmt_eta(row.eta),
            fmt_tta(row.tta_secs),
        ]);
    }
    table(&["tau", "images/s", "ETA", "TTA"], &rows);
    println!();
    println!("  paper: throughput rises up to 31% at tau=4, but TTA is 53% longer;");
    println!("  tau=1 wins overall (§5.5).");
}
