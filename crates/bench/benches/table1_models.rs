//! Table 1: deep learning benchmarks and datasets used.
//!
//! Prints the paper's table from the cost profiles, alongside the reduced
//! CPU-trainable models and synthetic datasets this reproduction trains.

use crossbow::benchmark::Benchmark;
use crossbow::memory::offline_plan;
use crossbow::nn::graph::OpGraph;
use crossbow_bench::{section, table};

fn main() {
    section("Table 1: benchmark models and datasets (paper scale)");
    let rows: Vec<Vec<String>> = Benchmark::all()
        .iter()
        .map(|b| {
            vec![
                b.name.to_string(),
                b.profile.dataset.to_string(),
                format!("{:.2}", b.profile.input_mb),
                b.profile.num_ops.to_string(),
                format!("{:.2}", b.profile.model_mb),
            ]
        })
        .collect();
    table(
        &["model", "dataset", "input (MB)", "# ops", "model (MB)"],
        &rows,
    );

    section("Reduced models really trained in this reproduction");
    let rows: Vec<Vec<String>> = Benchmark::all()
        .iter()
        .map(|b| {
            let net = b.network();
            let graph = OpGraph::from_network(&net, b.stat_batch);
            let plan = offline_plan(&graph);
            let (train, test) = b.dataset(1);
            vec![
                b.name.to_string(),
                format!(
                    "{}x{}x{} x{} cls",
                    b.data_spec.channels, b.data_spec.hw, b.data_spec.hw, b.data_spec.classes
                ),
                format!("{}/{}", train.len(), test.len()),
                net.param_len().to_string(),
                format!("{:.1}M", net.flops_per_sample() as f64 / 1e6),
                format!("{:.0}%", plan.savings() * 100.0),
            ]
        })
        .collect();
    table(
        &[
            "model",
            "synthetic input",
            "train/test",
            "params",
            "fwd FLOPs/sample",
            "mem plan saves",
        ],
        &rows,
    );
}
