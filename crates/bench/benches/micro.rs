//! Criterion micro-benchmarks of the hot paths: GEMM, the SMA step, the
//! simulated all-reduce, the discrete-event engine and the memory
//! planner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crossbow::memory::offline_plan;
use crossbow::nn::graph::OpGraph;
use crossbow::nn::zoo::resnet_small;
use crossbow::sync::algorithm::SyncAlgorithm;
use crossbow::sync::sma::{Sma, SmaConfig};
use crossbow_gpu_sim::{KernelDesc, Machine, MachineConfig};
use crossbow_tensor::gemm::gemm;
use crossbow_tensor::Rng;
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[32usize, 64, 128] {
        let mut rng = Rng::new(1);
        let a: Vec<f32> = (0..n * n).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..n * n).map(|_| rng.normal()).collect();
        let mut out = vec![0.0f32; n * n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                gemm(n, n, n, 1.0, black_box(&a), black_box(&b), 0.0, &mut out);
                black_box(&out);
            })
        });
    }
    group.finish();
}

fn bench_sma_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sma_step");
    for &k in &[2usize, 8] {
        let dim = 100_000;
        let mut sma = Sma::new(vec![0.1; dim], k, SmaConfig::default());
        let grads: Vec<Vec<f32>> = (0..k).map(|_| vec![0.01; dim]).collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| {
                sma.step(black_box(&grads), 0.01);
                black_box(sma.consensus());
            })
        });
    }
    group.finish();
}

fn bench_simulator_iteration(c: &mut Criterion) {
    c.bench_function("sim_8gpu_allreduce_round", |bench| {
        bench.iter(|| {
            let mut machine = Machine::new(MachineConfig::titan_x_server(8).without_trace());
            let streams: Vec<_> = (0..8)
                .map(|g| machine.create_stream(machine.device(g)))
                .collect();
            for &s in &streams {
                for _ in 0..32 {
                    machine.submit_kernel(s, KernelDesc::compute("k", 50_000_000, 12));
                }
            }
            machine.all_reduce(&streams, 1_790_000, "ar");
            machine.callback(streams[0], 0);
            black_box(machine.run())
        })
    });
}

fn bench_memory_planner(c: &mut Criterion) {
    let net = resnet_small(3, 16, 10);
    let graph = OpGraph::from_network(&net, 16);
    c.bench_function("memory_offline_plan_resnet", |bench| {
        bench.iter(|| black_box(offline_plan(black_box(&graph))))
    });
}

criterion_group!(
    benches,
    bench_gemm,
    bench_sma_step,
    bench_simulator_iteration,
    bench_memory_planner
);
criterion_main!(benches);
