//! Ablations of the design choices DESIGN.md calls out (all simulator
//! runs — seconds, not minutes):
//!
//! 1. **overlap** — the Figure 8 pipelining of global synchronisation
//!    with the next iteration's learning tasks, vs a global barrier;
//! 2. **interconnect** — ring all-reduce over the PCIe tree vs NVLink
//!    pair bridges (the §2.2 alternative);
//! 3. **memory plans** — no reuse vs the offline plan vs shared online
//!    pools (§4.5).

use crossbow::benchmark::Benchmark;
use crossbow::exec_sim::{simulate, SimConfig};
use crossbow::gpu_sim::collective::ring_all_reduce_duration;
use crossbow::gpu_sim::topology::{Topology, NVLINK_PASCAL, PCIE3_X16};
use crossbow::gpu_sim::SimDuration;
use crossbow::memory::{offline_plan, shared_plan};
use crossbow::nn::graph::OpGraph;
use crossbow::nn::ModelProfile;
use crossbow_bench::{section, table};

fn main() {
    overlap_ablation();
    interconnect_ablation();
    memory_ablation();
}

fn overlap_ablation() {
    section("Ablation 1: sync/learn overlap (Figure 8) vs global barrier");
    let mut rows = Vec::new();
    for (profile, batch) in [
        (ModelProfile::lenet(), 4usize),
        (ModelProfile::resnet32(), 64),
        (ModelProfile::resnet50(), 16),
    ] {
        for (gpus, m) in [(8usize, 1usize), (8, 2)] {
            let overlapped = simulate(&SimConfig::crossbow(profile, gpus, m, batch));
            let mut barrier_cfg = SimConfig::crossbow(profile, gpus, m, batch);
            barrier_cfg.force_barrier = true;
            let barrier = simulate(&barrier_cfg);
            rows.push(vec![
                profile.name.to_string(),
                format!("g={gpus} m={m}"),
                format!("{:.0}", overlapped.throughput),
                format!("{:.0}", barrier.throughput),
                format!(
                    "{:+.1}%",
                    (overlapped.throughput / barrier.throughput - 1.0) * 100.0
                ),
            ]);
        }
    }
    table(
        &["model", "config", "overlapped img/s", "barrier img/s", "overlap gain"],
        &rows,
    );
}

fn interconnect_ablation() {
    section("Ablation 2: all-reduce over PCIe tree vs NVLink pair bridges");
    let lat = SimDuration::from_micros(20);
    let mut rows = Vec::new();
    for profile in [ModelProfile::resnet32(), ModelProfile::vgg16(), ModelProfile::resnet50()] {
        for gpus in [2usize, 8] {
            let pcie = Topology::binary_tree(gpus, PCIE3_X16);
            let nvlink =
                Topology::binary_tree(gpus, PCIE3_X16).with_nvlink_pairs(NVLINK_PASCAL);
            let d_pcie = ring_all_reduce_duration(
                profile.model_bytes(),
                gpus,
                pcie.ring_bottleneck_bandwidth(),
                lat,
            );
            let d_nv = ring_all_reduce_duration(
                profile.model_bytes(),
                gpus,
                nvlink.ring_bottleneck_bandwidth(),
                lat,
            );
            rows.push(vec![
                profile.name.to_string(),
                format!("g={gpus}"),
                d_pcie.to_string(),
                d_nv.to_string(),
                format!(
                    "{:.2}x",
                    d_pcie.as_nanos() as f64 / d_nv.as_nanos() as f64
                ),
            ]);
        }
    }
    table(
        &["model", "gpus", "PCIe all-reduce", "NVLink all-reduce", "speed-up"],
        &rows,
    );
    println!();
    println!("  NVLink only bridges pair mates; an 8-GPU ring still crosses PCIe,");
    println!("  so the bridge pays off only for 2-GPU collectives — one reason the");
    println!("  paper's testbed all-reduces over the PCIe tree.");
}

fn memory_ablation() {
    section("Ablation 3: memory plans (no reuse / offline / shared online pools)");
    let mut rows = Vec::new();
    for benchmark in Benchmark::all() {
        let net = benchmark.network();
        let graph = OpGraph::from_network(&net, benchmark.stat_batch);
        let none = graph.total_output_bytes();
        let offline = offline_plan(&graph);
        let m = 4;
        let shared = shared_plan(&graph, m, graph.ops.len() / 2);
        rows.push(vec![
            benchmark.name.to_string(),
            format!("{:.2}", none as f64 / 1e6),
            format!(
                "{:.2} ({:.0}%)",
                offline.bytes_allocated as f64 / 1e6,
                offline.savings() * 100.0
            ),
            format!(
                "{:.2} vs {:.2}",
                shared.peak_bytes as f64 / 1e6,
                (m * offline.peak_bytes) as f64 / 1e6
            ),
        ]);
    }
    table(
        &[
            "model",
            "no reuse (MB)",
            "offline plan (MB, saved)",
            "4 learners shared vs private peak (MB)",
        ],
        &rows,
    );
}
