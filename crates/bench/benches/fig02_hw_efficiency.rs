//! Figure 2: hardware efficiency of parallel S-SGD.
//!
//! Speed-up over 1 GPU when training ResNet-32 with the TensorFlow-style
//! baseline, as the number of GPUs grows, for aggregate batch sizes 64 to
//! 1,024. The paper's shape: constant aggregate batch scales poorly (the
//! per-GPU batch shrinks); growing the aggregate batch with the GPU count
//! gives near-linear speed-up.

use crossbow::exec_sim::{simulate, SimConfig};
use crossbow::nn::ModelProfile;
use crossbow_bench::{section, table};

fn main() {
    let profile = ModelProfile::resnet32();
    let gpu_counts = [1usize, 2, 4, 8];
    let batches = [64usize, 128, 256, 512, 1024];

    section("Figure 2: S-SGD throughput speed-up vs number of GPUs (ResNet-32)");
    println!("  (aggregate batch is fixed per row; per-GPU batch = aggregate / g)");
    let mut rows = Vec::new();
    for &aggregate in &batches {
        let mut row = vec![format!("b={aggregate}")];
        let base = simulate(&SimConfig::baseline(profile, 1, aggregate)).throughput;
        for &g in &gpu_counts {
            if aggregate / g == 0 {
                row.push("-".to_string());
                continue;
            }
            let t = simulate(&SimConfig::baseline(profile, g, aggregate / g)).throughput;
            row.push(format!("{:.2}x", t / base));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("aggregate".to_string())
        .chain(gpu_counts.iter().map(|g| format!("g={g}")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    table(&headers_ref, &rows);

    println!();
    println!("  paper: aggregate 64 stays well below linear at 8 GPUs;");
    println!("         aggregate 512/1024 (constant per-GPU batch) is near-linear.");
}
