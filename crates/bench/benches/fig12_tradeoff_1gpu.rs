//! Figure 12: hardware vs statistical efficiency with 1 GPU.
//!
//! ResNet-32, b = 64: (a) training throughput, (b) epochs to 80% test
//! accuracy, (c) TTA(80%) — for CROSSBOW with m in {1, 2, 4} and the
//! TensorFlow-style baseline. The paper's shape: throughput grows with m
//! and TTA falls, because extra learners raise hardware efficiency
//! without requiring a larger batch.

use crossbow::benchmark::Benchmark;
use crossbow::engine::AlgorithmKind;
use crossbow_bench::{epochs, fmt_eta, fmt_tta, full_run, quick_mode, section, table};

fn main() {
    run_tradeoff(1, "Figure 12");
}

/// Shared by fig12 (g=1) and fig13 (g=8).
pub fn run_tradeoff(gpus: usize, figure: &str) {
    let benchmark = Benchmark::resnet32();
    let target = 0.80; // the paper lowers the target to 80% here (§5.3)
    let budget = epochs(40);
    let ms: &[usize] = if quick_mode() { &[1, 2] } else { &[1, 2, 4] };

    section(&format!(
        "{figure}: ResNet-32, b=64, g={gpus}: throughput / ETA(80%) / TTA(80%)"
    ));
    let mut rows = Vec::new();
    for &m in ms {
        let row = full_run(
            benchmark,
            AlgorithmKind::Sma { tau: 1 },
            gpus,
            Some(m),
            64,
            budget,
            target,
            42,
        );
        rows.push(vec![
            format!("Crossbow m={m}"),
            format!("{:.0}", row.throughput),
            fmt_eta(row.eta),
            fmt_tta(row.tta_secs),
            format!("{:.3}", row.final_accuracy),
        ]);
    }
    let tf = full_run(
        benchmark,
        AlgorithmKind::SSgd,
        gpus,
        Some(1),
        64,
        budget,
        target,
        42,
    );
    rows.push(vec![
        "TensorFlow".to_string(),
        format!("{:.0}", tf.throughput),
        fmt_eta(tf.eta),
        fmt_tta(tf.tta_secs),
        format!("{:.3}", tf.final_accuracy),
    ]);
    table(
        &["system", "images/s", "ETA(80%) epochs", "TTA(80%)", "final acc"],
        &rows,
    );
    println!();
    if gpus == 1 {
        println!("  paper (g=1): throughput 1.4x at m=4; ETA drops 30 -> 14; TTA 3.2x better.");
    } else {
        println!("  paper (g=8): m=2 is the sweet spot (1.3x TTA); m=4 adds sync overhead");
        println!("  and loses statistical efficiency with 32 learners.");
    }
}
