//! Shared utilities for the figure/table harnesses.
//!
//! Every table and figure of the paper's evaluation (§5) has a `[[bench]]`
//! target in this crate (run them all with `cargo bench`, or one with
//! `cargo bench --bench fig10_tta`). Each harness prints the same rows or
//! series the paper reports, so EXPERIMENTS.md can record paper-reported
//! vs. measured values side by side.
//!
//! Set `CROSSBOW_BENCH_QUICK=1` to shrink the statistical runs (fewer
//! epochs, single seed) for a fast smoke pass; the full runs are sized for
//! a few minutes each on one CPU core.

use crossbow::benchmark::Benchmark;
use crossbow::engine::{AlgorithmKind, Session, SessionConfig};
use crossbow::sync::TrainingCurve;
use std::time::Instant;

/// True when `CROSSBOW_BENCH_QUICK` is set: harnesses shrink their epoch
/// budgets and sweeps.
pub fn quick_mode() -> bool {
    std::env::var_os("CROSSBOW_BENCH_QUICK").is_some()
}

/// Scales an epoch budget down in quick mode.
pub fn epochs(full: usize) -> usize {
    if quick_mode() {
        (full / 4).max(3)
    } else {
        full
    }
}

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints an aligned table.
///
/// # Panics
/// Panics if a row's width differs from the header's.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let print_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", line.join("  "));
    };
    print_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("  {}", "-".repeat(total));
    for row in rows {
        print_row(row);
    }
}

/// Formats an optional epoch count.
pub fn fmt_eta(eta: Option<usize>) -> String {
    match eta {
        Some(e) => e.to_string(),
        None => "-".to_string(),
    }
}

/// Formats seconds human-readably.
pub fn fmt_secs(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.1}h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1}m", s / 60.0)
    } else {
        format!("{s:.1}s")
    }
}

/// Runs the statistical half of a session (real training) with explicit
/// knobs, timing it.
#[allow(clippy::too_many_arguments)] // experiment axes mirror the paper's
pub fn stat_run(
    benchmark: Benchmark,
    algorithm: AlgorithmKind,
    gpus: usize,
    m: usize,
    batch_full: usize,
    max_epochs: usize,
    target: f64,
    seed: u64,
) -> TrainingCurve {
    let t0 = Instant::now();
    let config = SessionConfig::new(benchmark)
        .with_gpus(gpus)
        .with_learners_per_gpu(m)
        .with_batch(batch_full)
        .with_algorithm(algorithm)
        .with_epochs(max_epochs)
        .with_target(target)
        .with_seed(seed);
    let session = Session::new(config);
    let curve = session.train_statistics(m).expect("no checkpointing in benches");
    eprintln!(
        "    [stat {} {:?} g={gpus} m={m} b={batch_full}: {} epochs in {:.1}s]",
        benchmark.name,
        algorithm,
        curve.epochs(),
        t0.elapsed().as_secs_f64()
    );
    curve
}

/// A combined hardware + statistical measurement for one configuration.
#[derive(Clone, Debug)]
pub struct RunRow {
    /// Simulated training throughput (images/s) at the paper's scale.
    pub throughput: f64,
    /// Simulated full-scale epoch time in seconds.
    pub epoch_secs: f64,
    /// Epochs to the target (median-of-5 rule), if reached.
    pub eta: Option<usize>,
    /// Time-to-accuracy in (simulated) seconds, if the target was reached.
    pub tta_secs: Option<f64>,
    /// Final test accuracy of the statistical run.
    pub final_accuracy: f64,
    /// Accuracy after each epoch.
    pub curve: Vec<f64>,
    /// Learners per GPU actually used.
    pub m: usize,
}

/// Runs the full pipeline (simulator + real training) for one
/// configuration and returns the combined row.
#[allow(clippy::too_many_arguments)] // experiment axes mirror the paper's
pub fn full_run(
    benchmark: Benchmark,
    algorithm: AlgorithmKind,
    gpus: usize,
    m: Option<usize>,
    batch_full: usize,
    max_epochs: usize,
    target: f64,
    seed: u64,
) -> RunRow {
    let t0 = Instant::now();
    let mut config = SessionConfig::new(benchmark)
        .with_gpus(gpus)
        .with_batch(batch_full)
        .with_algorithm(algorithm)
        .with_epochs(max_epochs)
        .with_target(target)
        .with_seed(seed);
    if let Some(m) = m {
        config = config.with_learners_per_gpu(m);
    }
    let report = Session::new(config).run().expect("no checkpointing in benches");
    eprintln!(
        "    [run {} {:?} g={gpus} m={} b={batch_full}: {} epochs in {:.1}s wall]",
        benchmark.name,
        algorithm,
        report.learners_per_gpu,
        report.curve.epochs(),
        t0.elapsed().as_secs_f64()
    );
    RunRow {
        throughput: report.sim.throughput,
        epoch_secs: report.epoch_time.as_secs_f64(),
        eta: report.curve.epochs_to_target,
        tta_secs: report.tta.map(|t| t.as_secs_f64()),
        final_accuracy: report.curve.final_accuracy,
        curve: report.curve.epoch_accuracy.clone(),
        m: report.learners_per_gpu,
    }
}

/// Formats an optional TTA.
pub fn fmt_tta(tta: Option<f64>) -> String {
    match tta {
        Some(t) => fmt_secs(t),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_does_not_panic_on_aligned_rows() {
        table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn table_rejects_ragged_rows() {
        table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_eta(Some(7)), "7");
        assert_eq!(fmt_eta(None), "-");
        assert_eq!(fmt_secs(30.0), "30.0s");
        assert_eq!(fmt_secs(90.0), "1.5m");
        assert_eq!(fmt_secs(7200.0), "2.0h");
    }

    #[test]
    fn quick_epochs_shrink() {
        // Cannot set env vars safely in tests; just exercise both paths.
        let full = 40;
        let q = (full / 4).max(3);
        assert!(q < full);
        let _ = epochs(full);
    }
}
